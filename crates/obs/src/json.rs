//! A minimal JSON reader, enough to parse back what the exporters emit
//! (metric snapshots, bench baselines) without external dependencies.
//!
//! Numbers are parsed as `f64`, matching the JSON data model; exact
//! integers up to 2^53 round-trip losslessly, which covers every counter
//! the toolchain realistically accumulates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is normalized (sorted).
    Object(BTreeMap<String, JsonValue>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000
                                        + (((unit - 0xD800) as u32) << 10)
                                        + (low - 0xDC00) as u32;
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(ch);
                            // parse_hex4 leaves pos one past the escape.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so it is valid).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = text.chars().next().expect("non-empty string tail");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits at `pos`, advancing past them.
    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let unit =
            u16::from_str_radix(digits, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: "invalid number".to_owned() })
    }
}

/// Escapes a string for embedding in JSON output (without the quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let value = JsonValue::parse(doc).expect("parse");
        assert_eq!(value.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(3));
        assert_eq!(value.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(
            value.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(value.get("e").and_then(JsonValue::as_str), Some("x\"y\n"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}π𝔔";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let value = JsonValue::parse(&doc).expect("parse");
        assert_eq!(value.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        let value = JsonValue::parse(r#""\ud835\udd14""#).expect("parse");
        assert_eq!(value.as_str(), Some("𝔔"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{\"a\":}", "\"\\ud835\""] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
