//! A minimal JSON reader, enough to parse back what the exporters emit
//! (metric snapshots, bench baselines) without external dependencies.
//!
//! Numbers are parsed as `f64`, matching the JSON data model; exact
//! integers up to 2^53 round-trip losslessly, which covers every counter
//! the toolchain realistically accumulates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is normalized (sorted).
    Object(BTreeMap<String, JsonValue>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON. Non-finite numbers (which
    /// JSON cannot represent) render as `null`; object keys keep the
    /// map's sorted order, so output is deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    // Rust's shortest-roundtrip float formatting: the
                    // printed text parses back to exactly this f64.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (index, (key, value)) in map.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000
                                        + (((unit - 0xD800) as u32) << 10)
                                        + (low - 0xDC00) as u32;
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(ch);
                            // parse_hex4 leaves pos one past the escape.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so it is valid).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = text.chars().next().expect("non-empty string tail");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits at `pos`, advancing past them.
    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let unit =
            u16::from_str_radix(digits, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: "invalid number".to_owned() })
    }
}

/// Escapes a string for embedding in JSON output (without the quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let value = JsonValue::parse(doc).expect("parse");
        assert_eq!(value.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(3));
        assert_eq!(value.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(
            value.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(value.get("e").and_then(JsonValue::as_str), Some("x\"y\n"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}π𝔔";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let value = JsonValue::parse(&doc).expect("parse");
        assert_eq!(value.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        let value = JsonValue::parse(r#""\ud835\udd14""#).expect("parse");
        assert_eq!(value.as_str(), Some("𝔔"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{\"a\":}", "\"\\ud835\""] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_scientific_notation_exactly() {
        for (text, want) in [
            ("1e3", 1e3),
            ("1E3", 1e3),
            ("-2.5e-4", -2.5e-4),
            ("6.02E+23", 6.02e23),
            ("0.0", 0.0),
            ("-0.0", -0.0),
            ("1e-308", 1e-308),
            ("1.7976931348623157e308", f64::MAX),
            ("5e-324", f64::MIN_POSITIVE * f64::EPSILON), // smallest subnormal, 2^-1074
        ] {
            let value = JsonValue::parse(text).expect(text);
            let got = value.as_f64().expect("number");
            assert_eq!(got.to_bits(), want.to_bits(), "{text}: {got} != {want}");
        }
        // Overflowing exponents saturate to infinity per strtod — which
        // the serializer cannot re-emit, but the parser must not error.
        assert_eq!(JsonValue::parse("1e999").expect("parse").as_f64(), Some(f64::INFINITY));
        // Things that look number-ish but are not valid JSON numbers.
        for bad in ["1e", "1e+", ".5", "+1", "0x10", "--1", "Infinity", "NaN"] {
            let wrapped = format!("[{bad}]");
            assert!(JsonValue::parse(&wrapped).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_and_control_escapes_round_trip() {
        // Every ASCII control character, escaped by escape(), parses back.
        let controls: String = (0u8..0x20).map(char::from).collect();
        let doc = format!("\"{}\"", escape(&controls));
        assert_eq!(JsonValue::parse(&doc).expect("controls").as_str(), Some(controls.as_str()));
        // Unescaped control characters are rejected.
        assert!(JsonValue::parse("\"\u{1}\"").is_err());
        // \u escapes for BMP, astral (surrogate pair), and boundary points.
        for (doc, want) in [
            (r#""\u0041""#, "A"),
            (r#""\u00e9""#, "é"),
            (r#""\u2603""#, "☃"),
            (r#""\ud83d\ude00""#, "😀"),
            (r#""\uffff""#, "\u{ffff}"),
            (r#""\u0000""#, "\0"),
        ] {
            assert_eq!(JsonValue::parse(doc).expect(doc).as_str(), Some(want), "{doc}");
        }
        // Broken escapes fail cleanly.
        for bad in [r#""\u12""#, r#""\uzzzz""#, r#""\ud800\u0041""#, r#""\udc00""#, r#""\q""#] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn deep_nesting_parses_and_serializes() {
        const DEPTH: usize = 256;
        let mut doc = String::new();
        for _ in 0..DEPTH {
            doc.push_str("[{\"k\":");
        }
        doc.push_str("null");
        for _ in 0..DEPTH {
            doc.push_str("}]");
        }
        let value = JsonValue::parse(&doc).expect("deep parse");
        // Walk back down to the innermost value.
        let mut cursor = &value;
        for _ in 0..DEPTH {
            cursor = &cursor.as_array().expect("array layer")[0];
            cursor = cursor.get("k").expect("object layer");
        }
        assert_eq!(cursor, &JsonValue::Null);
        // And the serialized form round-trips.
        assert_eq!(JsonValue::parse(&value.to_json()).expect("reparse"), value);
    }

    /// SplitMix64 — the same seeded-RNG discipline the simulators and
    /// the conformance generator use.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_string(state: &mut u64) -> String {
        let len = (splitmix64(state) % 12) as usize;
        (0..len)
            .map(|_| {
                // Mix ASCII (controls included), escapes, and astral chars.
                match splitmix64(state) % 5 {
                    0 => (splitmix64(state) % 0x80) as u8 as char,
                    1 => ['"', '\\', '\n', '\t', '\u{0}'][(splitmix64(state) % 5) as usize],
                    2 => '😀',
                    3 => 'π',
                    _ => char::from(b'a' + (splitmix64(state) % 26) as u8),
                }
            })
            .collect()
    }

    fn random_number(state: &mut u64) -> f64 {
        match splitmix64(state) % 4 {
            // Exact integers (counter-like).
            0 => (splitmix64(state) % (1 << 53)) as f64,
            1 => -((splitmix64(state) % 1_000_000) as f64),
            // Dyadic fractions round-trip exactly through Display.
            2 => (splitmix64(state) % 4096) as f64 / 1024.0,
            // Scientific magnitudes.
            _ => {
                let mantissa = (splitmix64(state) % 9000 + 1000) as f64 / 1000.0;
                let exponent = (splitmix64(state) % 60) as i32 - 30;
                mantissa * 10f64.powi(exponent)
            }
        }
    }

    fn random_value(state: &mut u64, depth: usize) -> JsonValue {
        let pick = if depth == 0 { splitmix64(state) % 4 } else { splitmix64(state) % 6 };
        match pick {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(splitmix64(state).is_multiple_of(2)),
            2 => JsonValue::Number(random_number(state)),
            3 => JsonValue::String(random_string(state)),
            4 => {
                let len = (splitmix64(state) % 4) as usize;
                JsonValue::Array((0..len).map(|_| random_value(state, depth - 1)).collect())
            }
            _ => {
                let len = (splitmix64(state) % 4) as usize;
                JsonValue::Object(
                    (0..len)
                        .map(|_| (random_string(state), random_value(state, depth - 1)))
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn serializer_parser_roundtrip_property() {
        let mut state = 0x00ab_5eed_u64;
        for case in 0..500 {
            let value = random_value(&mut state, 4);
            let text = value.to_json();
            let parsed =
                JsonValue::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\ndoc: {text}"));
            assert_eq!(parsed, value, "case {case}: roundtrip mismatch for {text}");
        }
    }
}
