//! Zero-dependency observability for the qukit stack.
//!
//! The paper's improvement stories — the decision-diagram simulator and the
//! A*-style mapper — are performance claims, and performance claims need
//! instruments. This crate is the measurement substrate every other qukit
//! crate records into: a global, thread-safe [`MetricsRegistry`] of
//! counters, gauges, and fixed-bucket histograms; lightweight [`Span`]s
//! with monotonic timing, parent/child nesting, and a bounded ring-buffer
//! event log; and exporters for the Prometheus text format, structured
//! JSON, and a human-readable summary table.
//!
//! Recording is **off by default**. Every record call starts with a single
//! relaxed atomic-bool load, so an un-instrumented run pays one predictable
//! branch per call site and nothing else — no locks, no allocation, no
//! clock reads. Turn it on with [`set_enabled`] (the CLI does this for the
//! `--metrics` / `--trace` flags).
//!
//! Metric names follow the convention `qukit_<crate>_<name>`, with an
//! optional Prometheus-style label suffix baked into the name:
//! `qukit_terra_pass_seconds{pass="mapping"}`.
//!
//! # Examples
//!
//! ```
//! qukit_obs::set_enabled(true);
//! qukit_obs::counter_add("qukit_demo_events_total", 3);
//! {
//!     let _span = qukit_obs::span!("demo.work", step = 1);
//!     qukit_obs::observe("qukit_demo_step_seconds", 0.004);
//! }
//! let snapshot = qukit_obs::registry().snapshot();
//! assert_eq!(snapshot.counters["qukit_demo_events_total"], 3);
//! assert!(qukit_obs::export::to_json(&snapshot).contains("qukit-metrics/v1"));
//! ```

pub mod export;
pub mod http;
pub mod json;
pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{
    counter, counter_add, counter_add_with, counter_inc, counter_inc_with, counter_with, describe,
    enabled, escape_label_value, gauge, gauge_add, gauge_set, gauge_set_with, histogram,
    labeled_name, observe, observe_duration, observe_with, registry, set_enabled,
    validate_label_name, validate_metric_name, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricNameError, MetricsRegistry, Snapshot, DURATION_BUCKETS, MAX_LABEL_SETS,
};
pub use span::{
    drain_trace, next_id, record_span_at, snapshot_trace, trace_events_dropped, ContextGuard, Span,
    TraceContext, TraceEvent, TRACE_CAPACITY,
};
pub use trace::{assemble_trees, SpanNode, SpanTree, TraceSampler};

/// Clears every metric and the trace buffer (recording stays as-is).
///
/// Intended for tests and for CLI commands that scope a snapshot to a
/// single invocation. Handles obtained before the reset keep working but
/// are detached from the registry; prefer the name-based free functions.
pub fn reset() {
    registry().reset();
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
