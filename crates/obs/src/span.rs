//! Lightweight spans: monotonic timing, parent/child nesting per thread,
//! and a bounded ring-buffer event log.

use crate::registry::{enabled, registry, DURATION_BUCKETS};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Capacity of the global trace ring buffer; the oldest events are dropped
/// once it is full.
pub const TRACE_CAPACITY: usize = 4096;

/// One completed span, as stored in the trace ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, dot-separated by convention (`"transpile.pass"`).
    pub name: String,
    /// Free-form `key=value` detail string (may be empty).
    pub detail: String,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: usize,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
}

fn trace_buffer() -> &'static Mutex<VecDeque<TraceEvent>> {
    static TRACE: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    TRACE.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An RAII timing scope. Created by [`crate::span!`]; records a
/// [`TraceEvent`] (and optionally a histogram observation) when dropped.
///
/// When recording is disabled at creation time the span is inert: no clock
/// read, no allocation, nothing recorded on drop.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    detail: String,
    metric: Option<String>,
    depth: usize,
    start_us: u64,
    start: Instant,
}

impl Span {
    /// Opens a span (inert while recording is disabled).
    pub fn new(name: impl Into<String>, detail: impl Into<String>) -> Self {
        if !enabled() {
            return Self::inert();
        }
        let depth = DEPTH.with(|d| {
            let current = d.get();
            d.set(current + 1);
            current
        });
        let reference = epoch();
        let start = Instant::now();
        let start_us = start.duration_since(reference).as_micros() as u64;
        Self {
            inner: Some(SpanInner {
                name: name.into(),
                detail: detail.into(),
                metric: None,
                depth,
                start_us,
                start,
            }),
        }
    }

    /// A span that records nothing (what [`Span::new`] returns while
    /// recording is disabled).
    pub fn inert() -> Self {
        Self { inner: None }
    }

    /// Also observes the span duration into the named global histogram
    /// (registered with [`DURATION_BUCKETS`]) when the span closes.
    pub fn with_metric(mut self, histogram: &str) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.metric = Some(histogram.to_owned());
        }
        self
    }

    /// Time elapsed since the span opened (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map(|inner| inner.start.elapsed()).unwrap_or_default()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let duration = inner.start.elapsed();
        DEPTH.with(|d| d.set(inner.depth));
        if let Some(metric) = &inner.metric {
            registry().histogram(metric, &DURATION_BUCKETS).observe(duration.as_secs_f64());
        }
        let event = TraceEvent {
            name: inner.name,
            detail: inner.detail,
            depth: inner.depth,
            start_us: inner.start_us,
            duration_us: duration.as_micros() as u64,
        };
        let mut buffer = trace_buffer().lock().expect("trace buffer lock");
        if buffer.len() == TRACE_CAPACITY {
            buffer.pop_front();
        }
        buffer.push_back(event);
    }
}

/// Copies the trace buffer, oldest event first.
pub fn snapshot_trace() -> Vec<TraceEvent> {
    trace_buffer().lock().expect("trace buffer lock").iter().cloned().collect()
}

/// Drains the trace buffer, oldest event first.
pub fn drain_trace() -> Vec<TraceEvent> {
    trace_buffer().lock().expect("trace buffer lock").drain(..).collect()
}

pub(crate) fn clear_trace() {
    trace_buffer().lock().expect("trace buffer lock").clear();
}

/// Opens a [`Span`]: `span!("transpile.pass", pass = name)`.
///
/// The first argument is the span name; the remaining `key = value` pairs
/// are rendered into the detail string with `Display`. Bind the result
/// (`let _span = span!(...)`) so the scope ends where you expect. While
/// recording is disabled nothing is formatted or timed.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::Span::new($name, String::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::Span::new(
                $name,
                vec![$(format!(concat!(stringify!($key), "={}"), $value)),+].join(" "),
            )
        } else {
            $crate::Span::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn spans_nest_and_log_in_completion_order() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        {
            let _outer = crate::span!("test.outer", layer = "a");
            let _inner = crate::span!("test.inner");
        }
        let trace = drain_trace();
        assert_eq!(trace.len(), 2);
        // Inner closes first.
        assert_eq!(trace[0].name, "test.inner");
        assert_eq!(trace[0].depth, 1);
        assert_eq!(trace[1].name, "test.outer");
        assert_eq!(trace[1].depth, 0);
        assert_eq!(trace[1].detail, "layer=a");
        assert!(trace[1].start_us <= trace[0].start_us);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn with_metric_observes_duration_histogram() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        {
            let _span = Span::new("test.metric", "").with_metric("qukit_obs_test_span_seconds");
        }
        let snapshot = crate::registry().snapshot();
        assert_eq!(snapshot.histograms["qukit_obs_test_span_seconds"].count, 1);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        set_enabled(false);
        clear_trace();
        {
            let span = crate::span!("test.disabled", ignored = 1);
            assert_eq!(span.elapsed(), Duration::ZERO);
        }
        assert!(snapshot_trace().is_empty());
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        for i in 0..(TRACE_CAPACITY + 10) {
            let _span = crate::span!("test.flood", index = i);
        }
        let trace = drain_trace();
        assert_eq!(trace.len(), TRACE_CAPACITY);
        // The oldest events were dropped.
        assert_eq!(trace[0].detail, "index=10");
        crate::reset();
        set_enabled(false);
    }
}
