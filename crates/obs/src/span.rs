//! Lightweight spans: monotonic timing, parent/child nesting per thread,
//! causal trace contexts, and a bounded ring-buffer event log.
//!
//! # Trace contexts
//!
//! A [`TraceContext`] names a position in a causal tree: the trace it
//! belongs to and the span new children should attach under. Contexts are
//! minted from a process-global SplitMix64 sequence — the same seeded-RNG
//! discipline the simulators use — so ids are deterministic per process
//! run and carry no wall-clock or host state. Propagation is explicit:
//! [`TraceContext::attach`] installs a context on the current thread and
//! restores the previous one when the guard drops, and every [`Span`]
//! opened while a context is attached records the context's trace id and
//! links to the innermost open span as its parent.
//!
//! Ids are 53-bit so they survive a JSON number roundtrip exactly.

use crate::registry::{enabled, registry, DURATION_BUCKETS};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Capacity of the global trace ring buffer; the oldest events are dropped
/// once it is full (counted by [`trace_events_dropped`]).
pub const TRACE_CAPACITY: usize = 4096;

/// One completed span, as stored in the trace ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, dot-separated by convention (`"transpile.pass"`).
    pub name: String,
    /// Free-form `key=value` detail string (may be empty).
    pub detail: String,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: usize,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Trace this span belongs to (0 = no trace context attached).
    pub trace_id: u64,
    /// This span's own id (0 only for legacy/untraced events).
    pub span_id: u64,
    /// Id of the enclosing span (0 = root of its trace/thread).
    pub parent_id: u64,
}

impl TraceEvent {
    /// An event with zeroed ids — convenience for tests and decoding of
    /// pre-tracing snapshots.
    pub fn untraced(
        name: impl Into<String>,
        detail: impl Into<String>,
        depth: usize,
        start_us: u64,
        duration_us: u64,
    ) -> Self {
        Self {
            name: name.into(),
            detail: detail.into(),
            depth,
            start_us,
            duration_us,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        }
    }
}

fn trace_buffer() -> &'static Mutex<VecDeque<TraceEvent>> {
    static TRACE: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    TRACE.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the trace epoch to "now" if it is not set yet. Called by
/// [`crate::set_enabled`] so timestamps taken before the first span (a
/// job's `submitted_at`, say) cannot precede the epoch.
pub(crate) fn init_epoch() {
    let _ = epoch();
}

/// Events evicted from the full ring buffer since the last reset.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Number of trace events silently evicted from the ring buffer since the
/// last [`crate::reset`]. Surfaced in snapshots as the
/// `qukit_obs_trace_events_dropped_total` counter.
pub fn trace_events_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn push_event(event: TraceEvent) {
    let mut buffer = trace_buffer().lock().expect("trace buffer lock");
    if buffer.len() == TRACE_CAPACITY {
        buffer.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    buffer.push_back(event);
}

/// Fixed seed for the id sequence: deterministic per process run, no
/// ambient state.
const ID_SEED: u64 = 0x71c9_4a2f_8e5d_3b07;

static ID_SEQUENCE: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints the next process-unique 53-bit id (never 0). 53 bits so an id
/// survives a JSON `f64` number roundtrip exactly.
pub fn next_id() -> u64 {
    loop {
        let n = ID_SEQUENCE.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n.wrapping_add(ID_SEED)) >> 11;
        if id != 0 {
            return id;
        }
    }
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// (trace_id, span_id) of the innermost attached context/open span.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// A causal position: the trace being recorded and the span under which
/// new child spans attach. See the module docs for the propagation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole tree (one per job in the executor).
    pub trace_id: u64,
    /// The span new children link to as their parent.
    pub span_id: u64,
}

impl TraceContext {
    /// Mints a fresh trace. The root span id equals the trace id, so the
    /// root context can be reconstructed from the trace id alone (this is
    /// what makes journaled trace ids recovery-stable).
    pub fn mint() -> Self {
        let id = next_id();
        Self { trace_id: id, span_id: id }
    }

    /// The root context of an existing trace (e.g. one replayed from a
    /// journal): children attach directly under the trace root.
    pub fn root_of(trace_id: u64) -> Self {
        Self { trace_id, span_id: trace_id }
    }

    /// The context installed on the current thread, if any.
    pub fn current() -> Option<Self> {
        let (trace_id, span_id) = CURRENT.with(Cell::get);
        if trace_id == 0 {
            None
        } else {
            Some(Self { trace_id, span_id })
        }
    }

    /// Installs this context on the current thread; the returned guard
    /// restores the previous context when dropped. Attach explicitly on
    /// every thread that continues a trace (workers, timeout helpers).
    pub fn attach(self) -> ContextGuard {
        let prev = CURRENT.with(|c| c.replace((self.trace_id, self.span_id)));
        ContextGuard { prev }
    }
}

/// RAII restore for [`TraceContext::attach`]. Not `Send`: a context is a
/// per-thread property.
#[derive(Debug)]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An RAII timing scope. Created by [`crate::span!`]; records a
/// [`TraceEvent`] (and optionally a histogram observation) when dropped.
///
/// When recording is disabled at creation time the span is inert: no clock
/// read, no allocation, nothing recorded on drop.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    detail: String,
    metric: Option<String>,
    depth: usize,
    start_us: u64,
    start: Instant,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    prev_current: (u64, u64),
}

impl Span {
    /// Opens a span (inert while recording is disabled). The span adopts
    /// the thread's current [`TraceContext`] (if any) and becomes the
    /// current parent for spans opened inside it on this thread.
    pub fn new(name: impl Into<String>, detail: impl Into<String>) -> Self {
        if !enabled() {
            return Self::inert();
        }
        let depth = DEPTH.with(|d| {
            let current = d.get();
            d.set(current + 1);
            current
        });
        let span_id = next_id();
        let (trace_id, parent_id) = CURRENT.with(Cell::get);
        let prev_current = CURRENT.with(|c| c.replace((trace_id, span_id)));
        let reference = epoch();
        let start = Instant::now();
        let start_us = start.duration_since(reference).as_micros() as u64;
        Self {
            inner: Some(SpanInner {
                name: name.into(),
                detail: detail.into(),
                metric: None,
                depth,
                start_us,
                start,
                trace_id,
                span_id,
                parent_id,
                prev_current,
            }),
        }
    }

    /// A span that records nothing (what [`Span::new`] returns while
    /// recording is disabled).
    pub fn inert() -> Self {
        Self { inner: None }
    }

    /// Also observes the span duration into the named global histogram
    /// (registered with [`DURATION_BUCKETS`]) when the span closes.
    pub fn with_metric(mut self, histogram: &str) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.metric = Some(histogram.to_owned());
        }
        self
    }

    /// This span's id (0 for inert spans) — use it to parent manual
    /// events onto a live span.
    pub fn span_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.span_id)
    }

    /// Time elapsed since the span opened (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map(|inner| inner.start.elapsed()).unwrap_or_default()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let duration = inner.start.elapsed();
        DEPTH.with(|d| d.set(inner.depth));
        CURRENT.with(|c| c.set(inner.prev_current));
        if let Some(metric) = &inner.metric {
            registry().histogram(metric, &DURATION_BUCKETS).observe(duration.as_secs_f64());
        }
        push_event(TraceEvent {
            name: inner.name,
            detail: inner.detail,
            depth: inner.depth,
            start_us: inner.start_us,
            duration_us: duration.as_micros() as u64,
            trace_id: inner.trace_id,
            span_id: inner.span_id,
            parent_id: inner.parent_id,
        });
    }
}

/// Records a completed span with explicit timing and explicit ids, for
/// phases whose start and end happen on different threads (a job's
/// queued-time span, the whole-job root span). A no-op while recording is
/// disabled. `start` instants predating the trace epoch clamp to 0.
#[allow(clippy::too_many_arguments)]
pub fn record_span_at(
    name: impl Into<String>,
    detail: impl Into<String>,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    depth: usize,
    start: Instant,
    duration: Duration,
) {
    if !enabled() {
        return;
    }
    let start_us = start.checked_duration_since(epoch()).unwrap_or_default().as_micros() as u64;
    push_event(TraceEvent {
        name: name.into(),
        detail: detail.into(),
        depth,
        start_us,
        duration_us: duration.as_micros() as u64,
        trace_id,
        span_id,
        parent_id,
    });
}

/// Copies the trace buffer, oldest event first.
pub fn snapshot_trace() -> Vec<TraceEvent> {
    trace_buffer().lock().expect("trace buffer lock").iter().cloned().collect()
}

/// Drains the trace buffer, oldest event first.
pub fn drain_trace() -> Vec<TraceEvent> {
    trace_buffer().lock().expect("trace buffer lock").drain(..).collect()
}

pub(crate) fn clear_trace() {
    trace_buffer().lock().expect("trace buffer lock").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Opens a [`Span`]: `span!("transpile.pass", pass = name)`.
///
/// The first argument is the span name; the remaining `key = value` pairs
/// are rendered into the detail string with `Display`. Bind the result
/// (`let _span = span!(...)`) so the scope ends where you expect. While
/// recording is disabled nothing is formatted or timed.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::Span::new($name, String::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::Span::new(
                $name,
                vec![$(format!(concat!(stringify!($key), "={}"), $value)),+].join(" "),
            )
        } else {
            $crate::Span::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn spans_nest_and_log_in_completion_order() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        {
            let _outer = crate::span!("test.outer", layer = "a");
            let _inner = crate::span!("test.inner");
        }
        let trace = drain_trace();
        assert_eq!(trace.len(), 2);
        // Inner closes first.
        assert_eq!(trace[0].name, "test.inner");
        assert_eq!(trace[0].depth, 1);
        assert_eq!(trace[1].name, "test.outer");
        assert_eq!(trace[1].depth, 0);
        assert_eq!(trace[1].detail, "layer=a");
        assert!(trace[1].start_us <= trace[0].start_us);
        // Even without an attached context, parent links connect spans.
        assert_eq!(trace[0].parent_id, trace[1].span_id);
        assert_eq!(trace[1].trace_id, 0);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn with_metric_observes_duration_histogram() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        {
            let _span = Span::new("test.metric", "").with_metric("qukit_obs_test_span_seconds");
        }
        let snapshot = crate::registry().snapshot();
        assert_eq!(snapshot.histograms["qukit_obs_test_span_seconds"].count, 1);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        set_enabled(false);
        clear_trace();
        {
            let span = crate::span!("test.disabled", ignored = 1);
            assert_eq!(span.elapsed(), Duration::ZERO);
            assert_eq!(span.span_id(), 0);
        }
        assert!(snapshot_trace().is_empty());
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        assert_eq!(trace_events_dropped(), 0);
        for i in 0..(TRACE_CAPACITY + 10) {
            let _span = crate::span!("test.flood", index = i);
        }
        let trace = drain_trace();
        assert_eq!(trace.len(), TRACE_CAPACITY);
        // The oldest events were dropped, and the loss is counted.
        assert_eq!(trace[0].detail, "index=10");
        assert_eq!(trace_events_dropped(), 10);
        crate::reset();
        assert_eq!(trace_events_dropped(), 0);
        set_enabled(false);
    }

    #[test]
    fn contexts_attach_propagate_and_restore() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        assert_eq!(TraceContext::current(), None);
        let root = TraceContext::mint();
        assert_eq!(root.span_id, root.trace_id);
        {
            let _attached = root.attach();
            assert_eq!(TraceContext::current(), Some(root));
            {
                let _span = crate::span!("test.ctx.child");
                // The open span became the current parent.
                let inner = TraceContext::current().expect("context");
                assert_eq!(inner.trace_id, root.trace_id);
                assert_ne!(inner.span_id, root.span_id);
            }
            assert_eq!(TraceContext::current(), Some(root));
        }
        assert_eq!(TraceContext::current(), None);
        let trace = drain_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].trace_id, root.trace_id);
        assert_eq!(trace[0].parent_id, root.span_id);
        assert_ne!(trace[0].span_id, 0);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn minted_ids_are_unique_nonzero_and_json_safe() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(id < (1 << 53), "id fits in an f64 mantissa");
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn record_span_at_clamps_pre_epoch_starts() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        let early = Instant::now();
        record_span_at("test.manual", "k=v", 7, 9, 0, 0, early, Duration::from_micros(25));
        let trace = drain_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].trace_id, 7);
        assert_eq!(trace[0].span_id, 9);
        assert_eq!(trace[0].duration_us, 25);
        crate::reset();
        set_enabled(false);
    }
}
