//! A zero-dependency blocking HTTP listener serving the live registry.
//!
//! Three routes, enough for a scrape loop and a quick look at what the
//! service is doing right now:
//!
//! * `GET /metrics` — the Prometheus text exposition of a fresh snapshot
//! * `GET /healthz` — `ok`, for liveness probes
//! * `GET /traces/recent` — the current trace ring buffer as Chrome
//!   trace-event JSON (save it, load it in Perfetto)
//!
//! The server is deliberately minimal: `std::net::TcpListener`, one
//! accept loop on one background thread, one request per connection,
//! `Connection: close`. A scrape every few seconds is the design load;
//! this is an instrument, not a web server.

use crate::export::{chrome_trace, prometheus};
use crate::registry::registry;
use crate::span::snapshot_trace;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics listener. Dropping it without calling
/// [`MetricsServer::shutdown`] detaches the serving thread (it keeps
/// serving until the process exits).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9187`, or port 0 for an ephemeral port)
/// and serves the routes above on a background thread.
pub fn serve(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle =
        std::thread::Builder::new().name("qukit-metrics-http".to_owned()).spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // One slow or broken client must not wedge the loop.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = handle_connection(stream);
                }
            }
        })?;
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

fn handle_connection(stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block; we only route on the request line.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = route(method, path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus(&registry().snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/traces/recent" => {
            ("200 OK", "application/json; charset=utf-8", chrome_trace(&snapshot_trace()))
        }
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_healthz_and_recent_traces() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        crate::counter_add("qukit_obs_test_http_total", 3);
        {
            let _span = crate::span!("test.http.span");
        }
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("qukit_obs_test_http_total 3"), "{body}");
        assert!(body.contains("qukit_obs_trace_events_dropped_total"), "{body}");

        let (head, body) = get(addr, "/traces/recent");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        crate::export::validate_chrome_trace(&body).expect("chrome-trace JSON");
        assert!(body.contains("test.http.span"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }
}
