//! Per-trace span trees assembled from the ring buffer, and tail-latency
//! trace sampling.
//!
//! The ring buffer stores completed spans flat, in completion order, from
//! every thread at once. [`assemble_trees`] regroups them into one tree
//! per trace id using the explicit `span_id`/`parent_id` links (never the
//! per-thread depth, which interleaves across threads). When a parent was
//! evicted from the bounded buffer the orphaned subtree is promoted to an
//! extra root and the tree is marked [`SpanTree::partial`] — a truthful
//! partial waterfall instead of a silently mis-nested one.

use crate::span::TraceEvent;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One span plus the spans it caused, sorted by start time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The completed span.
    pub event: TraceEvent,
    /// Child spans, ascending by `start_us`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(event: TraceEvent) -> Self {
        Self { event, children: Vec::new() }
    }

    /// Total number of spans in this subtree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }
}

/// All recorded spans of one trace, nested by causal links.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The trace these spans share (0 = spans recorded with no context).
    pub trace_id: u64,
    /// Top-level spans: true roots (`parent_id == 0`) plus any orphans
    /// whose parent was evicted, ascending by `start_us`.
    pub roots: Vec<SpanNode>,
    /// `true` when at least one span's parent is missing from the buffer
    /// (evicted or still open), so the tree is a truncated view.
    pub partial: bool,
}

impl SpanTree {
    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// Wall-clock extent of the tree: the longest root duration.
    pub fn duration(&self) -> Duration {
        let longest = self.roots.iter().map(|r| r.event.duration_us).max().unwrap_or(0);
        Duration::from_micros(longest)
    }

    /// Depth-first walk over every span in the tree.
    pub fn walk(&self, mut visit: impl FnMut(&SpanNode, usize)) {
        fn go(node: &SpanNode, level: usize, visit: &mut impl FnMut(&SpanNode, usize)) {
            visit(node, level);
            for child in &node.children {
                go(child, level + 1, visit);
            }
        }
        for root in &self.roots {
            go(root, 0, &mut visit);
        }
    }

    /// The first span (depth-first) whose name matches, if any.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn go<'a>(node: &'a SpanNode, name: &str) -> Option<&'a SpanNode> {
            if node.event.name == name {
                return Some(node);
            }
            node.children.iter().find_map(|child| go(child, name))
        }
        self.roots.iter().find_map(|root| go(root, name))
    }
}

/// Groups ring-buffer events into one [`SpanTree`] per trace id, ascending
/// by trace id (the 0 "untraced" group first when present).
///
/// Events whose `span_id` is 0 (pre-tracing snapshots) cannot be linked
/// and are reported as roots of the untraced group.
pub fn assemble_trees(events: &[TraceEvent]) -> Vec<SpanTree> {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for event in events {
        by_trace.entry(event.trace_id).or_default().push(event);
    }
    by_trace
        .into_iter()
        .map(|(trace_id, group)| {
            let present: HashSet<u64> =
                group.iter().map(|e| e.span_id).filter(|&id| id != 0).collect();
            let mut partial = false;
            // Children grouped under each present parent; everything else
            // (true roots, orphans, unlinkable legacy events) is a root.
            let mut children_of: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
            let mut roots: Vec<SpanNode> = Vec::new();
            for event in group {
                let node = SpanNode::new(event.clone());
                if event.parent_id != 0 && present.contains(&event.parent_id) {
                    children_of.entry(event.parent_id).or_default().push(node);
                } else {
                    if event.parent_id != 0 {
                        partial = true;
                    }
                    roots.push(node);
                }
            }
            fn attach(node: &mut SpanNode, children_of: &mut BTreeMap<u64, Vec<SpanNode>>) {
                if let Some(mut children) = children_of.remove(&node.event.span_id) {
                    for child in &mut children {
                        attach(child, children_of);
                    }
                    children.sort_by_key(|c| c.event.start_us);
                    node.children = children;
                }
            }
            for root in &mut roots {
                attach(root, &mut children_of);
            }
            // Cycles (corrupt ids) would leave entries behind; surface
            // them as partial roots rather than dropping spans.
            if !children_of.is_empty() {
                partial = true;
                for (_, orphans) in std::mem::take(&mut children_of) {
                    roots.extend(orphans);
                }
            }
            roots.sort_by_key(|r| r.event.start_us);
            SpanTree { trace_id, roots, partial }
        })
        .collect()
}

/// Tail-latency exemplar selection: keeps the full span tree of every
/// trace slower than `threshold`, plus a deterministic 1-in-N sample of
/// the rest. Selection state is a plain counter — no clock, no RNG — so
/// repeated runs with the same job stream keep the same exemplars.
#[derive(Debug)]
pub struct TraceSampler {
    threshold: Duration,
    sample_every: u64,
    seen: AtomicU64,
}

impl TraceSampler {
    /// `threshold`: keep every trace at least this slow. `sample_every`:
    /// additionally keep every Nth trace regardless of speed (0 disables
    /// the 1-in-N stream).
    pub fn new(threshold: Duration, sample_every: u64) -> Self {
        Self { threshold, sample_every, seen: AtomicU64::new(0) }
    }

    /// Keep everything: zero threshold (every trace qualifies as slow).
    pub fn keep_all() -> Self {
        Self::new(Duration::ZERO, 1)
    }

    /// Whether a trace of this duration is kept. Advances the 1-in-N
    /// counter, so call exactly once per trace.
    pub fn should_keep(&self, duration: Duration) -> bool {
        let nth = self.seen.fetch_add(1, Ordering::Relaxed);
        if duration >= self.threshold {
            return true;
        }
        self.sample_every > 0 && nth.is_multiple_of(self.sample_every)
    }

    /// Filters assembled trees, keeping slow traces and the 1-in-N
    /// sample. The untraced group (trace id 0) is always kept: it holds
    /// spans that belong to no job and has no single duration.
    pub fn select(&self, trees: Vec<SpanTree>) -> Vec<SpanTree> {
        trees
            .into_iter()
            .filter(|tree| tree.trace_id == 0 || self.should_keep(tree.duration()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(trace: u64, span: u64, parent: u64, start: u64, dur: u64, name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_owned(),
            detail: String::new(),
            depth: 0,
            start_us: start,
            duration_us: dur,
            trace_id: trace,
            span_id: span,
            parent_id: parent,
        }
    }

    #[test]
    fn assembles_nested_trees_per_trace() {
        // Two traces interleaved in completion order, children first.
        let events = vec![
            event(1, 11, 10, 5, 10, "a.child1"),
            event(2, 21, 20, 7, 3, "b.child"),
            event(1, 12, 10, 20, 4, "a.child2"),
            event(1, 13, 12, 21, 2, "a.grandchild"),
            event(1, 10, 0, 0, 30, "a.root"),
            event(2, 20, 0, 6, 9, "b.root"),
        ];
        let trees = assemble_trees(&events);
        assert_eq!(trees.len(), 2);
        let a = &trees[0];
        assert_eq!(a.trace_id, 1);
        assert!(!a.partial);
        assert_eq!(a.roots.len(), 1);
        assert_eq!(a.roots[0].event.name, "a.root");
        let kids: Vec<&str> = a.roots[0].children.iter().map(|c| c.event.name.as_str()).collect();
        assert_eq!(kids, ["a.child1", "a.child2"], "children sorted by start");
        assert_eq!(a.roots[0].children[1].children[0].event.name, "a.grandchild");
        assert_eq!(a.span_count(), 4);
        assert_eq!(a.duration(), Duration::from_micros(30));
        assert_eq!(trees[1].trace_id, 2);
        assert_eq!(trees[1].span_count(), 2);
    }

    #[test]
    fn evicted_parent_yields_partial_tree_not_mis_nesting() {
        // The parent span (id 10) was evicted from the ring buffer; the
        // orphan must become a root with partial=true, not get grafted
        // under some unrelated span.
        let events = vec![
            event(1, 11, 10, 5, 10, "orphan"),
            event(1, 12, 11, 6, 2, "orphan.child"),
            event(1, 13, 0, 50, 5, "late.root"),
        ];
        let trees = assemble_trees(&events);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert!(tree.partial, "missing parent reported");
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.roots[0].event.name, "orphan");
        assert_eq!(tree.roots[0].children[0].event.name, "orphan.child");
        assert_eq!(tree.roots[1].event.name, "late.root");
    }

    #[test]
    fn find_and_walk_traverse_depth_first() {
        let events = vec![
            event(1, 10, 0, 0, 30, "root"),
            event(1, 11, 10, 1, 5, "mid"),
            event(1, 12, 11, 2, 1, "leaf"),
        ];
        let tree = &assemble_trees(&events)[0];
        assert_eq!(tree.find("leaf").expect("leaf").event.span_id, 12);
        assert!(tree.find("absent").is_none());
        let mut seen = Vec::new();
        tree.walk(|node, level| seen.push((node.event.name.clone(), level)));
        assert_eq!(
            seen,
            vec![("root".to_owned(), 0), ("mid".to_owned(), 1), ("leaf".to_owned(), 2)]
        );
    }

    #[test]
    fn sampler_keeps_slow_traces_and_one_in_n() {
        let sampler = TraceSampler::new(Duration::from_millis(10), 4);
        let mut kept = Vec::new();
        for i in 0..8u64 {
            // Traces 3 and 7 are slow; the 1-in-4 stream keeps 0 and 4.
            let duration =
                if i % 4 == 3 { Duration::from_millis(50) } else { Duration::from_micros(10) };
            if sampler.should_keep(duration) {
                kept.push(i);
            }
        }
        assert_eq!(kept, vec![0, 3, 4, 7]);
        // keep_all keeps everything.
        let all = TraceSampler::keep_all();
        assert!(all.should_keep(Duration::ZERO));
        assert!(all.should_keep(Duration::from_secs(1)));
    }

    #[test]
    fn select_always_keeps_the_untraced_group() {
        let trees =
            assemble_trees(&[event(0, 1, 0, 0, 1, "untraced"), event(5, 5, 0, 0, 1, "fast.root")]);
        // Threshold high, sampling off: only the untraced group survives.
        let sampler = TraceSampler::new(Duration::from_secs(1), 0);
        let kept = sampler.select(trees);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].trace_id, 0);
    }
}
