//! The global, thread-safe metrics registry and its three metric kinds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Recording switch. Off by default; when off, every record call is a
/// single relaxed load plus a predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables metric and trace recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Default histogram buckets for durations in seconds (1 µs … 1 s, with an
/// implicit `+Inf` overflow bucket).
pub const DURATION_BUCKETS: [f64; 10] =
    [1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1.0];

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta`; a no-op while recording is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A float metric that can move in both directions (stored as `f64` bits
/// in an atomic, updated by compare-and-swap).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge; a no-op while recording is disabled.
    pub fn set(&self, value: f64) {
        if enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative); a no-op while recording is disabled.
    pub fn add(&self, delta: f64) {
        if !enabled() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: cumulative-style export, Prometheus-shaped.
///
/// Bucket `i` counts observations `v <= bounds[i]` that fell in no earlier
/// bucket; one extra overflow bucket catches everything beyond the last
/// bound (exported as `+Inf`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    state: Mutex<HistogramState>,
}

#[derive(Debug)]
struct HistogramState {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = vec![0u64; sorted.len() + 1];
        Self { bounds: sorted, state: Mutex::new(HistogramState { buckets, count: 0, sum: 0.0 }) }
    }

    /// Records one observation; a no-op while recording is disabled.
    pub fn observe(&self, value: f64) {
        if !enabled() {
            return;
        }
        let index = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        let mut state = self.state.lock().expect("histogram lock");
        state.buckets[index] += 1;
        state.count += 1;
        state.sum += value;
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(duration.as_secs_f64());
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let state = self.state.lock().expect("histogram lock");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: state.buckets.clone(),
            count: state.count,
            sum: state.sum,
        }
    }
}

/// A frozen copy of one histogram's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets; an implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// standard Prometheus `histogram_quantile` recipe. Returns 0 for
    /// an empty histogram. Ranks falling in the `+Inf` overflow bucket
    /// report the largest finite bound (a lower-bound estimate), since
    /// the bucket has no upper edge to interpolate toward.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.buckets.iter().enumerate() {
            let next = cumulative + bucket_count;
            if (next as f64) >= rank && bucket_count > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: no finite upper edge.
                    return *self.bounds.last().expect("bounds nonempty");
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let fraction = (rank - cumulative as f64) / bucket_count as f64;
                return lower + fraction * (upper - lower);
            }
            cumulative = next;
        }
        *self.bounds.last().expect("bounds nonempty")
    }
}

/// A frozen copy of the whole registry plus the trace buffer, consumed by
/// the exporters in [`crate::export`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → contents.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans, oldest first (bounded by [`crate::TRACE_CAPACITY`]).
    pub trace: Vec<crate::span::TraceEvent>,
}

impl Snapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.trace.is_empty()
    }
}

/// Registry of every named metric. One global instance lives behind
/// [`registry`]; separate instances exist only for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Returns (registering on first use) the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map lock");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&created));
        created
    }

    /// Returns (registering on first use) the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map lock");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Gauge::default());
        map.insert(name.to_owned(), Arc::clone(&created));
        created
    }

    /// Returns (registering on first use) the histogram with this name.
    /// The bounds of the first registration win; later callers share it.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map lock");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Histogram::new(bounds));
        map.insert(name.to_owned(), Arc::clone(&created));
        created
    }

    /// Freezes every metric plus the trace buffer into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot { counters, gauges, histograms, trace: crate::span::snapshot_trace() }
    }

    /// Drops every registered metric and clears the trace buffer.
    pub fn reset(&self) {
        self.counters.lock().expect("counter map lock").clear();
        self.gauges.lock().expect("gauge map lock").clear();
        self.histograms.lock().expect("histogram map lock").clear();
        crate::span::clear_trace();
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Handle to the named global counter (for hot loops that cache it).
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Adds `delta` to the named global counter.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        registry().counter(name).add(delta);
    }
}

/// Adds one to the named global counter.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Handle to the named global gauge.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Sets the named global gauge.
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        registry().gauge(name).set(value);
    }
}

/// Adds `delta` (may be negative) to the named global gauge.
pub fn gauge_add(name: &str, delta: f64) {
    if enabled() {
        registry().gauge(name).add(delta);
    }
}

/// Handle to the named global histogram with the given bounds (first
/// registration wins).
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    registry().histogram(name, bounds)
}

/// Records one observation into the named global histogram, registering it
/// with [`DURATION_BUCKETS`] on first use.
pub fn observe(name: &str, value: f64) {
    if enabled() {
        registry().histogram(name, &DURATION_BUCKETS).observe(value);
    }
}

/// Records a duration in seconds into the named global histogram.
pub fn observe_duration(name: &str, duration: Duration) {
    observe(name, duration.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let snapshot = HistogramSnapshot {
            bounds: vec![1.0, 2.0, 4.0],
            // 10 observations <=1, 10 in (1,2], none in (2,4], 0 overflow.
            buckets: vec![10, 10, 0, 0],
            count: 20,
            sum: 25.0,
        };
        // Rank 10 is the last observation of the first bucket.
        assert!((snapshot.quantile(0.5) - 1.0).abs() < 1e-9);
        // Rank 15 sits halfway through the (1,2] bucket.
        assert!((snapshot.quantile(0.75) - 1.5).abs() < 1e-9);
        assert!((snapshot.quantile(1.0) - 2.0).abs() < 1e-9);
        // q clamps instead of panicking.
        assert!(snapshot.quantile(-1.0) <= snapshot.quantile(2.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty =
            HistogramSnapshot { bounds: vec![1.0], buckets: vec![0, 0], count: 0, sum: 0.0 };
        assert_eq!(empty.quantile(0.5), 0.0);
        // Everything overflowed: report the largest finite bound.
        let overflow = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            buckets: vec![0, 0, 5],
            count: 5,
            sum: 50.0,
        };
        assert_eq!(overflow.quantile(0.5), 2.0);
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                thread::spawn(|| {
                    let counter = counter("qukit_obs_test_contended_total");
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                    gauge_add("qukit_obs_test_gauge", 1.0);
                    observe("qukit_obs_test_hist_seconds", 1e-5);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker panicked");
        }
        let snapshot = registry().snapshot();
        assert_eq!(
            snapshot.counters["qukit_obs_test_contended_total"],
            THREADS as u64 * PER_THREAD
        );
        assert_eq!(snapshot.gauges["qukit_obs_test_gauge"], THREADS as f64);
        assert_eq!(snapshot.histograms["qukit_obs_test_hist_seconds"].count, THREADS as u64);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _guard = crate::test_lock();
        set_enabled(true);
        let hist = Histogram::new(&[1.0, 2.0, 4.0]);
        // On-boundary values land in their own bucket (v <= bound).
        hist.observe(1.0);
        hist.observe(2.0);
        hist.observe(4.0);
        // Interior values land in the first bucket whose bound is >= v.
        hist.observe(0.5);
        hist.observe(3.0);
        // Beyond the last bound lands in the +Inf overflow bucket.
        hist.observe(100.0);
        let snap = hist.snapshot();
        assert_eq!(snap.bounds, vec![1.0, 2.0, 4.0]);
        assert_eq!(snap.buckets, vec![2, 1, 2, 1]);
        assert_eq!(snap.count, 6);
        assert!((snap.sum - 110.5).abs() < 1e-12);
        assert!((snap.mean() - 110.5 / 6.0).abs() < 1e-12);
        set_enabled(false);
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let _guard = crate::test_lock();
        set_enabled(false);
        let counter = Counter::default();
        counter.add(5);
        assert_eq!(counter.value(), 0);
        let gauge = Gauge::default();
        gauge.set(3.0);
        gauge.add(1.0);
        assert_eq!(gauge.value(), 0.0);
        let hist = Histogram::new(&[1.0]);
        hist.observe(0.5);
        assert_eq!(hist.snapshot().count, 0);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let hist = Histogram::new(&[4.0, 1.0, 2.0, 1.0, f64::INFINITY]);
        assert_eq!(hist.bounds(), &[1.0, 2.0, 4.0]);
        assert_eq!(hist.snapshot().buckets.len(), 4);
    }
}
