//! The global, thread-safe metrics registry and its three metric kinds.
//!
//! # Labels
//!
//! A metric series is identified by a full name of the form
//! `base{key="value",...}`. The labeled helpers ([`counter_with`],
//! [`observe_with`], …) build that full name for you with proper
//! Prometheus escaping of label values, validate the base and label names
//! against the Prometheus charset (a panic-free [`MetricNameError`]
//! otherwise), and enforce a bounded-cardinality guard: once a base name
//! has [`MAX_LABEL_SETS`] distinct label sets, further sets fold into a
//! single `base{overflow="true"}` series and the clamp is counted by
//! `qukit_obs_label_cardinality_limited_total` — an unbounded label value
//! (a user id, say) cannot grow the registry without bound.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Recording switch. Off by default; when off, every record call is a
/// single relaxed load plus a predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables metric and trace recording.
pub fn set_enabled(on: bool) {
    if on {
        crate::span::init_epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Default histogram buckets for durations in seconds (1 µs … 1 s, with an
/// implicit `+Inf` overflow bucket).
pub const DURATION_BUCKETS: [f64; 10] =
    [1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1.0];

/// Maximum distinct label sets per base metric name before the
/// cardinality guard folds new sets into `base{overflow="true"}`.
pub const MAX_LABEL_SETS: usize = 64;

/// A rejected metric or label name: which name and why. Registration
/// never panics on bad names; the fallible `try_*` APIs return this and
/// the infallible ones count the rejection into
/// `qukit_obs_invalid_metric_names_total` and hand back a detached metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricNameError {
    /// The offending name as given.
    pub name: String,
    /// What rule it broke.
    pub reason: &'static str,
}

impl std::fmt::Display for MetricNameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid metric name {:?}: {}", self.name, self.reason)
    }
}

impl std::error::Error for MetricNameError {}

/// Validates a bare metric name against the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn validate_metric_name(name: &str) -> Result<(), MetricNameError> {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return Err(MetricNameError { name: name.to_owned(), reason: "empty name" });
    };
    if !(first.is_ascii_alphabetic() || first == '_' || first == ':') {
        return Err(MetricNameError {
            name: name.to_owned(),
            reason: "must start with [a-zA-Z_:]",
        });
    }
    if chars.any(|c| !(c.is_ascii_alphanumeric() || c == '_' || c == ':')) {
        return Err(MetricNameError {
            name: name.to_owned(),
            reason: "contains characters outside [a-zA-Z0-9_:]",
        });
    }
    Ok(())
}

/// Validates a label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn validate_label_name(name: &str) -> Result<(), MetricNameError> {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return Err(MetricNameError { name: name.to_owned(), reason: "empty label name" });
    };
    if !(first.is_ascii_alphabetic() || first == '_')
        || chars.any(|c| !(c.is_ascii_alphanumeric() || c == '_'))
    {
        return Err(MetricNameError {
            name: name.to_owned(),
            reason: "label names match [a-zA-Z_][a-zA-Z0-9_]*",
        });
    }
    Ok(())
}

/// Validates a full series name: a bare base, or `base{...}` (the label
/// body itself is trusted — use [`labeled_name`] to build one safely).
fn validate_series_name(name: &str) -> Result<(), MetricNameError> {
    match name.find('{') {
        None => validate_metric_name(name),
        Some(open) => {
            validate_metric_name(&name[..open])?;
            if !name.ends_with('}') {
                return Err(MetricNameError {
                    name: name.to_owned(),
                    reason: "unterminated label body",
                });
            }
            Ok(())
        }
    }
}

/// Escapes a label value for the Prometheus text format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Builds the full series name `base{key="value",...}` with validated
/// names and escaped values. With no labels, returns the bare base.
pub fn labeled_name(base: &str, labels: &[(&str, &str)]) -> Result<String, MetricNameError> {
    validate_metric_name(base)?;
    if labels.is_empty() {
        return Ok(base.to_owned());
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (index, (key, value)) in labels.iter().enumerate() {
        validate_label_name(key)?;
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
    Ok(out)
}

/// Name of the series new label sets fold into once a base hits
/// [`MAX_LABEL_SETS`].
fn overflow_name(base: &str) -> String {
    format!("{base}{{overflow=\"true\"}}")
}

/// Counts registered series of `base` (labeled sets only).
fn label_set_count<T>(map: &BTreeMap<String, Arc<T>>, base: &str) -> usize {
    let prefix = format!("{base}{{");
    map.range(prefix.clone()..).take_while(|(k, _)| k.starts_with(prefix.as_str())).count()
}

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta`; a no-op while recording is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A float metric that can move in both directions (stored as `f64` bits
/// in an atomic, updated by compare-and-swap).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge; a no-op while recording is disabled.
    pub fn set(&self, value: f64) {
        if enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative); a no-op while recording is disabled.
    pub fn add(&self, delta: f64) {
        if !enabled() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: cumulative-style export, Prometheus-shaped.
///
/// Bucket `i` counts observations `v <= bounds[i]` that fell in no earlier
/// bucket; one extra overflow bucket catches everything beyond the last
/// bound (exported as `+Inf`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    state: Mutex<HistogramState>,
}

#[derive(Debug)]
struct HistogramState {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = vec![0u64; sorted.len() + 1];
        Self { bounds: sorted, state: Mutex::new(HistogramState { buckets, count: 0, sum: 0.0 }) }
    }

    /// Records one observation; a no-op while recording is disabled.
    pub fn observe(&self, value: f64) {
        if !enabled() {
            return;
        }
        let index = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        let mut state = self.state.lock().expect("histogram lock");
        state.buckets[index] += 1;
        state.count += 1;
        state.sum += value;
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(duration.as_secs_f64());
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let state = self.state.lock().expect("histogram lock");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: state.buckets.clone(),
            count: state.count,
            sum: state.sum,
        }
    }
}

/// A frozen copy of one histogram's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets; an implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// standard Prometheus `histogram_quantile` recipe. Returns 0 for
    /// an empty histogram. Ranks falling in the `+Inf` overflow bucket
    /// report the largest finite bound (a lower-bound estimate), since
    /// the bucket has no upper edge to interpolate toward.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.buckets.iter().enumerate() {
            let next = cumulative + bucket_count;
            if (next as f64) >= rank && bucket_count > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: no finite upper edge.
                    return *self.bounds.last().expect("bounds nonempty");
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let fraction = (rank - cumulative as f64) / bucket_count as f64;
                return lower + fraction * (upper - lower);
            }
            cumulative = next;
        }
        *self.bounds.last().expect("bounds nonempty")
    }
}

/// A frozen copy of the whole registry plus the trace buffer, consumed by
/// the exporters in [`crate::export`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → contents.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans, oldest first (bounded by [`crate::TRACE_CAPACITY`]).
    pub trace: Vec<crate::span::TraceEvent>,
    /// Base metric name → HELP text (see [`describe`]).
    pub help: BTreeMap<String, String>,
}

impl Snapshot {
    /// Whether nothing at all was recorded (HELP text alone is metadata,
    /// not a recording).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.trace.is_empty()
    }
}

/// Registry of every named metric. One global instance lives behind
/// [`registry`]; separate instances exist only for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    /// Returns (registering on first use) the counter with this name.
    /// An invalid name yields a detached counter and is counted into
    /// `qukit_obs_invalid_metric_names_total` (see [`Self::try_counter`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.try_counter(name).unwrap_or_else(|_| self.rejected_counter())
    }

    /// Fallible registration: rejects names outside the Prometheus
    /// charset with a typed error instead of panicking or registering.
    pub fn try_counter(&self, name: &str) -> Result<Arc<Counter>, MetricNameError> {
        validate_series_name(name)?;
        let mut map = self.counters.lock().expect("counter map lock");
        if let Some(existing) = map.get(name) {
            return Ok(Arc::clone(existing));
        }
        let created = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&created));
        Ok(created)
    }

    /// The labeled counter `base{labels…}`, subject to the cardinality
    /// guard: past [`MAX_LABEL_SETS`] distinct sets the overflow series
    /// is returned instead.
    pub fn try_counter_with(
        &self,
        base: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Counter>, MetricNameError> {
        let full = labeled_name(base, labels)?;
        let mut map = self.counters.lock().expect("counter map lock");
        if let Some(existing) = map.get(&full) {
            return Ok(Arc::clone(existing));
        }
        let name = if !labels.is_empty() && label_set_count(&map, base) >= MAX_LABEL_SETS {
            map.entry("qukit_obs_label_cardinality_limited_total".to_owned()).or_default().inc();
            overflow_name(base)
        } else {
            full
        };
        Ok(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns (registering on first use) the gauge with this name; the
    /// same invalid-name policy as [`Self::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.try_gauge(name).unwrap_or_else(|_| {
            self.note_rejected_name();
            Arc::new(Gauge::default())
        })
    }

    /// Fallible gauge registration (typed error on a bad name).
    pub fn try_gauge(&self, name: &str) -> Result<Arc<Gauge>, MetricNameError> {
        validate_series_name(name)?;
        let mut map = self.gauges.lock().expect("gauge map lock");
        if let Some(existing) = map.get(name) {
            return Ok(Arc::clone(existing));
        }
        let created = Arc::new(Gauge::default());
        map.insert(name.to_owned(), Arc::clone(&created));
        Ok(created)
    }

    /// The labeled gauge `base{labels…}`, cardinality-guarded.
    pub fn try_gauge_with(
        &self,
        base: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Gauge>, MetricNameError> {
        let full = labeled_name(base, labels)?;
        let mut map = self.gauges.lock().expect("gauge map lock");
        if let Some(existing) = map.get(&full) {
            return Ok(Arc::clone(existing));
        }
        let name = if !labels.is_empty() && label_set_count(&map, base) >= MAX_LABEL_SETS {
            self.note_rejected_series();
            overflow_name(base)
        } else {
            full
        };
        Ok(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns (registering on first use) the histogram with this name.
    /// The bounds of the first registration win; later callers share it.
    /// The same invalid-name policy as [`Self::counter`].
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.try_histogram(name, bounds).unwrap_or_else(|_| {
            self.note_rejected_name();
            Arc::new(Histogram::new(bounds))
        })
    }

    /// Fallible histogram registration (typed error on a bad name).
    pub fn try_histogram(
        &self,
        name: &str,
        bounds: &[f64],
    ) -> Result<Arc<Histogram>, MetricNameError> {
        validate_series_name(name)?;
        Ok(self.histogram_unchecked(name.to_owned(), bounds))
    }

    /// The labeled histogram `base{labels…}`, cardinality-guarded.
    pub fn try_histogram_with(
        &self,
        base: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Result<Arc<Histogram>, MetricNameError> {
        let full = labeled_name(base, labels)?;
        {
            let map = self.histograms.lock().expect("histogram map lock");
            if let Some(existing) = map.get(&full) {
                return Ok(Arc::clone(existing));
            }
            if !labels.is_empty() && label_set_count(&map, base) >= MAX_LABEL_SETS {
                drop(map);
                self.note_rejected_series();
                return Ok(self.histogram_unchecked(overflow_name(base), bounds));
            }
        }
        Ok(self.histogram_unchecked(full, bounds))
    }

    fn histogram_unchecked(&self, name: String, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map lock");
        if let Some(existing) = map.get(&name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Histogram::new(bounds));
        map.insert(name, Arc::clone(&created));
        created
    }

    fn rejected_counter(&self) -> Arc<Counter> {
        self.note_rejected_name();
        Arc::new(Counter::default())
    }

    fn note_rejected_name(&self) {
        self.counters
            .lock()
            .expect("counter map lock")
            .entry("qukit_obs_invalid_metric_names_total".to_owned())
            .or_default()
            .inc();
    }

    fn note_rejected_series(&self) {
        self.counters
            .lock()
            .expect("counter map lock")
            .entry("qukit_obs_label_cardinality_limited_total".to_owned())
            .or_default()
            .inc();
    }

    /// Attaches Prometheus HELP text to a base metric name; rendered by
    /// the text exporter (with escaping). Last write wins.
    pub fn describe(&self, name: &str, help: &str) {
        self.help.lock().expect("help map lock").insert(name.to_owned(), help.to_owned());
    }

    /// Freezes every metric plus the trace buffer into a [`Snapshot`].
    /// The ring buffer's eviction count is surfaced as the
    /// `qukit_obs_trace_events_dropped_total` counter whenever any trace
    /// activity happened, so every exporter reports trace loss.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let trace = crate::span::snapshot_trace();
        let dropped = crate::span::trace_events_dropped();
        if dropped > 0 || !trace.is_empty() {
            counters.insert("qukit_obs_trace_events_dropped_total".to_owned(), dropped);
        }
        let help = self.help.lock().expect("help map lock").clone();
        Snapshot { counters, gauges, histograms, trace, help }
    }

    /// Drops every registered metric (HELP text included) and clears the
    /// trace buffer and its drop counter.
    pub fn reset(&self) {
        self.counters.lock().expect("counter map lock").clear();
        self.gauges.lock().expect("gauge map lock").clear();
        self.histograms.lock().expect("histogram map lock").clear();
        self.help.lock().expect("help map lock").clear();
        crate::span::clear_trace();
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Handle to the named global counter (for hot loops that cache it).
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Handle to the named, labeled global counter (cardinality-guarded;
/// invalid names yield a detached counter, counted as rejected).
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    registry().try_counter_with(name, labels).unwrap_or_else(|_| registry().rejected_counter())
}

/// Adds `delta` to the named global counter.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        registry().counter(name).add(delta);
    }
}

/// Adds one to the named global counter.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Adds `delta` to the named, labeled global counter.
pub fn counter_add_with(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        counter_with(name, labels).add(delta);
    }
}

/// Adds one to the named, labeled global counter.
pub fn counter_inc_with(name: &str, labels: &[(&str, &str)]) {
    counter_add_with(name, labels, 1);
}

/// Handle to the named global gauge.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Sets the named global gauge.
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        registry().gauge(name).set(value);
    }
}

/// Sets the named, labeled global gauge.
pub fn gauge_set_with(name: &str, labels: &[(&str, &str)], value: f64) {
    if enabled() {
        if let Ok(gauge) = registry().try_gauge_with(name, labels) {
            gauge.set(value);
        } else {
            registry().note_rejected_name();
        }
    }
}

/// Adds `delta` (may be negative) to the named global gauge.
pub fn gauge_add(name: &str, delta: f64) {
    if enabled() {
        registry().gauge(name).add(delta);
    }
}

/// Handle to the named global histogram with the given bounds (first
/// registration wins).
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    registry().histogram(name, bounds)
}

/// Records one observation into the named global histogram, registering it
/// with [`DURATION_BUCKETS`] on first use.
pub fn observe(name: &str, value: f64) {
    if enabled() {
        registry().histogram(name, &DURATION_BUCKETS).observe(value);
    }
}

/// Records one observation into the named, labeled global histogram
/// ([`DURATION_BUCKETS`] on first use, cardinality-guarded).
pub fn observe_with(name: &str, labels: &[(&str, &str)], value: f64) {
    if enabled() {
        if let Ok(hist) = registry().try_histogram_with(name, labels, &DURATION_BUCKETS) {
            hist.observe(value);
        } else {
            registry().note_rejected_name();
        }
    }
}

/// Records a duration in seconds into the named global histogram.
pub fn observe_duration(name: &str, duration: Duration) {
    observe(name, duration.as_secs_f64());
}

/// Attaches Prometheus HELP text to a base metric name.
pub fn describe(name: &str, help: &str) {
    registry().describe(name, help);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let snapshot = HistogramSnapshot {
            bounds: vec![1.0, 2.0, 4.0],
            // 10 observations <=1, 10 in (1,2], none in (2,4], 0 overflow.
            buckets: vec![10, 10, 0, 0],
            count: 20,
            sum: 25.0,
        };
        // Rank 10 is the last observation of the first bucket.
        assert!((snapshot.quantile(0.5) - 1.0).abs() < 1e-9);
        // Rank 15 sits halfway through the (1,2] bucket.
        assert!((snapshot.quantile(0.75) - 1.5).abs() < 1e-9);
        assert!((snapshot.quantile(1.0) - 2.0).abs() < 1e-9);
        // q clamps instead of panicking.
        assert!(snapshot.quantile(-1.0) <= snapshot.quantile(2.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty =
            HistogramSnapshot { bounds: vec![1.0], buckets: vec![0, 0], count: 0, sum: 0.0 };
        assert_eq!(empty.quantile(0.5), 0.0);
        // Everything overflowed: report the largest finite bound.
        let overflow = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            buckets: vec![0, 0, 5],
            count: 5,
            sum: 50.0,
        };
        assert_eq!(overflow.quantile(0.5), 2.0);
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let _guard = crate::test_lock();
        set_enabled(true);
        crate::reset();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                thread::spawn(|| {
                    let counter = counter("qukit_obs_test_contended_total");
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                    gauge_add("qukit_obs_test_gauge", 1.0);
                    observe("qukit_obs_test_hist_seconds", 1e-5);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker panicked");
        }
        let snapshot = registry().snapshot();
        assert_eq!(
            snapshot.counters["qukit_obs_test_contended_total"],
            THREADS as u64 * PER_THREAD
        );
        assert_eq!(snapshot.gauges["qukit_obs_test_gauge"], THREADS as f64);
        assert_eq!(snapshot.histograms["qukit_obs_test_hist_seconds"].count, THREADS as u64);
        crate::reset();
        set_enabled(false);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _guard = crate::test_lock();
        set_enabled(true);
        let hist = Histogram::new(&[1.0, 2.0, 4.0]);
        // On-boundary values land in their own bucket (v <= bound).
        hist.observe(1.0);
        hist.observe(2.0);
        hist.observe(4.0);
        // Interior values land in the first bucket whose bound is >= v.
        hist.observe(0.5);
        hist.observe(3.0);
        // Beyond the last bound lands in the +Inf overflow bucket.
        hist.observe(100.0);
        let snap = hist.snapshot();
        assert_eq!(snap.bounds, vec![1.0, 2.0, 4.0]);
        assert_eq!(snap.buckets, vec![2, 1, 2, 1]);
        assert_eq!(snap.count, 6);
        assert!((snap.sum - 110.5).abs() < 1e-12);
        assert!((snap.mean() - 110.5 / 6.0).abs() < 1e-12);
        set_enabled(false);
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let _guard = crate::test_lock();
        set_enabled(false);
        let counter = Counter::default();
        counter.add(5);
        assert_eq!(counter.value(), 0);
        let gauge = Gauge::default();
        gauge.set(3.0);
        gauge.add(1.0);
        assert_eq!(gauge.value(), 0.0);
        let hist = Histogram::new(&[1.0]);
        hist.observe(0.5);
        assert_eq!(hist.snapshot().count, 0);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let hist = Histogram::new(&[4.0, 1.0, 2.0, 1.0, f64::INFINITY]);
        assert_eq!(hist.bounds(), &[1.0, 2.0, 4.0]);
        assert_eq!(hist.snapshot().buckets.len(), 4);
    }

    #[test]
    fn metric_name_validation_is_typed_and_panic_free() {
        assert!(validate_metric_name("qukit_core_jobs_total").is_ok());
        assert!(validate_metric_name("_leading:colon_ok").is_ok());
        let err = validate_metric_name("1starts_with_digit").expect_err("digit start");
        assert_eq!(err.name, "1starts_with_digit");
        assert!(validate_metric_name("has-dash").is_err());
        assert!(validate_metric_name("").is_err());
        assert!(validate_label_name("tenant").is_ok());
        assert!(validate_label_name("bad-label").is_err());
        assert!(validate_label_name("").is_err());
    }

    #[test]
    fn invalid_names_register_nothing_and_are_counted() {
        let _guard = crate::test_lock();
        set_enabled(true);
        let registry = MetricsRegistry::default();
        assert!(registry.try_counter("spaced name").is_err());
        // The infallible path hands back a detached metric; only the
        // rejection counter lands in the snapshot.
        let detached = registry.counter("spaced name");
        detached.add(5);
        let snapshot = registry.snapshot();
        assert!(!snapshot.counters.contains_key("spaced name"));
        assert_eq!(snapshot.counters["qukit_obs_invalid_metric_names_total"], 1);
        set_enabled(false);
    }

    #[test]
    fn labeled_names_escape_prometheus_specials() {
        let name =
            labeled_name("qukit_test_total", &[("tenant", "a\"b\\c\nd"), ("priority", "high")])
                .expect("valid");
        assert_eq!(name, "qukit_test_total{tenant=\"a\\\"b\\\\c\\nd\",priority=\"high\"}");
        assert!(labeled_name("qukit_test_total", &[("bad-key", "v")]).is_err());
        assert!(labeled_name("bad name", &[("k", "v")]).is_err());
        assert_eq!(labeled_name("base_total", &[]).expect("bare"), "base_total");
    }

    #[test]
    fn cardinality_guard_folds_into_overflow_series() {
        let _guard = crate::test_lock();
        set_enabled(true);
        let registry = MetricsRegistry::default();
        for i in 0..(MAX_LABEL_SETS + 10) {
            let value = format!("tenant-{i}");
            let counter = registry
                .try_counter_with("qukit_test_card_total", &[("tenant", value.as_str())])
                .expect("valid name");
            counter.inc();
        }
        let snapshot = registry.snapshot();
        let series: Vec<&String> =
            snapshot.counters.keys().filter(|k| k.starts_with("qukit_test_card_total{")).collect();
        // MAX_LABEL_SETS real series plus the single overflow series.
        assert_eq!(series.len(), MAX_LABEL_SETS + 1);
        assert_eq!(snapshot.counters["qukit_test_card_total{overflow=\"true\"}"], 10);
        assert_eq!(snapshot.counters["qukit_obs_label_cardinality_limited_total"], 10);
        set_enabled(false);
    }

    #[test]
    fn help_text_survives_snapshot_and_reset() {
        let registry = MetricsRegistry::default();
        registry.describe("qukit_test_total", "what it counts");
        assert_eq!(registry.snapshot().help["qukit_test_total"], "what it counts");
        registry.reset();
        assert!(registry.snapshot().help.is_empty());
    }
}
