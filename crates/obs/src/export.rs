//! Exporters: Prometheus text format, structured JSON, and a
//! human-readable summary table.
//!
//! # JSON schema (`qukit-metrics/v1`)
//!
//! ```json
//! {
//!   "schema": "qukit-metrics/v1",
//!   "counters": { "qukit_terra_swaps_inserted_total": 4 },
//!   "gauges": { "qukit_dd_nodes": 17 },
//!   "histograms": {
//!     "qukit_core_job_seconds": {
//!       "bounds": [0.000001, 1.0],
//!       "buckets": [0, 3, 1],
//!       "count": 4,
//!       "sum": 0.82
//!     }
//!   },
//!   "trace": [
//!     { "name": "transpile.pass", "detail": "pass=mapping", "depth": 1,
//!       "start_us": 12, "duration_us": 340 }
//!   ]
//! }
//! ```
//!
//! `buckets` has `bounds.len() + 1` entries; the final entry is the
//! implicit `+Inf` overflow bucket.

use crate::json::{escape, JsonValue};
use crate::registry::{HistogramSnapshot, Snapshot};
use crate::span::TraceEvent;
use std::fmt::Write as _;

/// Identifier stamped into every JSON snapshot this module emits.
pub const SCHEMA: &str = "qukit-metrics/v1";

/// Splits `name{labels}` into the base name and the optional label body.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) => (&name[..open], Some(name[open + 1..].trim_end_matches('}'))),
        None => (name, None),
    }
}

fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_owned()
    }
}

/// Escapes HELP text for the Prometheus exposition format: `\` → `\\`,
/// newline → `\n` (HELP lines must stay one line).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn write_help(out: &mut String, snapshot: &Snapshot, base: &str) {
    if let Some(help) = snapshot.help.get(base) {
        let _ = writeln!(out, "# HELP {base} {}", escape_help(help));
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_base = String::new();
    for (name, value) in &snapshot.counters {
        let (base, _) = split_name(name);
        if base != last_base {
            write_help(&mut out, snapshot, base);
            let _ = writeln!(out, "# TYPE {base} counter");
            last_base = base.to_owned();
        }
        let _ = writeln!(out, "{name} {value}");
    }
    last_base.clear();
    for (name, value) in &snapshot.gauges {
        let (base, _) = split_name(name);
        if base != last_base {
            write_help(&mut out, snapshot, base);
            let _ = writeln!(out, "# TYPE {base} gauge");
            last_base = base.to_owned();
        }
        let _ = writeln!(out, "{name} {}", fmt_f64(*value));
    }
    last_base.clear();
    for (name, hist) in &snapshot.histograms {
        let (base, labels) = split_name(name);
        if base != last_base {
            write_help(&mut out, snapshot, base);
            let _ = writeln!(out, "# TYPE {base} histogram");
            last_base = base.to_owned();
        }
        let prefix = match labels {
            Some(body) => format!("{body},"),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for (bound, bucket) in hist.bounds.iter().zip(&hist.buckets) {
            cumulative += bucket;
            let _ =
                writeln!(out, "{base}_bucket{{{prefix}le=\"{}\"}} {cumulative}", fmt_f64(*bound));
        }
        let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"+Inf\"}} {}", hist.count);
        let suffix = match labels {
            Some(body) => format!("{{{body}}}"),
            None => String::new(),
        };
        let _ = writeln!(out, "{base}_sum{suffix} {}", fmt_f64(hist.sum));
        let _ = writeln!(out, "{base}_count{suffix} {}", hist.count);
    }
    out
}

/// Renders a snapshot as a structured JSON document (schema above).
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, value) in &snapshot.counters {
        let sep = if first { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {value}", escape(name));
        first = false;
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, value) in &snapshot.gauges {
        let sep = if first { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {}", escape(name), fmt_f64(*value));
        first = false;
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, hist) in &snapshot.histograms {
        let sep = if first { "\n" } else { ",\n" };
        let bounds: Vec<String> = hist.bounds.iter().map(|b| fmt_f64(*b)).collect();
        let buckets: Vec<String> = hist.buckets.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"bounds\": [{}], \"buckets\": [{}], \"count\": {}, \"sum\": {}}}",
            escape(name),
            bounds.join(", "),
            buckets.join(", "),
            hist.count,
            fmt_f64(hist.sum),
        );
        first = false;
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"trace\": [");
    first = true;
    for event in &snapshot.trace {
        let sep = if first { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"name\": \"{}\", \"detail\": \"{}\", \"depth\": {}, \"start_us\": {}, \"duration_us\": {}, \"trace_id\": {}, \"span_id\": {}, \"parent_id\": {}}}",
            escape(&event.name),
            escape(&event.detail),
            event.depth,
            event.start_us,
            event.duration_us,
            event.trace_id,
            event.span_id,
            event.parent_id,
        );
        first = false;
    }
    out.push_str(if first { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Renders trace events in the Chrome trace-event format (the JSON object
/// form), loadable in `chrome://tracing` and Perfetto.
///
/// Each span becomes one complete (`"ph": "X"`) event; all events share
/// `pid` 1 and each trace gets its own `tid` (track), named by a
/// `thread_name` metadata record, so one job renders as one waterfall.
/// Span/parent ids travel in `args` for tooling that follows causal links.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // One track per trace id, in order of first appearance; the untraced
    // group (trace id 0) keeps tid 0.
    let mut tids: Vec<u64> = Vec::new();
    let mut tid_of = |trace_id: u64| -> usize {
        if trace_id == 0 {
            return 0;
        }
        match tids.iter().position(|&t| t == trace_id) {
            Some(index) => index + 1,
            None => {
                tids.push(trace_id);
                tids.len()
            }
        }
    };
    let mut body = String::new();
    let mut first = true;
    let mut named: Vec<usize> = Vec::new();
    for event in events {
        let tid = tid_of(event.trace_id);
        let sep = if first { "\n" } else { ",\n" };
        if !named.contains(&tid) {
            named.push(tid);
            let track = if event.trace_id == 0 {
                "untraced".to_owned()
            } else {
                format!("trace {}", event.trace_id)
            };
            let _ = write!(
                body,
                "{sep}    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": \"{track}\"}}}}",
            );
            first = false;
        }
        let _ = write!(
            body,
            ",\n    {{\"name\": \"{}\", \"cat\": \"qukit\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {tid}, \"args\": {{\"detail\": \"{}\", \"trace_id\": {}, \"span_id\": {}, \"parent_id\": {}}}}}",
            escape(&event.name),
            event.start_us,
            event.duration_us,
            escape(&event.detail),
            event.trace_id,
            event.span_id,
            event.parent_id,
        );
    }
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    out.push_str(&body);
    out.push_str(if first { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Checks that `text` is well-formed Chrome trace-event JSON as emitted
/// by [`chrome_trace`]: a `traceEvents` array whose `"X"` entries carry
/// name/ts/dur/pid/tid.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let events = value
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"traceEvents\" array".to_owned())?;
    for (index, event) in events.iter().enumerate() {
        let phase = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("traceEvents[{index}]: missing ph"))?;
        event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("traceEvents[{index}]: missing name"))?;
        let required: &[&str] = match phase {
            "X" => &["ts", "dur", "pid", "tid"],
            "M" => &["pid", "tid"],
            other => return Err(format!("traceEvents[{index}]: unexpected phase {other:?}")),
        };
        for field in required {
            event
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("traceEvents[{index}]: missing {field}"))?;
        }
    }
    Ok(())
}

fn fmt_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else {
        format!("{:.1}us", seconds * 1e6)
    }
}

fn section_of(name: &str) -> &str {
    let rest = match name.strip_prefix("qukit_") {
        Some(rest) => rest,
        None => return "other",
    };
    match rest.split('_').next() {
        Some(section) if !section.is_empty() => section,
        _ => "other",
    }
}

fn hist_cell(hist: &HistogramSnapshot, duration_like: bool) -> String {
    if duration_like {
        format!(
            "count={} mean={} total={}",
            hist.count,
            fmt_seconds(hist.mean()),
            fmt_seconds(hist.sum)
        )
    } else {
        format!("count={} mean={:.3} total={}", hist.count, hist.mean(), fmt_f64(hist.sum))
    }
}

/// Renders a snapshot as a human-readable summary table, grouped by the
/// `qukit_<crate>_` prefix of each metric name.
pub fn summary(snapshot: &Snapshot) -> String {
    if snapshot.is_empty() {
        return "no metrics recorded (run with --metrics/--trace or call \
                qukit_obs::set_enabled(true))\n"
            .to_owned();
    }
    let mut sections: Vec<&str> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(|name| section_of(name))
        .collect();
    sections.sort_unstable();
    sections.dedup();
    let width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for section in sections {
        let _ = writeln!(out, "[{section}]");
        for (name, value) in &snapshot.counters {
            if section_of(name) == section {
                let _ = writeln!(out, "  {name:width$}  {value}");
            }
        }
        for (name, value) in &snapshot.gauges {
            if section_of(name) == section {
                let _ = writeln!(out, "  {name:width$}  {}", fmt_f64(*value));
            }
        }
        for (name, hist) in &snapshot.histograms {
            if section_of(name) == section {
                let duration_like = split_name(name).0.ends_with("_seconds");
                let _ = writeln!(out, "  {name:width$}  {}", hist_cell(hist, duration_like));
            }
        }
        out.push('\n');
    }
    if !snapshot.trace.is_empty() {
        let mut slowest: Vec<&crate::span::TraceEvent> = snapshot.trace.iter().collect();
        slowest.sort_by_key(|event| std::cmp::Reverse(event.duration_us));
        let _ = writeln!(out, "[trace] {} events, slowest spans:", snapshot.trace.len());
        for event in slowest.iter().take(5) {
            let detail =
                if event.detail.is_empty() { String::new() } else { format!(" {}", event.detail) };
            let _ = writeln!(
                out,
                "  {}{}  {}",
                event.name,
                detail,
                fmt_seconds(event.duration_us as f64 / 1e6)
            );
        }
    }
    out
}

/// Checks that `text` is a well-formed `qukit-metrics/v1` JSON snapshot.
pub fn validate_snapshot_json(text: &str) -> Result<(), String> {
    let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if value.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("missing or wrong \"schema\" (want \"{SCHEMA}\")"));
    }
    for key in ["counters", "gauges", "histograms"] {
        let section = value.get(key).ok_or_else(|| format!("missing \"{key}\" object"))?;
        let map = section.as_object().ok_or_else(|| format!("\"{key}\" is not an object"))?;
        for (name, entry) in map {
            match key {
                "histograms" => {
                    let bounds = entry
                        .get("bounds")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("histogram {name}: missing bounds"))?;
                    let buckets = entry
                        .get("buckets")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("histogram {name}: missing buckets"))?;
                    if buckets.len() != bounds.len() + 1 {
                        return Err(format!(
                            "histogram {name}: want {} buckets, got {}",
                            bounds.len() + 1,
                            buckets.len()
                        ));
                    }
                    for field in ["count", "sum"] {
                        entry
                            .get(field)
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| format!("histogram {name}: missing {field}"))?;
                    }
                }
                _ => {
                    entry.as_f64().ok_or_else(|| format!("{key} entry {name} is not a number"))?;
                }
            }
        }
    }
    let trace = value.get("trace").ok_or_else(|| "missing \"trace\" array".to_owned())?;
    let events = trace.as_array().ok_or_else(|| "\"trace\" is not an array".to_owned())?;
    for (index, event) in events.iter().enumerate() {
        for field in ["name", "detail"] {
            event
                .get(field)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("trace[{index}]: missing {field}"))?;
        }
        for field in ["depth", "start_us", "duration_us"] {
            event
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("trace[{index}]: missing {field}"))?;
        }
        // Causal ids are optional (pre-tracing snapshots lack them) but
        // must be numbers when present.
        for field in ["trace_id", "span_id", "parent_id"] {
            if let Some(id) = event.get(field) {
                id.as_f64().ok_or_else(|| format!("trace[{index}]: {field} is not a number"))?;
            }
        }
    }
    Ok(())
}

/// Parses a JSON snapshot back into a [`Snapshot`] (trace included).
pub fn from_json(text: &str) -> Result<Snapshot, String> {
    validate_snapshot_json(text)?;
    let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let mut snapshot = Snapshot::default();
    if let Some(map) = value.get("counters").and_then(JsonValue::as_object) {
        for (name, entry) in map {
            snapshot.counters.insert(name.clone(), entry.as_f64().unwrap_or(0.0) as u64);
        }
    }
    if let Some(map) = value.get("gauges").and_then(JsonValue::as_object) {
        for (name, entry) in map {
            snapshot.gauges.insert(name.clone(), entry.as_f64().unwrap_or(0.0));
        }
    }
    if let Some(map) = value.get("histograms").and_then(JsonValue::as_object) {
        for (name, entry) in map {
            let bounds = entry
                .get("bounds")
                .and_then(JsonValue::as_array)
                .map(|items| items.iter().filter_map(JsonValue::as_f64).collect())
                .unwrap_or_default();
            let buckets = entry
                .get("buckets")
                .and_then(JsonValue::as_array)
                .map(|items| items.iter().filter_map(JsonValue::as_f64).map(|v| v as u64).collect())
                .unwrap_or_default();
            let count = entry.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            let sum = entry.get("sum").and_then(JsonValue::as_f64).unwrap_or(0.0);
            snapshot
                .histograms
                .insert(name.clone(), HistogramSnapshot { bounds, buckets, count, sum });
        }
    }
    if let Some(events) = value.get("trace").and_then(JsonValue::as_array) {
        let id = |event: &JsonValue, field: &str| -> u64 {
            event.get(field).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
        };
        for event in events {
            snapshot.trace.push(TraceEvent {
                name: event.get("name").and_then(JsonValue::as_str).unwrap_or("").to_owned(),
                detail: event.get("detail").and_then(JsonValue::as_str).unwrap_or("").to_owned(),
                depth: event.get("depth").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
                start_us: id(event, "start_us"),
                duration_us: id(event, "duration_us"),
                trace_id: id(event, "trace_id"),
                span_id: id(event, "span_id"),
                parent_id: id(event, "parent_id"),
            });
        }
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceEvent;

    fn golden_snapshot() -> Snapshot {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("qukit_terra_swaps_inserted_total".to_owned(), 4);
        snapshot.counters.insert("qukit_terra_transpile_runs_total".to_owned(), 1);
        snapshot.gauges.insert("qukit_dd_nodes".to_owned(), 17.0);
        snapshot.histograms.insert(
            "qukit_core_job_seconds".to_owned(),
            HistogramSnapshot {
                bounds: vec![0.001, 1.0],
                buckets: vec![1, 2, 1],
                count: 4,
                sum: 1.25,
            },
        );
        snapshot.histograms.insert(
            "qukit_terra_pass_seconds{pass=\"mapping\"}".to_owned(),
            HistogramSnapshot { bounds: vec![0.01], buckets: vec![3, 0], count: 3, sum: 0.006 },
        );
        snapshot.trace.push(TraceEvent {
            name: "transpile.pass".to_owned(),
            detail: "pass=mapping".to_owned(),
            depth: 1,
            start_us: 12,
            duration_us: 340,
            trace_id: 5,
            span_id: 6,
            parent_id: 5,
        });
        snapshot.help.insert("qukit_dd_nodes".to_owned(), "live DD nodes".to_owned());
        snapshot
    }

    #[test]
    fn prometheus_golden() {
        let expected = "\
# TYPE qukit_terra_swaps_inserted_total counter
qukit_terra_swaps_inserted_total 4
# TYPE qukit_terra_transpile_runs_total counter
qukit_terra_transpile_runs_total 1
# HELP qukit_dd_nodes live DD nodes
# TYPE qukit_dd_nodes gauge
qukit_dd_nodes 17
# TYPE qukit_core_job_seconds histogram
qukit_core_job_seconds_bucket{le=\"0.001\"} 1
qukit_core_job_seconds_bucket{le=\"1\"} 3
qukit_core_job_seconds_bucket{le=\"+Inf\"} 4
qukit_core_job_seconds_sum 1.25
qukit_core_job_seconds_count 4
# TYPE qukit_terra_pass_seconds histogram
qukit_terra_pass_seconds_bucket{pass=\"mapping\",le=\"0.01\"} 3
qukit_terra_pass_seconds_bucket{pass=\"mapping\",le=\"+Inf\"} 3
qukit_terra_pass_seconds_sum{pass=\"mapping\"} 0.006
qukit_terra_pass_seconds_count{pass=\"mapping\"} 3
";
        assert_eq!(prometheus(&golden_snapshot()), expected);
    }

    #[test]
    fn json_golden_validates_and_round_trips() {
        let text = to_json(&golden_snapshot());
        let expected = "\
{
  \"schema\": \"qukit-metrics/v1\",
  \"counters\": {
    \"qukit_terra_swaps_inserted_total\": 4,
    \"qukit_terra_transpile_runs_total\": 1
  },
  \"gauges\": {
    \"qukit_dd_nodes\": 17
  },
  \"histograms\": {
    \"qukit_core_job_seconds\": {\"bounds\": [0.001, 1], \"buckets\": [1, 2, 1], \"count\": 4, \"sum\": 1.25},
    \"qukit_terra_pass_seconds{pass=\\\"mapping\\\"}\": {\"bounds\": [0.01], \"buckets\": [3, 0], \"count\": 3, \"sum\": 0.006}
  },
  \"trace\": [
    {\"name\": \"transpile.pass\", \"detail\": \"pass=mapping\", \"depth\": 1, \"start_us\": 12, \"duration_us\": 340, \"trace_id\": 5, \"span_id\": 6, \"parent_id\": 5}
  ]
}
";
        assert_eq!(text, expected);
        validate_snapshot_json(&text).expect("schema-valid");
        let parsed = from_json(&text).expect("round trip");
        assert_eq!(parsed.counters, golden_snapshot().counters);
        assert_eq!(parsed.gauges, golden_snapshot().gauges);
        assert_eq!(parsed.histograms, golden_snapshot().histograms);
        assert_eq!(parsed.trace, golden_snapshot().trace);
    }

    #[test]
    fn pre_tracing_snapshots_still_parse() {
        // Snapshots written before causal ids existed lack the id fields;
        // they must validate and decode with zeroed ids.
        let legacy = "{\"schema\": \"qukit-metrics/v1\", \"counters\": {}, \"gauges\": {},
            \"histograms\": {},
            \"trace\": [{\"name\": \"old\", \"detail\": \"\", \"depth\": 0,
                         \"start_us\": 1, \"duration_us\": 2}]}";
        validate_snapshot_json(legacy).expect("legacy schema-valid");
        let parsed = from_json(legacy).expect("legacy parses");
        assert_eq!(parsed.trace[0].trace_id, 0);
        assert_eq!(parsed.trace[0].span_id, 0);
    }

    #[test]
    fn help_text_is_escaped_in_prometheus_output() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("qukit_test_total".to_owned(), 1);
        snapshot
            .help
            .insert("qukit_test_total".to_owned(), "line one\nline two \\ done".to_owned());
        let text = prometheus(&snapshot);
        assert!(text.contains("# HELP qukit_test_total line one\\nline two \\\\ done\n"), "{text}");
    }

    #[test]
    fn prometheus_renders_escaped_label_values_intact() {
        // A label value escaped by labeled_name must survive to the text
        // format unchanged (exactly one level of escaping).
        let name =
            crate::registry::labeled_name("qukit_test_total", &[("tenant", "quo\"te\\slash\nnl")])
                .expect("valid");
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert(name, 3);
        let text = prometheus(&snapshot);
        assert!(text.contains("qukit_test_total{tenant=\"quo\\\"te\\\\slash\\nnl\"} 3"), "{text}");
    }

    #[test]
    fn chrome_trace_golden_and_validates() {
        let events = vec![
            TraceEvent {
                name: "job".to_owned(),
                detail: "tenant=a".to_owned(),
                depth: 0,
                start_us: 0,
                duration_us: 50,
                trace_id: 9,
                span_id: 9,
                parent_id: 0,
            },
            TraceEvent {
                name: "job.attempt".to_owned(),
                detail: String::new(),
                depth: 1,
                start_us: 10,
                duration_us: 30,
                trace_id: 9,
                span_id: 11,
                parent_id: 9,
            },
        ];
        let text = chrome_trace(&events);
        validate_chrome_trace(&text).expect("valid chrome trace");
        assert!(text.contains("\"displayTimeUnit\": \"ms\""), "{text}");
        assert!(
            text.contains("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \"args\": {\"name\": \"trace 9\"}}"),
            "{text}"
        );
        assert!(
            text.contains("{\"name\": \"job\", \"cat\": \"qukit\", \"ph\": \"X\", \"ts\": 0, \"dur\": 50, \"pid\": 1, \"tid\": 1, \"args\": {\"detail\": \"tenant=a\", \"trace_id\": 9, \"span_id\": 9, \"parent_id\": 0}}"),
            "{text}"
        );
        // Both spans share the trace's track.
        assert!(text.contains("\"name\": \"job.attempt\""), "{text}");
        // Empty input is still a loadable document.
        validate_chrome_trace(&chrome_trace(&[])).expect("empty is valid");
        // And malformed documents are rejected.
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
    }

    #[test]
    fn empty_snapshot_is_still_schema_valid() {
        let text = to_json(&Snapshot::default());
        validate_snapshot_json(&text).expect("schema-valid");
        assert!(summary(&Snapshot::default()).contains("no metrics recorded"));
    }

    #[test]
    fn validate_rejects_malformed_snapshots() {
        assert!(validate_snapshot_json("{}").is_err());
        assert!(validate_snapshot_json("{\"schema\": \"qukit-metrics/v1\"}").is_err());
        let wrong_buckets = "{\"schema\": \"qukit-metrics/v1\", \"counters\": {}, \"gauges\": {},
            \"histograms\": {\"h\": {\"bounds\": [1], \"buckets\": [1], \"count\": 1, \"sum\": 1}},
            \"trace\": []}";
        let err = validate_snapshot_json(wrong_buckets).expect_err("bucket arity");
        assert!(err.contains("want 2 buckets"), "{err}");
    }

    #[test]
    fn summary_groups_by_crate_prefix() {
        let text = summary(&golden_snapshot());
        assert!(text.contains("[terra]"), "{text}");
        assert!(text.contains("[dd]"), "{text}");
        assert!(text.contains("[core]"), "{text}");
        assert!(text.contains("qukit_terra_swaps_inserted_total"), "{text}");
        assert!(text.contains("[trace] 1 events"), "{text}");
    }
}
