//! A hermetic, dependency-free subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so the external
//! `criterion` crate is replaced (via `[patch.crates-io]`) with this
//! shim. It runs each benchmark routine for a fixed measurement budget
//! and prints mean/min wall-clock times per iteration — no statistical
//! analysis, HTML reports, or baselines, but enough for the workspace's
//! `cargo bench` targets to build, run, and produce comparable numbers.

use std::time::{Duration, Instant};

/// Returns its argument, hindering value-based optimizations.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark routine (`|b| b.iter(...)`).
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting per-iteration samples until the
    /// sample count or measurement budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call (also primes lazy statics).
        black_box(routine());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { text: format!("{}/{}", name.into(), parameter) }
    }

    /// An identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { text: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { text: name }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time (accepted for compatibility; warm-up here
    /// is a single untimed call).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets throughput reporting (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.text);
        run_one(&label, self.sample_size, self.measurement_time, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.text);
        run_one(&label, self.sample_size, self.measurement_time, |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.parent;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut routine: F,
) {
    let mut bencher = Bencher { measurement_time, sample_size, samples: Vec::new() };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Throughput settings (accepted and ignored by this shim).
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Sets the default target sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the default measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup { name: name.into(), parent: self, sample_size, measurement_time }
    }

    /// Benchmarks `routine` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.text, self.sample_size, self.measurement_time, routine);
        self
    }

    /// Runs registered benchmark functions; used by [`criterion_main!`].
    #[doc(hidden)]
    pub fn final_summary(&self) {}
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produces a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).measurement_time(Duration::from_millis(50));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(20));
        c.bench_function("top_level", |b| b.iter(|| black_box(21) * 2));
    }
}
