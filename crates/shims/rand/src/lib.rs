//! A hermetic, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment of this repository has no access to crates.io,
//! so the external `rand` crate is replaced (via `[patch.crates-io]` in
//! the workspace manifest) with this shim. It implements exactly the
//! surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] (`gen`, `gen_range`, `gen_bool`)
//! - [`SeedableRng`] (`seed_from_u64`, `from_entropy`)
//! - [`rngs::StdRng`] — a xoshiro256\*\* generator (not ChaCha12 like the
//!   real crate, but a high-quality generator with the same determinism
//!   contract: a fixed seed yields a fixed stream)
//! - [`rngs::mock::StepRng`] — arithmetic-sequence mock generator
//! - [`thread_rng`] — an entropy-seeded generator
//!
//! Statistical tests in the workspace assert distributional properties
//! (tolerances around expected frequencies), never exact draws from the
//! upstream ChaCha stream, so substituting the generator is sound.

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word (high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from environmental entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    let count = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let local = &count as *const _ as u64;
    splitmix64(nanos ^ count.wrapping_mul(0xA076_1D64_78BD_642F) ^ local)
}

/// One step of the SplitMix64 sequence (used for seed expansion).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256\*\* with SplitMix64 seeding.
    ///
    /// Deterministic per seed, with strong statistical quality; see the
    /// crate docs for why this stands in for the upstream ChaCha12.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *word = splitmix64(sm);
            }
            // A xoshiro state of all zeros is a fixed point; the SplitMix64
            // expansion can produce it only with negligible probability, but
            // guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }

    pub mod mock {
        //! Deterministic mock generators for testing.

        use super::super::RngCore;

        /// Yields an arithmetic sequence: `v, v+s, v+2s, …` (wrapping).
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates the generator with initial value `initial` and
            /// increment `step`.
            pub fn new(initial: u64, step: u64) -> Self {
                Self { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// An entropy-seeded generator, by analogy with `rand::thread_rng()`.
///
/// Unlike the real crate this is not a shared thread-local handle; each
/// call returns an independent generator, which is indistinguishable for
/// the sampling uses in this workspace.
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns an entropy-seeded generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng(rngs::StdRng::from_entropy())
}

/// Draws one uniform value of type `T` from an entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample_standard(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_float_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn thread_rng_draws_differ() {
        let mut a = super::thread_rng();
        let mut b = super::thread_rng();
        // Astronomically unlikely to collide on 4 words.
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
