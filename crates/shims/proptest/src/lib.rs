//! A hermetic, dependency-free subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so the external
//! `proptest` crate is replaced (via `[patch.crates-io]`) with this shim.
//! It supports the strategy combinators the workspace's property tests
//! use — range strategies, tuples, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec` — and a [`proptest!`] macro that runs each
//! property for `ProptestConfig::cases` deterministic pseudo-random
//! cases.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated value's `Debug` rendering via the ordinary assert
//! message), and the per-test RNG is seeded from the test's name, so
//! runs are fully reproducible.

use std::fmt::Debug;
use std::ops::Range;

/// The per-test deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed once.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy view, used by [`Union`] (`prop_oneof!`).
#[doc(hidden)]
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A uniform choice between strategies with a common value type
/// (the strategy behind [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Creates the union; used by the [`prop_oneof!`] expansion.
    #[doc(hidden)]
    pub fn from_boxes(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        Self { options }
    }
}

/// Boxes a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
#[doc(hidden)]
pub fn __box_strategy<V, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
    Box::new(s)
}

/// Builds a [`Union`]; used by the [`prop_oneof!`] expansion.
#[doc(hidden)]
pub fn __union<V>(options: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
    Union { options }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate_dyn(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors with lengths drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Alias module mirroring `proptest::prop` re-exports (`prop::collection`).
pub mod prop {
    pub use crate::collection;
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// expands to a `#[test]` running the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// A uniform choice among the listed strategies (all must share one value
/// type). Weights (`n => strategy`) are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::__union(vec![ $( $crate::__box_strategy($strat) ),+ ])
    };
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    //! The subset of `proptest::prelude` the workspace uses.

    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        let s = (0..10usize).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![
            (0..1usize).prop_map(|_| "a"),
            (0..1usize).prop_map(|_| "b"),
            (0..1usize).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = prop::collection::vec(0u64..16, 1..20);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 16));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_with_tuples((a, b) in (0..5usize, 0..5usize), f in 0.0f64..1.0) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn macro_runs_with_default_config(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
