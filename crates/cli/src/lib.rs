//! # qukit-cli
//!
//! The command-line driver of the **qukit** toolchain — the shell
//! equivalent of the paper's Section IV Python walkthrough:
//!
//! ```text
//! qukit backends                         # list available backends
//! qukit stats    circuit.qasm            # gate counts / depth / width
//! qukit draw     circuit.qasm            # ASCII diagram (Fig. 1b style)
//! qukit run      circuit.qasm --backend ibmqx4 --shots 1024 --seed 7
//! qukit transpile circuit.qasm --device ibmqx4 --router sabre --opt-level 3 --emit
//! qukit jobs     circuit.qasm --inject-fail 2 --retries 3 --seed 7
//! ```
//!
//! `jobs` drives the fault-tolerant job service: it submits through the
//! queued [`JobExecutor`](qukit::job::JobExecutor), optionally wrapping
//! the target backend in a seeded
//! [`FaultInjectingBackend`](qukit::fault::FaultInjectingBackend) or a
//! [`FallbackChain`](qukit::fault::FallbackChain), and reports the job
//! lifecycle (status, attempts, backoffs, which backend served it).
//!
//! All command logic lives in [`run_cli`] so it is directly testable.

use qukit::execute::execute;
use qukit::fault::{FallbackChain, FaultInjectingBackend, FaultMode};
use qukit::job::{ExecutorConfig, JobExecutor};
use qukit::provider::Provider;
use qukit::retry::RetryPolicy;
use qukit::terra::coupling::CouplingMap;
use qukit::terra::transpiler::{transpile, MapperKind, TranspileOptions};
use qukit::terra::{draw, qasm};
use std::fmt;
use std::io::Write;

/// CLI errors: usage problems or failures from the toolchain.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command/flag, missing argument).
    Usage(String),
    /// File could not be read.
    Io(std::io::Error),
    /// Toolchain failure.
    Qukit(qukit::error::QukitError),
    /// The conformance fuzzer found violations (details already printed).
    Conformance(String),
    /// `stats --compare` found performance regressions (details already
    /// printed).
    Regression(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Qukit(e) => write!(f, "{e}"),
            CliError::Conformance(msg) => write!(f, "{msg}"),
            CliError::Regression(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<qukit::error::QukitError> for CliError {
    fn from(e: qukit::error::QukitError) -> Self {
        CliError::Qukit(e)
    }
}

impl From<qukit::terra::error::TerraError> for CliError {
    fn from(e: qukit::terra::error::TerraError) -> Self {
        CliError::Qukit(qukit::error::QukitError::Terra(e))
    }
}

const USAGE: &str = "usage:
  qukit backends
  qukit stats <file.qasm | file.json>
  qukit stats --compare OLD.json NEW.json [--tolerance T]
  qukit draw <file.qasm>
  qukit run <file.qasm> [--backend NAME] [--shots N] [--seed N]
            [--threads N] [--sweep N] [--metrics FILE.json] [--trace]
  qukit transpile <file.qasm> [--device NAME | --coupling KIND:N]
                  [--router basic|lookahead|astar|sabre] [--opt-level 0..3]
                  [--emit]  (--mapper/--opt are accepted aliases)
  qukit equiv <a.qasm> <b.qasm>
  qukit jobs <file.qasm> [--backend NAME] [--shots N] [--seed N]
             [--threads N] [--retries N] [--timeout-ms N]
             [--inject-fail N | --hang-ms N] [--fallback] [--cancel]
             [--journal-dir DIR] [--tenant NAME] [--priority P]
             [--key KEY] [--max-pending N] [--cache]
             [--metrics FILE.json] [--trace] [--trace-out FILE]
             [--trace-slow-ms N] [--trace-sample N]
  qukit fuzz [--seed N] [--cases N] [--max-qubits N] [--max-depth N]
             [--oracle all|LIST] [--gate-set full|clifford|clifford+t]
             [--shots N] [--measure] [--no-shrink] [--repro-dir DIR]
             [--metrics FILE.json] [--trace]
  qukit bench [--json] [--out FILE.json] [--shots N] [--seed N]
              [--threads N] [--repeats N] [--no-metrics]
              [--large] [--sweep-bindings N]
  qukit bench --load [--tenants N] [--jobs N] [--workers N]
              [--max-pending N] [--payloads N] [--shots N] [--seed N]
              [--pace-us N] [--json] [--out FILE.json] [--trace-out FILE]
              [--trace-slow-ms N] [--trace-sample N]
  qukit serve-metrics [--addr HOST:PORT] [--for-ms N]

coupling KIND is one of line, ring, full, or grid:RxC

--threads N routes simulation through the parallel chunked/fused
statevector kernels with N worker threads (run/jobs), or sweeps the
parallel engine over power-of-two thread counts up to N (bench,
default 8). `stats --compare` exits nonzero when any (circuit, engine)
pair shared by the two baselines slowed down by more than the
tolerance (default 0.25 = 25%); timings under the noise floor are
never compared

run --sweep N turns every rotation angle in the circuit into a
parameter and executes an N-point sweep (angles scaled from 1/N up to
the original values) through the batched execution path: the template
transpiles once and all bindings run in one kernel pass with shared
state buffers. SIMD lane kernels are on by default everywhere; set
QUKIT_SIMD=off to force the bit-identical scalar kernels. bench
--large adds the 22-26 qubit dense statevector entries (SIMD vs
scalar), and bench --sweep-bindings N sizes the sweep[batch] vs
sweep[independent] comparison (default 64, 0 disables)

fuzz runs the differential conformance harness: seeded random circuits
are executed on every simulator and checked against the metamorphic
oracles (differential, inverse, roundtrip, transpile — pass a comma
list to --oracle to select a subset). Failures are shrunk to minimal
witnesses; --repro-dir writes each witness as a .qasm reproducer

jobs flags: --retries N allows N retries after the first attempt;
--timeout-ms bounds each attempt; --inject-fail N makes the backend fail
the first N calls transiently; --hang-ms makes every call stall;
--fallback submits to a fallback chain (backend, then qasm_simulator);
--cancel requests cancellation right after submitting

execution service flags (jobs): --journal-dir DIR write-ahead-logs
every submission and terminal to DIR/jobs.journal and replays it at
startup (crash recovery; pair with --key for idempotent resubmission
across restarts); --tenant NAME submits through a per-tenant session,
--priority high|normal|low picks the class, --max-pending N caps that
tenant's queued jobs (excess submissions are shed with a REJECTED
status); --cache enables the content-addressed result cache and runs
the circuit twice to demonstrate a hit

observability: --metrics FILE.json enables the qukit_* metric registry
for the command and writes the snapshot (schema qukit-metrics/v1) to
FILE.json on exit; --trace additionally prints the span tree;
--trace-out FILE writes the per-job span waterfalls as Chrome
trace-event JSON (open in chrome://tracing or Perfetto), tail-sampled
with --trace-slow-ms N (keep traces slower than N ms) and
--trace-sample N (plus every Nth trace). `qukit serve-metrics` runs a
zero-dependency scrape endpoint serving /metrics (Prometheus text
format), /healthz, and /traces/recent (JSON span buffer); --for-ms
bounds the listener's lifetime for scripted runs. Inspect
either a metrics snapshot or a bench baseline with `qukit stats
<file>.json`. `qukit bench` sweeps the fixed circuit suite across every
capable engine and emits the qukit-bench-baseline/v1 document
(--no-metrics skips per-entry metric collection for overhead runs).
`qukit bench --load` instead drives the multi-tenant load generator:
--jobs submissions across --tenants sessions with --max-pending
admission control and --payloads distinct circuits (repeats hit the
result cache); reports latency p50/p99, throughput, shed rate, and
cache hit rate, and with --json emits a one-entry baseline for
`stats --compare` gating";

/// Runs the CLI with the given arguments, writing output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage, unreadable files, or toolchain
/// failures.
pub fn run_cli(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let mut args = args.iter();
    let command = args.next().ok_or_else(|| CliError::Usage("missing command".to_owned()))?;
    let rest: Vec<&String> = args.collect();
    match command.as_str() {
        "backends" => cmd_backends(out),
        "stats" => cmd_stats(&rest, out),
        "draw" => cmd_draw(&rest, out),
        "run" => cmd_run(&rest, out),
        "transpile" => cmd_transpile(&rest, out),
        "equiv" => cmd_equiv(&rest, out),
        "jobs" => cmd_jobs(&rest, out),
        "fuzz" => cmd_fuzz(&rest, out),
        "bench" => cmd_bench(&rest, out),
        "serve-metrics" => cmd_serve_metrics(&rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

fn load_circuit(rest: &[&String]) -> Result<qukit::QuantumCircuit, CliError> {
    let path =
        rest.first().ok_or_else(|| CliError::Usage("missing <file.qasm> argument".to_owned()))?;
    let source = std::fs::read_to_string(path.as_str())?;
    Ok(qasm::parse(&source)?)
}

fn flag_value<'a>(rest: &'a [&String], name: &str) -> Result<Option<&'a str>, CliError> {
    for (i, arg) in rest.iter().enumerate() {
        if arg.as_str() == name {
            return rest
                .get(i + 1)
                .map(|v| Some(v.as_str()))
                .ok_or_else(|| CliError::Usage(format!("flag {name} needs a value")));
        }
    }
    Ok(None)
}

fn flag_present(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, CliError> {
    value.parse::<T>().map_err(|_| CliError::Usage(format!("invalid {what} '{value}'")))
}

fn cmd_backends(out: &mut impl Write) -> Result<(), CliError> {
    let provider = Provider::with_defaults();
    writeln!(out, "{:<16} {:>7} {:>9}", "name", "qubits", "coupling")?;
    for name in provider.backend_names() {
        let backend = provider.get_backend(name)?;
        writeln!(
            out,
            "{:<16} {:>7} {:>9}",
            backend.name(),
            backend.num_qubits(),
            if backend.coupling_map().is_some() { "yes" } else { "all" }
        )?;
    }
    Ok(())
}

fn cmd_stats(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    if flag_present(rest, "--compare") {
        return stats_compare(rest, out);
    }
    let path = rest.first().ok_or_else(|| CliError::Usage("missing <file> argument".to_owned()))?;
    if path.ends_with(".json") {
        return stats_json(path, out);
    }
    let circ = load_circuit(rest)?;
    writeln!(
        out,
        "{}: {} qubits, {} clbits, {} instructions, depth {}",
        circ.name(),
        circ.num_qubits(),
        circ.num_clbits(),
        circ.size(),
        circ.depth()
    )?;
    for (name, count) in circ.count_ops() {
        writeln!(out, "  {name:<10} {count}")?;
    }
    Ok(())
}

/// `qukit stats` on a `.json` file: dispatches on the embedded schema
/// — a `qukit-metrics/v1` snapshot renders as the metrics summary, a
/// `qukit-bench-baseline/v1` document as the baseline table. Parsing
/// doubles as schema validation, so CI runs this over generated files.
fn stats_json(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)?;
    let schema = qukit_obs::json::JsonValue::parse(&text)
        .ok()
        .and_then(|v| v.get("schema").and_then(|s| s.as_str().map(str::to_owned)))
        .ok_or_else(|| {
            CliError::Usage(format!("{path} is not a schema-tagged qukit JSON document"))
        })?;
    match schema.as_str() {
        qukit_obs::export::SCHEMA => {
            let snapshot = qukit_obs::export::from_json(&text)
                .map_err(|e| CliError::Usage(format!("invalid metrics snapshot {path}: {e}")))?;
            write!(out, "{}", qukit_obs::export::summary(&snapshot))?;
            Ok(())
        }
        qukit_bench::baseline::BASELINE_SCHEMA => {
            let baseline = qukit_bench::baseline::Baseline::from_json(&text)
                .map_err(|e| CliError::Usage(format!("invalid bench baseline {path}: {e}")))?;
            write_baseline_table(&baseline, out)
        }
        other => Err(CliError::Usage(format!("unknown schema '{other}' in {path}"))),
    }
}

/// `qukit stats --compare OLD.json NEW.json [--tolerance T]`: the
/// perf-regression gate. Every `(circuit, engine)` pair present in both
/// baselines is compared; a slowdown beyond the tolerance fails the
/// command with a nonzero exit. Timings are floored at
/// [`MIN_COMPARE_WALL`](qukit_bench::baseline::MIN_COMPARE_WALL) so
/// sub-noise jitter cannot trip the gate.
fn stats_compare(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    use qukit_bench::baseline::{Baseline, MIN_COMPARE_WALL};
    let idx = rest.iter().position(|a| a.as_str() == "--compare").expect("flag checked");
    let paths: Vec<&str> =
        rest[idx + 1..].iter().take_while(|a| !a.starts_with("--")).map(|a| a.as_str()).collect();
    let [old_path, new_path] = paths[..] else {
        return Err(CliError::Usage("--compare needs exactly OLD.json NEW.json".to_owned()));
    };
    let tolerance: f64 = match flag_value(rest, "--tolerance")? {
        Some(v) => parse_number(v, "tolerance")?,
        None => 0.25,
    };
    if !(0.0..10.0).contains(&tolerance) {
        return Err(CliError::Usage(format!("tolerance {tolerance} out of range [0, 10)")));
    }
    let load = |path: &str| -> Result<Baseline, CliError> {
        let text = std::fs::read_to_string(path)?;
        Baseline::from_json(&text)
            .map_err(|e| CliError::Usage(format!("invalid bench baseline {path}: {e}")))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let shared = old
        .entries
        .iter()
        .filter(|o| new.entries.iter().any(|n| n.circuit == o.circuit && n.engine == o.engine))
        .count();
    let regressions = old.compare(&new, tolerance, MIN_COMPARE_WALL);
    writeln!(
        out,
        "compared {shared} shared (circuit, engine) pairs \
         ({} old, {} new entries), tolerance {:.0}%",
        old.entries.len(),
        new.entries.len(),
        tolerance * 100.0
    )?;
    for regression in &regressions {
        writeln!(out, "REGRESSION {regression}")?;
    }
    if regressions.is_empty() {
        writeln!(out, "no regressions")?;
        Ok(())
    } else {
        Err(CliError::Regression(format!(
            "{} entry(ies) slowed down by more than {:.0}%",
            regressions.len(),
            tolerance * 100.0
        )))
    }
}

fn cmd_draw(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let circ = load_circuit(rest)?;
    write!(out, "{}", draw::draw(&circ))?;
    Ok(())
}

/// Observability flags shared by `run`/`jobs`/`fuzz`: `--metrics
/// FILE.json` enables the global registry for the command and writes a
/// `qukit-metrics/v1` snapshot on exit; `--trace` prints the span tree;
/// `--trace-out FILE` writes a Chrome trace-event JSON (load it in
/// `chrome://tracing` or Perfetto), optionally tail-sampled with
/// `--trace-slow-ms N` (keep traces slower than N ms) and
/// `--trace-sample N` (plus every Nth trace regardless of latency).
struct ObsSession {
    metrics_path: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    trace_slow_ms: Option<u64>,
    trace_sample: Option<u64>,
}

impl ObsSession {
    fn from_flags(rest: &[&String]) -> Result<Self, CliError> {
        let metrics_path = flag_value(rest, "--metrics")?.map(str::to_owned);
        let trace = flag_present(rest, "--trace");
        let trace_out = flag_value(rest, "--trace-out")?.map(str::to_owned);
        let trace_slow_ms = match flag_value(rest, "--trace-slow-ms")? {
            Some(v) => Some(parse_number(v, "slow-trace threshold (ms)")?),
            None => None,
        };
        let trace_sample = match flag_value(rest, "--trace-sample")? {
            Some(v) => Some(parse_number(v, "trace sampling interval")?),
            None => None,
        };
        if (trace_slow_ms.is_some() || trace_sample.is_some()) && trace_out.is_none() {
            return Err(CliError::Usage(
                "--trace-slow-ms/--trace-sample need --trace-out FILE".to_owned(),
            ));
        }
        let session = Self { metrics_path, trace, trace_out, trace_slow_ms, trace_sample };
        if session.active() {
            qukit_obs::set_enabled(true);
            qukit_obs::reset();
        }
        Ok(session)
    }

    fn active(&self) -> bool {
        self.metrics_path.is_some() || self.trace || self.trace_out.is_some()
    }

    fn finish(self, out: &mut impl Write) -> Result<(), CliError> {
        if !self.active() {
            return Ok(());
        }
        let snapshot = qukit_obs::registry().snapshot();
        qukit_obs::set_enabled(false);
        if self.trace {
            writeln!(out, "trace ({} spans, oldest first):", snapshot.trace.len())?;
            for event in &snapshot.trace {
                let indent = "  ".repeat(event.depth + 1);
                let detail = if event.detail.is_empty() {
                    String::new()
                } else {
                    format!(" {}", event.detail)
                };
                writeln!(out, "{:>10}{indent}{}{detail}", fmt_us(event.duration_us), event.name)?;
            }
        }
        if let Some(path) = &self.trace_out {
            write_trace_out(path, self.trace_slow_ms, self.trace_sample, &snapshot.trace, out)?;
        }
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, qukit_obs::export::to_json(&snapshot))?;
            writeln!(out, "metrics written to {path}")?;
        }
        Ok(())
    }
}

/// Assembles the recorded span trees, tail-samples them, and writes the
/// survivors as Chrome trace-event JSON. `slow_ms`/`sample` of `None`
/// keeps every trace (and `trace_events_dropped` reports any ring-buffer
/// evictions, which surface as partial trees rather than mis-nested
/// spans).
fn write_trace_out(
    path: &str,
    slow_ms: Option<u64>,
    sample: Option<u64>,
    events: &[qukit_obs::TraceEvent],
    out: &mut impl Write,
) -> Result<(), CliError> {
    let trees = qukit_obs::assemble_trees(events);
    let total = trees.len();
    let sampler = match (slow_ms, sample) {
        (None, None) => qukit_obs::TraceSampler::keep_all(),
        (slow, every) => qukit_obs::TraceSampler::new(
            slow.map_or(std::time::Duration::MAX, std::time::Duration::from_millis),
            every.unwrap_or(0),
        ),
    };
    let kept = sampler.select(trees);
    let partial = kept.iter().filter(|tree| tree.partial).count();
    let mut picked: Vec<qukit_obs::TraceEvent> = Vec::new();
    for tree in &kept {
        tree.walk(|node, _depth| picked.push(node.event.clone()));
    }
    std::fs::write(path, qukit_obs::export::chrome_trace(&picked))?;
    writeln!(
        out,
        "trace: kept {} of {total} traces ({partial} partial, {} events dropped), \
         {} spans -> {path}",
        kept.len(),
        qukit_obs::trace_events_dropped(),
        picked.len()
    )?;
    Ok(())
}

/// Renders a microsecond count as `µs`/`ms`/`s`.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Formats a wall time given in seconds down to nanosecond resolution,
/// so sub-microsecond bench entries (cache hits) never print as `0µs`.
fn fmt_wall(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else if seconds >= 1e-3 {
        format!("{:.2}ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2}µs", seconds * 1e6)
    } else {
        format!("{:.0}ns", seconds * 1e9)
    }
}

/// Parses `--threads N` into a parallel kernel configuration (chunked
/// execution, fusion enabled) for `run`/`jobs`.
fn parallel_from_flags(
    rest: &[&String],
) -> Result<Option<qukit::aer::parallel::ParallelConfig>, CliError> {
    match flag_value(rest, "--threads")? {
        Some(v) => {
            let threads: usize = parse_number(v, "thread count")?;
            if threads == 0 {
                return Err(CliError::Usage("--threads must be at least 1".to_owned()));
            }
            Ok(Some(qukit::aer::parallel::ParallelConfig::with_threads(threads)))
        }
        None => Ok(None),
    }
}

/// Rebuilds a concrete circuit as a parameterized template, turning
/// every rotation angle (`rx`/`ry`/`rz`/`p` and all three `u` slots)
/// into a parameter. Returns the template and the original angles (the
/// binding that reproduces the input circuit exactly).
fn parameterize_rotations(
    circ: &qukit::QuantumCircuit,
) -> Result<(qukit::terra::parameter::ParameterizedCircuit, Vec<f64>), CliError> {
    use qukit::terra::instruction::Operation;
    use qukit::terra::parameter::ParameterizedCircuit;
    let mut template = ParameterizedCircuit::with_size(circ.num_qubits(), circ.num_clbits());
    let mut base = Vec::new();
    for inst in circ.instructions() {
        let rotation = match &inst.op {
            Operation::Gate(gate) if inst.condition.is_none() => {
                let name = gate.name();
                if matches!(name, "rx" | "ry" | "rz" | "p" | "u") {
                    Some((name, gate.params(), inst.qubits[0]))
                } else {
                    None
                }
            }
            _ => None,
        };
        match rotation {
            Some((name, params, q)) => {
                let mut symbols = Vec::with_capacity(params.len());
                for angle in &params {
                    let symbol = template.parameter(format!("p{}", base.len()));
                    base.push(*angle);
                    symbols.push(symbol);
                }
                match name {
                    "rx" => template.rx(symbols[0], q)?,
                    "ry" => template.ry(symbols[0], q)?,
                    "rz" => template.rz(symbols[0], q)?,
                    "p" => template.p(symbols[0], q)?,
                    _ => template.u(symbols[0], symbols[1], symbols[2], q)?,
                };
            }
            None => {
                template.circuit_mut().push(inst.clone())?;
            }
        }
    }
    Ok((template, base))
}

/// `qukit run --sweep N`: every rotation angle of the circuit becomes a
/// parameter, bound over N points scaling the original angles from 1/N
/// up to 1 (the final point reproduces the input circuit). The whole
/// grid executes through the batched sweep path — template transpiled
/// once, one kernel pass over all bindings.
fn run_sweep_points(
    provider: &Provider,
    circ: &qukit::QuantumCircuit,
    backend_name: &str,
    shots: usize,
    points: usize,
    out: &mut impl Write,
) -> Result<(), CliError> {
    if points == 0 {
        return Err(CliError::Usage("--sweep must be at least 1 point".to_owned()));
    }
    let (template, base) = parameterize_rotations(circ)?;
    if base.is_empty() {
        return Err(CliError::Usage(
            "--sweep needs at least one rotation gate (rx/ry/rz/p/u) in the circuit".to_owned(),
        ));
    }
    let bindings: Vec<Vec<f64>> = (1..=points)
        .map(|p| base.iter().map(|angle| angle * p as f64 / points as f64).collect())
        .collect();
    let backend = provider.get_backend(backend_name)?;
    let start = std::time::Instant::now();
    let report = qukit::run_sweep(backend, &template, &bindings, shots)?;
    let wall = start.elapsed().as_nanos() as f64 / 1e9;
    writeln!(
        out,
        "sweep: {points} point(s), {} parameter(s), backend: {backend_name}, shots: {shots}",
        base.len()
    )?;
    writeln!(
        out,
        "template transpiled once: {}",
        if report.transpiled_once { "yes" } else { "no (per-binding fallback)" }
    )?;
    writeln!(out, "total wall: {}, per point: {}", fmt_wall(wall), fmt_wall(wall / points as f64))?;
    let counts = report.counts.last().expect("at least one point");
    writeln!(out, "final point (original angles):")?;
    let total = counts.total() as f64;
    for (outcome, count) in counts.iter() {
        writeln!(
            out,
            "  {} {:>8} ({:.3})",
            counts.to_bitstring(outcome),
            count,
            count as f64 / total
        )?;
    }
    Ok(())
}

fn cmd_run(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let obs = ObsSession::from_flags(rest)?;
    let circ = load_circuit(rest)?;
    let backend_name = flag_value(rest, "--backend")?.unwrap_or("qasm_simulator");
    let shots: usize = match flag_value(rest, "--shots")? {
        Some(v) => parse_number(v, "shot count")?,
        None => 1024,
    };
    let mut provider = build_provider(flag_value(rest, "--seed")?)?;
    if let Some(parallel) = parallel_from_flags(rest)? {
        provider.set_parallel(parallel);
    }
    if let Some(v) = flag_value(rest, "--sweep")? {
        let points: usize = parse_number(v, "sweep point count")?;
        run_sweep_points(&provider, &circ, backend_name, shots, points, out)?;
        obs.finish(out)?;
        return Ok(());
    }
    let counts = if obs.active() {
        // Instrumented path: pre-transpile for the simulator and route
        // through the job service so a single run exercises (and
        // reports on) the transpiler, the engine, and the job queue.
        let transpiled = transpile(&circ, &TranspileOptions::for_simulator(1))?.circuit;
        let executor = JobExecutor::with_config(
            provider,
            ExecutorConfig { workers: 1, queue_capacity: 4, ..Default::default() },
        );
        let job = executor.submit(&transpiled, backend_name, shots)?;
        job.result(std::time::Duration::from_secs(120))?
    } else {
        let backend = provider.get_backend(backend_name)?;
        execute(&circ, backend, shots)?
    };
    writeln!(out, "backend: {backend_name}, shots: {shots}")?;
    let total = counts.total() as f64;
    for (outcome, count) in counts.iter() {
        writeln!(
            out,
            "  {} {:>8} ({:.3})",
            counts.to_bitstring(outcome),
            count,
            count as f64 / total
        )?;
    }
    obs.finish(out)?;
    Ok(())
}

/// Builds a provider, threading an optional seed into the seedable
/// backends.
fn build_provider(seed: Option<&str>) -> Result<Provider, CliError> {
    let mut provider = Provider::new();
    match seed {
        Some(v) => {
            let seed: u64 = parse_number(v, "seed")?;
            provider
                .register(Box::new(qukit::backend::QasmSimulatorBackend::new().with_seed(seed)));
            provider.register(Box::new(qukit::backend::DdSimulatorBackend::new().with_seed(seed)));
            provider.register(Box::new(qukit::backend::FakeDevice::ibmqx2().with_seed(seed)));
            provider.register(Box::new(qukit::backend::FakeDevice::ibmqx4().with_seed(seed)));
            provider.register(Box::new(qukit::backend::FakeDevice::ibmqx5().with_seed(seed)));
        }
        None => {
            provider = Provider::with_defaults();
        }
    }
    Ok(provider)
}

/// Builds one backend instance by name, threading an optional seed.
fn make_backend(name: &str, seed: Option<u64>) -> Result<Box<dyn qukit::Backend>, CliError> {
    use qukit::backend::{DdSimulatorBackend, FakeDevice, QasmSimulatorBackend, StabilizerBackend};
    macro_rules! seeded {
        ($backend:expr) => {{
            let b = $backend;
            Ok(Box::new(match seed {
                Some(s) => b.with_seed(s),
                None => b,
            }) as Box<dyn qukit::Backend>)
        }};
    }
    match name {
        "qasm_simulator" => seeded!(QasmSimulatorBackend::new()),
        "dd_simulator" => seeded!(DdSimulatorBackend::new()),
        "stabilizer_simulator" => seeded!(StabilizerBackend::new()),
        "ibmqx2" => seeded!(FakeDevice::ibmqx2()),
        "ibmqx4" => seeded!(FakeDevice::ibmqx4()),
        "ibmqx5" => seeded!(FakeDevice::ibmqx5()),
        other => Err(CliError::Usage(format!("unknown backend '{other}'"))),
    }
}

fn cmd_jobs(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let obs = ObsSession::from_flags(rest)?;
    let circ = load_circuit(rest)?;
    let backend_name = flag_value(rest, "--backend")?.unwrap_or("qasm_simulator");
    let shots: usize = match flag_value(rest, "--shots")? {
        Some(v) => parse_number(v, "shot count")?,
        None => 1024,
    };
    let seed: Option<u64> = match flag_value(rest, "--seed")? {
        Some(v) => Some(parse_number(v, "seed")?),
        None => None,
    };
    let retries: u32 = match flag_value(rest, "--retries")? {
        Some(v) => parse_number(v, "retry count")?,
        None => 2,
    };

    // Assemble the backend under test: base backend, optionally wrapped
    // in a fault injector, optionally behind a fallback chain.
    let mut backend = make_backend(backend_name, seed)?;
    let fault = match (flag_value(rest, "--inject-fail")?, flag_value(rest, "--hang-ms")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--inject-fail and --hang-ms are mutually exclusive".to_owned(),
            ))
        }
        (Some(n), None) => Some(FaultMode::FailTimes(parse_number(n, "failure count")?)),
        (None, Some(ms)) => Some(FaultMode::Hang(std::time::Duration::from_millis(parse_number(
            ms,
            "hang duration",
        )?))),
        (None, None) => None,
    };
    if let Some(mode) = fault {
        backend = Box::new(FaultInjectingBackend::new(backend, mode));
    }
    let mut provider = Provider::with_defaults();
    let submit_name = if flag_present(rest, "--fallback") {
        let chain = FallbackChain::new("fallback_chain")
            .then(backend)
            .then(make_backend("qasm_simulator", seed)?);
        provider.register(Box::new(chain));
        "fallback_chain"
    } else {
        // Last registration wins: the instrumented backend shadows the
        // default one of the same name.
        provider.register(backend);
        backend_name
    };

    let mut retry = RetryPolicy::new(retries + 1)
        .with_base_backoff(std::time::Duration::from_millis(20))
        .with_jitter(0.0);
    if let Some(ms) = flag_value(rest, "--timeout-ms")? {
        retry = retry.with_attempt_timeout(std::time::Duration::from_millis(parse_number(
            ms,
            "attempt timeout",
        )?));
    }
    let use_cache = flag_present(rest, "--cache");
    let config = ExecutorConfig {
        workers: 1,
        queue_capacity: 16,
        retry,
        parallel: parallel_from_flags(rest)?,
        journal_dir: flag_value(rest, "--journal-dir")?.map(std::path::PathBuf::from),
        cache: if use_cache { Some(qukit::CacheConfig::default()) } else { None },
        ..Default::default()
    };
    let executor = JobExecutor::try_with_config(provider, config)?;
    if let Some(recovery) = executor.recovery() {
        writeln!(
            out,
            "journal: replayed {}, recovered terminal {}, corrupt dropped {}",
            recovery.replayed, recovery.recovered_terminal, recovery.corrupt_dropped
        )?;
    }

    let tenant = flag_value(rest, "--tenant")?.unwrap_or(qukit::DEFAULT_TENANT);
    let priority = match flag_value(rest, "--priority")? {
        Some(p) => qukit::Priority::parse(p)
            .ok_or_else(|| CliError::Usage(format!("unknown priority '{p}'")))?,
        None => qukit::Priority::Normal,
    };
    if let Some(cap) = flag_value(rest, "--max-pending")? {
        let cap: usize = parse_number(cap, "pending cap")?;
        let _ = executor.session_with(tenant, qukit::TenantConfig::default().with_max_pending(cap));
    }
    let key = flag_value(rest, "--key")?;
    let prior_id = key.and_then(|k| executor.job_for_key(k)).map(|j| j.id());
    let options = qukit::job::SubmitOptions {
        tenant: tenant.to_owned(),
        priority,
        idempotency_key: key.map(str::to_owned),
    };

    let job = executor.submit_with(&circ, submit_name, shots, &options)?;
    writeln!(out, "job {}: {} shots on {}", job.id(), shots, submit_name)?;
    if tenant != qukit::DEFAULT_TENANT {
        writeln!(out, "tenant: {tenant} (priority {priority})")?;
    }
    if let (Some(key), Some(prior)) = (key, prior_id) {
        if prior == job.id() {
            writeln!(out, "idempotency key '{key}' deduplicated: reusing job {prior}")?;
        }
    }
    if job.status() == qukit::job::JobStatus::Rejected {
        writeln!(out, "status: {} (shed by admission control)", job.status())?;
        obs.finish(out)?;
        executor.shutdown();
        return Ok(());
    }
    if prior_id != Some(job.id()) {
        // Every accepted submission starts queued; reading job.status()
        // here would race the worker on fast backends.
        writeln!(out, "status: {}", qukit::job::JobStatus::Queued)?;
    }
    if flag_present(rest, "--cancel") {
        let immediate = job.cancel();
        writeln!(
            out,
            "cancel requested ({})",
            if immediate { "while queued" } else { "takes effect at the next attempt boundary" }
        )?;
    }
    let outcome = job.result(std::time::Duration::from_secs(120));
    writeln!(out, "status: {}", job.status())?;
    let backoffs: Vec<String> =
        job.backoffs().iter().map(|d| format!("{}ms", d.as_millis())).collect();
    writeln!(out, "attempts: {} (backoffs: [{}])", job.attempts(), backoffs.join(", "))?;
    match outcome {
        Ok(counts) => {
            writeln!(out, "executed on: {}", job.executed_on().unwrap_or_else(|| "?".to_owned()))?;
            let total = counts.total() as f64;
            for (outcome, count) in counts.iter() {
                writeln!(
                    out,
                    "  {} {:>8} ({:.3})",
                    counts.to_bitstring(outcome),
                    count,
                    count as f64 / total
                )?;
            }
        }
        Err(e) => writeln!(out, "job failed: {e}")?,
    }
    if use_cache && job.status() == qukit::job::JobStatus::Done {
        // Resubmit the identical payload under a second tenant: the
        // cache is content-addressed, so the hit crosses tenants — and
        // the rerun's trace records a `job.cache_hit` span linking the
        // producing job's trace instead of an execution subtree.
        let rerun_tenant = format!("{tenant}-rerun");
        let rerun = executor.submit_with(
            &circ,
            submit_name,
            shots,
            &qukit::job::SubmitOptions {
                tenant: rerun_tenant.clone(),
                priority,
                idempotency_key: None,
            },
        )?;
        let _ = rerun.result(std::time::Duration::from_secs(120));
        writeln!(
            out,
            "cache: second run (tenant {rerun_tenant}) served from cache: {}",
            if rerun.served_from_cache() { "yes" } else { "no" }
        )?;
    }
    obs.finish(out)?;
    Ok(())
}

fn cmd_fuzz(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let obs = ObsSession::from_flags(rest)?;
    use qukit_conformance::{
        DiffConfig, FuzzConfig, GateSet, GeneratorConfig, MatrixTable, OracleKind,
    };
    let seed: u64 = match flag_value(rest, "--seed")? {
        Some(v) => parse_number(v, "seed")?,
        None => 42,
    };
    let cases: usize = match flag_value(rest, "--cases")? {
        Some(v) => parse_number(v, "case count")?,
        None => 200,
    };
    let max_qubits: usize = match flag_value(rest, "--max-qubits")? {
        Some(v) => parse_number(v, "qubit bound")?,
        None => 5,
    };
    let max_depth: usize = match flag_value(rest, "--max-depth")? {
        Some(v) => parse_number(v, "depth bound")?,
        None => 16,
    };
    let shots: usize = match flag_value(rest, "--shots")? {
        Some(v) => parse_number(v, "shot count")?,
        None => 1024,
    };
    let oracles = match flag_value(rest, "--oracle")? {
        Some(spec) => OracleKind::parse_list(spec)
            .ok_or_else(|| CliError::Usage(format!("unknown oracle list '{spec}'")))?,
        None => OracleKind::ALL.to_vec(),
    };
    let gate_set = match flag_value(rest, "--gate-set")? {
        Some(name) => GateSet::parse(name)
            .ok_or_else(|| CliError::Usage(format!("unknown gate set '{name}'")))?,
        None => GateSet::Full,
    };
    if max_qubits == 0 {
        return Err(CliError::Usage("--max-qubits must be at least 1".to_owned()));
    }
    let config = FuzzConfig {
        seed,
        cases,
        generator: GeneratorConfig {
            gate_set,
            max_qubits,
            max_depth: max_depth.max(1),
            with_measurements: flag_present(rest, "--measure"),
            ..GeneratorConfig::default()
        },
        oracles,
        diff: DiffConfig { shots, seed: seed.wrapping_add(1), ..DiffConfig::default() },
        matrices: MatrixTable::pristine(),
        shrink: !flag_present(rest, "--no-shrink"),
        max_failures: 5,
    };
    let oracle_names: Vec<&str> = config.oracles.iter().map(|k| k.name()).collect();
    writeln!(
        out,
        "fuzzing: seed {seed}, {cases} cases, <= {max_qubits} qubits, <= {} gates, \
         gate set {:?}, oracles [{}]",
        config.generator.max_depth,
        gate_set,
        oracle_names.join(", ")
    )?;
    let report = qukit_conformance::run_fuzz(&config);
    writeln!(
        out,
        "cases: {} in {:.2}s ({:.1} cases/sec)",
        report.cases,
        report.elapsed_seconds,
        report.cases_per_sec()
    )?;
    for (oracle, passed) in &report.checks {
        let skipped = report.skips.get(oracle).copied().unwrap_or(0);
        let secs = report.oracle_seconds.get(oracle).copied().unwrap_or(0.0);
        if skipped > 0 {
            writeln!(out, "  {oracle:<13} {passed:>6} passed, {skipped} skipped ({secs:.2}s)")?;
        } else {
            writeln!(out, "  {oracle:<13} {passed:>6} passed ({secs:.2}s)")?;
        }
    }
    if let Some((slowest, secs)) = report.slowest_oracles().first() {
        writeln!(out, "slowest oracle: {slowest} ({secs:.2}s total)")?;
    }
    let repro_dir = flag_value(rest, "--repro-dir")?;
    for failure in &report.failures {
        writeln!(out, "---")?;
        writeln!(out, "case {} FAILED: {}", failure.case_index, failure.mismatch)?;
        writeln!(
            out,
            "shrunk {} -> {} gates ({})",
            failure.original.num_gates(),
            failure.shrunk.num_gates(),
            failure.reproducer.file_name()
        )?;
        write!(out, "{}", failure.reproducer.qasm)?;
        writeln!(out, "--- suggested regression test ---")?;
        write!(out, "{}", failure.reproducer.test_case)?;
        if let Some(dir) = repro_dir {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join(failure.reproducer.file_name()), &failure.reproducer.qasm)?;
        }
    }
    obs.finish(out)?;
    if report.is_green() {
        writeln!(out, "all oracles green")?;
        Ok(())
    } else {
        Err(CliError::Conformance(format!(
            "{} conformance violation(s) found (seed {seed})",
            report.failures.len()
        )))
    }
}

fn cmd_bench(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    use qukit_bench::baseline::{run_baseline, BaselineConfig};
    if flag_present(rest, "--load") {
        return bench_load(rest, out);
    }
    let shots: usize = match flag_value(rest, "--shots")? {
        Some(v) => parse_number(v, "shot count")?,
        None => 1024,
    };
    let seed: u64 = match flag_value(rest, "--seed")? {
        Some(v) => parse_number(v, "seed")?,
        None => 7,
    };
    let max_threads: usize = match flag_value(rest, "--threads")? {
        Some(v) => {
            let n = parse_number(v, "thread count")?;
            if n == 0 {
                return Err(CliError::Usage("--threads must be at least 1".to_owned()));
            }
            n
        }
        None => 8,
    };
    let mut threads: Vec<usize> = [1, 2, 4, 8].into_iter().filter(|t| *t <= max_threads).collect();
    if !threads.contains(&max_threads) {
        threads.push(max_threads);
    }
    let repeats: usize = match flag_value(rest, "--repeats")? {
        Some(v) => parse_number(v, "repeat count")?,
        None => 3,
    };
    let sweep_bindings: usize = match flag_value(rest, "--sweep-bindings")? {
        Some(v) => parse_number(v, "sweep binding count")?,
        None => BaselineConfig::default().sweep_bindings,
    };
    let config = BaselineConfig {
        shots,
        seed,
        collect_metrics: !flag_present(rest, "--no-metrics"),
        repeats: repeats.max(1),
        threads,
        large_statevector: flag_present(rest, "--large"),
        sweep_bindings,
    };
    let baseline = run_baseline(&config);
    if flag_present(rest, "--json") {
        let json = baseline.to_json();
        match flag_value(rest, "--out")? {
            Some(path) => {
                std::fs::write(path, &json)?;
                writeln!(out, "baseline written to {path} ({} entries)", baseline.entries.len())?;
            }
            None => write!(out, "{json}")?,
        }
    } else {
        write_baseline_table(&baseline, out)?;
    }
    Ok(())
}

/// `qukit bench --load`: the multi-tenant load generator. Reports
/// service latency quantiles, throughput, shed rate, and cache hit
/// rate; `--json` emits a one-entry `qukit-bench-baseline/v1` document
/// for the `stats --compare` gate.
fn bench_load(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    use qukit_bench::load::{run_load, LoadConfig};
    let mut config = LoadConfig::default();
    if let Some(v) = flag_value(rest, "--tenants")? {
        config.tenants = parse_number(v, "tenant count")?;
    }
    if let Some(v) = flag_value(rest, "--jobs")? {
        config.jobs = parse_number(v, "job count")?;
    }
    if let Some(v) = flag_value(rest, "--workers")? {
        config.workers = parse_number(v, "worker count")?;
    }
    if let Some(v) = flag_value(rest, "--max-pending")? {
        config.max_pending = parse_number(v, "pending cap")?;
    }
    if let Some(v) = flag_value(rest, "--payloads")? {
        config.payload_pool = parse_number(v, "payload count")?;
    }
    if let Some(v) = flag_value(rest, "--shots")? {
        config.shots = parse_number(v, "shot count")?;
    }
    if let Some(v) = flag_value(rest, "--seed")? {
        config.seed = parse_number(v, "seed")?;
    }
    if let Some(v) = flag_value(rest, "--pace-us")? {
        config.pace_micros = parse_number(v, "pace")?;
    }
    if config.tenants == 0 || config.jobs == 0 || config.workers == 0 {
        return Err(CliError::Usage(
            "--tenants, --jobs, and --workers must all be at least 1".to_owned(),
        ));
    }
    writeln!(
        out,
        "load: {} jobs across {} tenants, {} workers, max pending {} per tenant, \
         {} payloads, seed {}",
        config.jobs,
        config.tenants,
        config.workers,
        config.max_pending,
        config.payload_pool,
        config.seed
    )?;
    let report = run_load(&config);
    write!(out, "{}", report.render())?;
    if let Some(path) = flag_value(rest, "--trace-out")? {
        let slow_ms = match flag_value(rest, "--trace-slow-ms")? {
            Some(v) => Some(parse_number(v, "slow-trace threshold (ms)")?),
            None => None,
        };
        let sample = match flag_value(rest, "--trace-sample")? {
            Some(v) => Some(parse_number(v, "trace sampling interval")?),
            None => None,
        };
        // run_load resets the registry on entry and restores the
        // enabled flag on exit, so the ring buffer still holds exactly
        // this run's spans here.
        write_trace_out(path, slow_ms, sample, &qukit_obs::snapshot_trace(), out)?;
    }
    if flag_present(rest, "--json") {
        let json = report.to_baseline(&config).to_json();
        match flag_value(rest, "--out")? {
            Some(path) => {
                std::fs::write(path, &json)?;
                writeln!(out, "baseline written to {path} (1 entry)")?;
            }
            None => write!(out, "{json}")?,
        }
    }
    Ok(())
}

/// `qukit serve-metrics`: a zero-dependency HTTP scrape endpoint over
/// the global registry — `/metrics` (Prometheus text format),
/// `/healthz`, and `/traces/recent` (recorded span buffer as JSON).
/// Enables metrics recording for the listener's lifetime. `--for-ms N`
/// bounds the run for scripted use; without it the listener serves
/// until the process is killed.
fn cmd_serve_metrics(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let addr = flag_value(rest, "--addr")?.unwrap_or("127.0.0.1:9187");
    let for_ms: Option<u64> = match flag_value(rest, "--for-ms")? {
        Some(v) => Some(parse_number(v, "serve duration (ms)")?),
        None => None,
    };
    qukit_obs::set_enabled(true);
    let server = qukit_obs::http::serve(addr)
        .map_err(|e| CliError::Usage(format!("cannot bind {addr}: {e}")))?;
    writeln!(out, "serving /metrics, /healthz, /traces/recent on http://{}", server.local_addr())?;
    out.flush()?;
    match for_ms {
        Some(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            server.shutdown();
            writeln!(out, "served for {ms}ms, shut down")?;
        }
        None => loop {
            std::thread::park();
        },
    }
    Ok(())
}

/// Renders a bench baseline as the human-readable table shown by both
/// `qukit bench` and `qukit stats <baseline>.json`.
fn write_baseline_table(
    baseline: &qukit_bench::baseline::Baseline,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<16} {:<34} {:>6} {:>6} {:>6} {:>10} {:>8}",
        "circuit", "engine", "qubits", "gates", "shots", "wall", "metrics"
    )?;
    for entry in &baseline.entries {
        writeln!(
            out,
            "{:<16} {:<34} {:>6} {:>6} {:>6} {:>10} {:>8}",
            entry.circuit,
            entry.engine,
            entry.qubits,
            entry.gates,
            entry.shots,
            fmt_wall(entry.wall_seconds),
            entry.metrics.len()
        )?;
    }
    writeln!(
        out,
        "{} entries (schema {})",
        baseline.entries.len(),
        qukit_bench::baseline::BASELINE_SCHEMA
    )?;
    Ok(())
}

fn parse_coupling(spec: &str) -> Result<CouplingMap, CliError> {
    let (kind, size) = spec
        .split_once(':')
        .ok_or_else(|| CliError::Usage(format!("coupling spec '{spec}' must be KIND:N")))?;
    match kind {
        "line" => Ok(CouplingMap::line(parse_number(size, "size")?)),
        "ring" => Ok(CouplingMap::ring(parse_number(size, "size")?)),
        "full" => Ok(CouplingMap::full(parse_number(size, "size")?)),
        "grid" => {
            let (r, c) = size
                .split_once('x')
                .ok_or_else(|| CliError::Usage(format!("grid spec '{size}' must be RxC")))?;
            Ok(CouplingMap::grid(parse_number(r, "rows")?, parse_number(c, "cols")?))
        }
        other => Err(CliError::Usage(format!("unknown coupling kind '{other}'"))),
    }
}

fn device_coupling(name: &str) -> Result<CouplingMap, CliError> {
    match name {
        "ibmqx2" => Ok(CouplingMap::ibm_qx2()),
        "ibmqx3" => Ok(CouplingMap::ibm_qx3()),
        "ibmqx4" => Ok(CouplingMap::ibm_qx4()),
        "ibmqx5" => Ok(CouplingMap::ibm_qx5()),
        other => Err(CliError::Usage(format!("unknown device '{other}'"))),
    }
}

fn cmd_transpile(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    let circ = load_circuit(rest)?;
    let coupling = match (flag_value(rest, "--device")?, flag_value(rest, "--coupling")?) {
        (Some(device), None) => Some(device_coupling(device)?),
        (None, Some(spec)) => Some(parse_coupling(spec)?),
        (None, None) => None,
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--device and --coupling are mutually exclusive".to_owned(),
            ))
        }
    };
    let mapper_flag = match (flag_value(rest, "--mapper")?, flag_value(rest, "--router")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--mapper and --router are aliases; pass only one".to_owned(),
            ))
        }
        (mapper, router) => mapper.or(router),
    };
    let mapper = match mapper_flag.unwrap_or("sabre") {
        "basic" => MapperKind::Basic,
        "lookahead" => MapperKind::Lookahead,
        "astar" => MapperKind::AStar,
        "sabre" => MapperKind::Sabre,
        other => return Err(CliError::Usage(format!("unknown mapper '{other}'"))),
    };
    let opt_flag = match (flag_value(rest, "--opt")?, flag_value(rest, "--opt-level")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--opt and --opt-level are aliases; pass only one".to_owned(),
            ))
        }
        (opt, opt_level) => opt.or(opt_level),
    };
    let optimization_level: u8 = match opt_flag {
        Some(v) => {
            let level = parse_number(v, "optimization level")?;
            if level > 3 {
                return Err(CliError::Usage(format!("optimization level {level} not in 0..=3")));
            }
            level
        }
        None => 1,
    };
    let options = TranspileOptions {
        coupling_map: coupling,
        mapper,
        optimization_level,
        ..TranspileOptions::default()
    };
    let result = transpile(&circ, &options)?;
    writeln!(out, "in:  {} gates, depth {}", circ.num_gates(), circ.depth())?;
    writeln!(
        out,
        "out: {} gates, depth {}, swaps inserted {}",
        result.circuit.num_gates(),
        result.circuit.depth(),
        result.num_swaps
    )?;
    writeln!(out, "initial layout: {:?}", result.initial_layout)?;
    writeln!(out, "final layout:   {:?}", result.final_layout)?;
    if flag_present(rest, "--emit") {
        writeln!(out, "---")?;
        write!(out, "{}", qasm::emit(&result.circuit))?;
    }
    Ok(())
}

fn cmd_equiv(rest: &[&String], out: &mut impl Write) -> Result<(), CliError> {
    if rest.len() < 2 {
        return Err(CliError::Usage("equiv needs two .qasm files".to_owned()));
    }
    let a = qasm::parse(&std::fs::read_to_string(rest[0].as_str())?)?;
    let b = qasm::parse(&std::fs::read_to_string(rest[1].as_str())?)?;
    if a.num_qubits() != b.num_qubits() {
        writeln!(out, "NOT equivalent: widths differ ({} vs {})", a.num_qubits(), b.num_qubits())?;
        return Ok(());
    }
    let verdict = qukit::dd::verify::check_equivalence(&a, &b)
        .map_err(|e| CliError::Qukit(qukit::error::QukitError::Dd(e)))?;
    match verdict {
        qukit::dd::verify::Equivalence::Equivalent => writeln!(out, "equivalent")?,
        qukit::dd::verify::Equivalence::EquivalentUpToPhase(phase) => {
            writeln!(out, "equivalent up to global phase {phase:+.6} rad")?
        }
        qukit::dd::verify::Equivalence::NotEquivalent => writeln!(out, "NOT equivalent")?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_ok(list: &[&str]) -> String {
        let mut out = Vec::new();
        run_cli(&args(list), &mut out).expect("cli must succeed");
        String::from_utf8(out).expect("utf8 output")
    }

    fn run_err(list: &[&str]) -> CliError {
        let mut out = Vec::new();
        run_cli(&args(list), &mut out).expect_err("cli must fail")
    }

    fn write_bell() -> tempfile::TempQasm {
        tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
        )
    }

    /// Minimal self-cleaning temp file helper (no external crates).
    mod tempfile {
        pub struct TempQasm {
            pub path: std::path::PathBuf,
        }
        impl TempQasm {
            pub fn new(contents: &str) -> Self {
                let path = std::env::temp_dir().join(format!(
                    "qukit_cli_test_{}_{}.qasm",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .expect("clock")
                        .as_nanos()
                ));
                std::fs::write(&path, contents).expect("write temp qasm");
                Self { path }
            }
            pub fn as_str(&self) -> &str {
                self.path.to_str().expect("utf8 path")
            }
        }
        impl Drop for TempQasm {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    #[test]
    fn backends_lists_defaults() {
        let text = run_ok(&["backends"]);
        for name in ["qasm_simulator", "dd_simulator", "ibmqx2", "ibmqx4", "ibmqx5"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn stats_reports_counts_and_depth() {
        let file = write_bell();
        let text = run_ok(&["stats", file.as_str()]);
        assert!(text.contains("2 qubits"));
        assert!(text.contains("h "));
        assert!(text.contains("measure"));
    }

    #[test]
    fn draw_renders_wires() {
        let file = write_bell();
        let text = run_ok(&["draw", file.as_str()]);
        assert!(text.contains("[H]"));
        assert!(text.contains("q0:"));
    }

    #[test]
    fn run_produces_correlated_bell_counts() {
        let file = write_bell();
        let text = run_ok(&[
            "run",
            file.as_str(),
            "--backend",
            "qasm_simulator",
            "--shots",
            "200",
            "--seed",
            "5",
        ]);
        assert!(text.contains("shots: 200"));
        assert!(text.contains("00"));
        assert!(!text.contains(" 01 "), "bell must not produce 01:\n{text}");
    }

    #[test]
    fn run_sweep_executes_angle_grid_through_batch_path() {
        let file = tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             ry(0.8) q[0];\ncx q[0],q[1];\nrz(1.2) q[1];\nmeasure q -> c;\n",
        );
        let text = run_ok(&["run", file.as_str(), "--sweep", "4", "--shots", "100", "--seed", "3"]);
        assert!(text.contains("sweep: 4 point(s), 2 parameter(s)"), "{text}");
        assert!(text.contains("template transpiled once: yes"), "{text}");
        assert!(text.contains("final point (original angles):"), "{text}");
        // The final sweep point reproduces the original circuit exactly.
        let direct = run_ok(&["run", file.as_str(), "--shots", "100", "--seed", "3"]);
        let tail = |s: &str| {
            s.lines()
                .filter(|l| l.trim_start().starts_with(['0', '1']))
                .map(str::trim)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&text), tail(&direct), "sweep:\n{text}\ndirect:\n{direct}");
    }

    #[test]
    fn run_sweep_without_rotations_is_a_usage_error() {
        let file = write_bell();
        let err = run_err(&["run", file.as_str(), "--sweep", "4"]);
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("rotation"), "{err}");
    }

    #[test]
    fn run_on_fake_device() {
        let file = write_bell();
        let text =
            run_ok(&["run", file.as_str(), "--backend", "ibmqx4", "--shots", "100", "--seed", "1"]);
        assert!(text.contains("backend: ibmqx4"));
    }

    #[test]
    fn transpile_to_device_and_emit() {
        let file = write_bell();
        let text = run_ok(&[
            "transpile",
            file.as_str(),
            "--device",
            "ibmqx4",
            "--mapper",
            "astar",
            "--opt",
            "3",
            "--emit",
        ]);
        assert!(text.contains("swaps inserted"));
        assert!(text.contains("OPENQASM 2.0;"));
    }

    #[test]
    fn transpile_with_synthetic_coupling() {
        let file = write_bell();
        let text = run_ok(&["transpile", file.as_str(), "--coupling", "line:4"]);
        assert!(text.contains("out:"));
        let text = run_ok(&["transpile", file.as_str(), "--coupling", "grid:2x2"]);
        assert!(text.contains("out:"));
    }

    #[test]
    fn transpile_router_and_opt_level_flags() {
        let file = write_bell();
        let text = run_ok(&[
            "transpile",
            file.as_str(),
            "--device",
            "ibmqx4",
            "--router",
            "sabre",
            "--opt-level",
            "3",
        ]);
        assert!(text.contains("swaps inserted"));
        let err = run_err(&["transpile", file.as_str(), "--router", "sabre", "--mapper", "astar"]);
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("aliases")));
        let err = run_err(&["transpile", file.as_str(), "--opt-level", "7"]);
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("not in 0..=3")));
    }

    #[test]
    fn equiv_detects_rewrites_and_differences() {
        let a = write_bell();
        // Same circuit with a cancelled H pair in the middle (no
        // measurement: equivalence checking needs unitary circuits).
        let u = tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        );
        let v = tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\nh q[1];\nh q[1];\ncx q[0],q[1];\n",
        );
        let w = tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[1],q[0];\n",
        );
        let text = run_ok(&["equiv", u.as_str(), v.as_str()]);
        assert!(text.contains("equivalent"), "{text}");
        let text = run_ok(&["equiv", u.as_str(), w.as_str()]);
        assert!(text.contains("NOT equivalent"), "{text}");
        let _ = a;
    }

    #[test]
    fn jobs_happy_path_reports_lifecycle() {
        let file = write_bell();
        let text = run_ok(&["jobs", file.as_str(), "--shots", "200", "--seed", "5"]);
        assert!(text.contains("status: QUEUED"), "{text}");
        assert!(text.contains("status: DONE"), "{text}");
        assert!(text.contains("attempts: 1 (backoffs: [])"), "{text}");
        assert!(text.contains("executed on: qasm_simulator"), "{text}");
        assert!(text.contains("00"), "{text}");
    }

    #[test]
    fn jobs_retries_injected_transient_faults() {
        let file = write_bell();
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "100",
            "--seed",
            "5",
            "--inject-fail",
            "2",
            "--retries",
            "3",
        ]);
        assert!(text.contains("status: DONE"), "{text}");
        assert!(text.contains("attempts: 3"), "{text}");
        assert!(text.contains("20ms, 40ms"), "{text}");
    }

    #[test]
    fn jobs_exhausted_retries_report_error() {
        let file = write_bell();
        let text = run_ok(&["jobs", file.as_str(), "--inject-fail", "99", "--retries", "1"]);
        assert!(text.contains("status: ERROR"), "{text}");
        assert!(text.contains("attempts: 2"), "{text}");
        assert!(text.contains("job failed:"), "{text}");
    }

    #[test]
    fn jobs_hang_times_out() {
        let file = write_bell();
        let text = run_ok(&["jobs", file.as_str(), "--hang-ms", "500", "--timeout-ms", "25"]);
        assert!(text.contains("status: TIMED_OUT"), "{text}");
        assert!(text.contains("attempts: 1"), "{text}");
    }

    #[test]
    fn jobs_fallback_chain_records_server() {
        // reset is non-unitary: the dd simulator rejects it, the chain
        // falls back to the qasm simulator.
        let file = tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n\
             x q[0];\nreset q[0];\nx q[0];\nmeasure q -> c;\n",
        );
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--backend",
            "dd_simulator",
            "--fallback",
            "--shots",
            "50",
            "--seed",
            "3",
        ]);
        assert!(text.contains("status: DONE"), "{text}");
        assert!(text.contains("executed on: qasm_simulator"), "{text}");
    }

    #[test]
    fn jobs_cancel_is_honored() {
        let file = write_bell();
        let text =
            run_ok(&["jobs", file.as_str(), "--inject-fail", "9", "--retries", "9", "--cancel"]);
        assert!(text.contains("cancel requested"), "{text}");
        assert!(text.contains("status: CANCELLED"), "{text}");
    }

    #[test]
    fn jobs_flag_conflicts_and_unknown_backend() {
        let file = write_bell();
        assert!(matches!(
            run_err(&["jobs", file.as_str(), "--inject-fail", "1", "--hang-ms", "5"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["jobs", file.as_str(), "--backend", "ibmqx99"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run_err(&[]), CliError::Usage(_)));
        assert!(matches!(run_err(&["frobnicate"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["stats"]), CliError::Usage(_)));
        let file = write_bell();
        assert!(matches!(
            run_err(&["transpile", file.as_str(), "--mapper", "magic"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["transpile", file.as_str(), "--coupling", "torus:4"]),
            CliError::Usage(_)
        ));
        assert!(matches!(run_err(&["run", file.as_str(), "--shots"]), CliError::Usage(_)));
    }

    #[test]
    fn fuzz_smoke_campaign_is_green() {
        let text = run_ok(&[
            "fuzz",
            "--seed",
            "42",
            "--cases",
            "10",
            "--max-qubits",
            "3",
            "--max-depth",
            "6",
            "--shots",
            "128",
        ]);
        assert!(text.contains("cases: 10"), "{text}");
        assert!(text.contains("all oracles green"), "{text}");
        assert!(text.contains("differential"), "{text}");
    }

    #[test]
    fn fuzz_with_measurements_and_oracle_subset() {
        let text = run_ok(&[
            "fuzz",
            "--cases",
            "5",
            "--max-qubits",
            "2",
            "--max-depth",
            "4",
            "--shots",
            "64",
            "--measure",
            "--oracle",
            "differential,roundtrip",
        ]);
        assert!(text.contains("oracles [differential, roundtrip]"), "{text}");
        assert!(text.contains("all oracles green"), "{text}");
    }

    #[test]
    fn fuzz_rejects_bad_flags() {
        assert!(matches!(run_err(&["fuzz", "--oracle", "bogus"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["fuzz", "--gate-set", "bogus"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["fuzz", "--max-qubits", "0"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["fuzz", "--cases", "many"]), CliError::Usage(_)));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(run_err(&["stats", "/nonexistent/file.qasm"]), CliError::Io(_)));
    }

    /// Commands that toggle the global metrics registry must not
    /// interleave; every `--metrics`/`--trace`/`bench` test takes this.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A self-cleaning temp path for JSON artifacts.
    fn temp_json(tag: &str) -> tempfile::TempQasm {
        let path = std::env::temp_dir().join(format!(
            "qukit_cli_test_{tag}_{}_{}.json",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        // Reuse TempQasm purely for its Drop cleanup.
        std::fs::write(&path, "").expect("create temp json");
        tempfile::TempQasm { path }
    }

    #[test]
    fn run_with_metrics_captures_all_three_layers() {
        let _guard = obs_lock();
        let file = write_bell();
        let metrics = temp_json("run");
        let text = run_ok(&[
            "run",
            file.as_str(),
            "--shots",
            "100",
            "--seed",
            "3",
            "--metrics",
            metrics.as_str(),
        ]);
        assert!(text.contains("metrics written to"), "{text}");
        let written = std::fs::read_to_string(&metrics.path).expect("snapshot written");
        qukit_obs::export::validate_snapshot_json(&written).expect("schema-valid snapshot");
        let snapshot = qukit_obs::export::from_json(&written).expect("snapshot parses");
        // Transpiler, simulator, and job-service metrics are all nonzero.
        assert!(
            snapshot.histograms.keys().any(|k| k.starts_with("qukit_terra_pass_seconds")),
            "transpiler pass timings present: {:?}",
            snapshot.histograms.keys().collect::<Vec<_>>()
        );
        assert!(snapshot.counters.get("qukit_terra_transpile_runs_total") > Some(&0));
        assert!(snapshot.counters.get("qukit_aer_qasm_runs_total") > Some(&0));
        assert!(snapshot.counters.get("qukit_core_jobs_submitted_total") > Some(&0));
        assert!(snapshot.counters.get("qukit_core_jobs_completed_total") > Some(&0));
        // The `stats` command renders the snapshot as a summary.
        let summary = run_ok(&["stats", metrics.as_str()]);
        assert!(summary.contains("terra"), "{summary}");
        assert!(summary.contains("core"), "{summary}");
    }

    #[test]
    fn run_with_trace_prints_span_tree() {
        let _guard = obs_lock();
        let file = write_bell();
        let text = run_ok(&["run", file.as_str(), "--shots", "50", "--seed", "1", "--trace"]);
        assert!(text.contains("trace ("), "{text}");
        assert!(text.contains("transpile"), "{text}");
    }

    #[test]
    fn jobs_with_metrics_counts_retries() {
        let _guard = obs_lock();
        let file = write_bell();
        let metrics = temp_json("jobs");
        run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "50",
            "--inject-fail",
            "2",
            "--retries",
            "3",
            "--metrics",
            metrics.as_str(),
        ]);
        let written = std::fs::read_to_string(&metrics.path).expect("snapshot written");
        let snapshot = qukit_obs::export::from_json(&written).expect("snapshot parses");
        assert_eq!(snapshot.counters.get("qukit_core_job_retries_total"), Some(&2));
        assert_eq!(snapshot.counters.get("qukit_core_fault_injections_total"), Some(&2));
        assert_eq!(snapshot.counters.get("qukit_core_jobs_completed_total"), Some(&1));
    }

    #[test]
    fn bench_emits_and_stats_renders_a_valid_baseline() {
        let _guard = obs_lock();
        let out_file = temp_json("bench");
        let text = run_ok(&["bench", "--json", "--out", out_file.as_str(), "--shots", "16"]);
        assert!(text.contains("baseline written to"), "{text}");
        let written = std::fs::read_to_string(&out_file.path).expect("baseline written");
        let baseline =
            qukit_bench::baseline::Baseline::from_json(&written).expect("baseline validates");
        assert!(baseline.entries.len() >= 8);
        let table = run_ok(&["stats", out_file.as_str()]);
        assert!(table.contains("dd_simulator"), "{table}");
        assert!(table.contains("entries (schema qukit-bench-baseline/v1)"), "{table}");
    }

    #[test]
    fn stats_rejects_unknown_json() {
        let _guard = obs_lock();
        let bogus = temp_json("bogus");
        std::fs::write(&bogus.path, "{\"schema\": \"mystery/v1\"}").unwrap();
        assert!(matches!(run_err(&["stats", bogus.as_str()]), CliError::Usage(_)));
        std::fs::write(&bogus.path, "not json at all").unwrap();
        assert!(matches!(run_err(&["stats", bogus.as_str()]), CliError::Usage(_)));
    }

    #[test]
    fn fuzz_reports_throughput_and_slowest_oracle() {
        let text = run_ok(&[
            "fuzz",
            "--seed",
            "7",
            "--cases",
            "5",
            "--max-qubits",
            "2",
            "--max-depth",
            "4",
            "--shots",
            "64",
        ]);
        assert!(text.contains("cases/sec"), "{text}");
        assert!(text.contains("slowest oracle:"), "{text}");
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&["help"]);
        assert!(text.contains("usage:"));
        assert!(text.contains("--compare"));
        assert!(text.contains("--threads"));
    }

    #[test]
    fn run_with_threads_produces_correlated_bell_counts() {
        let file = write_bell();
        let text =
            run_ok(&["run", file.as_str(), "--shots", "200", "--seed", "5", "--threads", "2"]);
        assert!(text.contains("shots: 200"));
        assert!(!text.contains(" 01 "), "bell must not produce 01:\n{text}");
        assert!(matches!(run_err(&["run", file.as_str(), "--threads", "0"]), CliError::Usage(_)));
    }

    #[test]
    fn jobs_with_threads_completes() {
        let file = write_bell();
        let text =
            run_ok(&["jobs", file.as_str(), "--shots", "100", "--seed", "3", "--threads", "4"]);
        assert!(text.contains("status: DONE"), "{text}");
    }

    /// Writes a synthetic one-entry baseline document.
    fn write_baseline(tag: &str, wall: f64) -> tempfile::TempQasm {
        let file = temp_json(tag);
        let baseline = qukit_bench::baseline::Baseline {
            entries: vec![qukit_bench::baseline::BaselineEntry {
                circuit: "bell".to_owned(),
                engine: "qasm_simulator".to_owned(),
                qubits: 2,
                gates: 2,
                shots: 16,
                wall_seconds: wall,
                metrics: Default::default(),
            }],
        };
        std::fs::write(&file.path, baseline.to_json()).expect("write baseline");
        file
    }

    #[test]
    fn stats_compare_passes_within_tolerance_and_fails_beyond() {
        let old = write_baseline("old", 0.010);
        let same = write_baseline("same", 0.011);
        let text = run_ok(&["stats", "--compare", old.as_str(), same.as_str()]);
        assert!(text.contains("no regressions"), "{text}");

        let slow = write_baseline("slow", 0.030);
        let mut out = Vec::new();
        let err = run_cli(
            &args(&["stats", "--compare", old.as_str(), slow.as_str(), "--tolerance", "0.25"]),
            &mut out,
        )
        .expect_err("3x slowdown must fail");
        assert!(matches!(err, CliError::Regression(_)), "{err}");
        let printed = String::from_utf8(out).expect("utf8");
        assert!(printed.contains("REGRESSION"), "{printed}");
        assert!(printed.contains("qasm_simulator"), "{printed}");

        // A generous tolerance lets the same pair through.
        let text =
            run_ok(&["stats", "--compare", old.as_str(), slow.as_str(), "--tolerance", "5.0"]);
        assert!(text.contains("no regressions"), "{text}");
    }

    #[test]
    fn stats_compare_ignores_sub_noise_floor_jitter() {
        // Both measurements sit below the 0.5ms floor: a nominal 50x
        // "slowdown" must not fail the gate.
        let old = write_baseline("noise_old", 0.000_002);
        let new = write_baseline("noise_new", 0.000_1);
        let text = run_ok(&["stats", "--compare", old.as_str(), new.as_str()]);
        assert!(text.contains("no regressions"), "{text}");
    }

    #[test]
    fn stats_compare_rejects_bad_invocations() {
        let old = write_baseline("lonely", 0.01);
        assert!(matches!(run_err(&["stats", "--compare", old.as_str()]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["stats", "--compare", old.as_str(), "/nonexistent.json"]),
            CliError::Io(_)
        ));
        assert!(matches!(
            run_err(&["stats", "--compare", old.as_str(), old.as_str(), "--tolerance", "fast"]),
            CliError::Usage(_)
        ));
    }

    /// A self-cleaning temp directory for journal tests.
    struct TempDir {
        path: std::path::PathBuf,
    }
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "qukit_cli_test_{tag}_{}_{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock")
                    .as_nanos()
            ));
            Self { path }
        }
        fn as_str(&self) -> &str {
            self.path.to_str().expect("utf8 path")
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    #[test]
    fn jobs_journal_persists_and_second_run_deduplicates_by_key() {
        let file = write_bell();
        let dir = TempDir::new("journal");
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "100",
            "--seed",
            "5",
            "--journal-dir",
            dir.as_str(),
            "--key",
            "bell-1",
        ]);
        assert!(text.contains("journal: replayed 0, recovered terminal 0"), "{text}");
        assert!(text.contains("status: DONE"), "{text}");
        assert!(dir.path.join("jobs.journal").exists(), "journal file must be written");

        // A fresh process replays the journal: the same key returns the
        // recovered job instead of re-running it.
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "100",
            "--seed",
            "5",
            "--journal-dir",
            dir.as_str(),
            "--key",
            "bell-1",
        ]);
        assert!(text.contains("recovered terminal 1"), "{text}");
        assert!(text.contains("idempotency key 'bell-1' deduplicated"), "{text}");
        assert!(text.contains("status: DONE"), "{text}");
    }

    #[test]
    fn jobs_tenant_priority_and_admission_shed() {
        let file = write_bell();
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "50",
            "--seed",
            "2",
            "--tenant",
            "alice",
            "--priority",
            "high",
        ]);
        assert!(text.contains("tenant: alice (priority high)"), "{text}");
        assert!(text.contains("status: DONE"), "{text}");

        // A zero pending cap sheds the submission with a typed status.
        let text = run_ok(&["jobs", file.as_str(), "--tenant", "bob", "--max-pending", "0"]);
        assert!(text.contains("status: REJECTED (shed by admission control)"), "{text}");

        assert!(matches!(
            run_err(&["jobs", file.as_str(), "--priority", "urgent"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn jobs_cache_serves_second_run_from_cache() {
        let file = write_bell();
        let text = run_ok(&["jobs", file.as_str(), "--shots", "50", "--seed", "9", "--cache"]);
        assert!(
            text.contains("cache: second run (tenant default-rerun) served from cache: yes"),
            "{text}"
        );
    }

    #[test]
    fn jobs_trace_out_writes_a_valid_chrome_trace() {
        let _guard = obs_lock();
        let file = write_bell();
        let trace_file = temp_json("jobs_trace");
        let text = run_ok(&[
            "jobs",
            file.as_str(),
            "--shots",
            "50",
            "--seed",
            "9",
            "--cache",
            "--tenant",
            "alice",
            "--trace-out",
            trace_file.as_str(),
        ]);
        assert!(text.contains("trace: kept 2 of 2 traces"), "{text}");
        let written = std::fs::read_to_string(trace_file.as_str()).expect("trace file");
        qukit_obs::export::validate_chrome_trace(&written).expect("chrome trace schema-valid");
        // One waterfall executed, one was served from the cache.
        assert!(written.contains("job.attempt"), "{written}");
        assert!(written.contains("job.cache_hit"), "{written}");
    }

    #[test]
    fn trace_sampling_flags_require_trace_out() {
        assert!(matches!(run_err(&["jobs", "x.qasm", "--trace-slow-ms", "5"]), CliError::Usage(_)));
    }

    #[test]
    fn serve_metrics_serves_scrape_routes_for_a_bounded_run() {
        let _guard = obs_lock();
        // Bind an ephemeral port directly (the command path is the same
        // serve() the CLI calls; here we drive it through run_cli with
        // --for-ms so the command returns on its own).
        let text = run_ok(&["serve-metrics", "--addr", "127.0.0.1:0", "--for-ms", "50"]);
        assert!(text.contains("serving /metrics, /healthz, /traces/recent on http://"), "{text}");
        assert!(text.contains("served for 50ms, shut down"), "{text}");
    }

    #[test]
    fn bench_load_reports_service_metrics_and_valid_baseline() {
        let _guard = obs_lock();
        let out_file = temp_json("load");
        let text = run_ok(&[
            "bench",
            "--load",
            "--tenants",
            "2",
            "--jobs",
            "24",
            "--workers",
            "2",
            "--payloads",
            "3",
            "--shots",
            "32",
            "--seed",
            "11",
            "--json",
            "--out",
            out_file.as_str(),
        ]);
        assert!(text.contains("submitted 24"), "{text}");
        assert!(text.contains("latency p50"), "{text}");
        assert!(text.contains("cache hit rate"), "{text}");
        assert!(text.contains("lost 0"), "{text}");
        let written = std::fs::read_to_string(&out_file.path).expect("baseline written");
        let baseline =
            qukit_bench::baseline::Baseline::from_json(&written).expect("baseline validates");
        assert_eq!(baseline.entries.len(), 1);
        assert_eq!(baseline.entries[0].circuit, "load_t2_j24");
        assert!(baseline.entries[0].metrics.contains_key("service_p99_seconds"));

        assert!(matches!(run_err(&["bench", "--load", "--jobs", "0"]), CliError::Usage(_)));
    }

    #[test]
    fn bench_thread_sweep_emits_parallel_entries() {
        let _guard = obs_lock();
        let out_file = temp_json("bench_threads");
        run_ok(&[
            "bench",
            "--json",
            "--out",
            out_file.as_str(),
            "--shots",
            "16",
            "--repeats",
            "1",
            "--threads",
            "2",
        ]);
        let written = std::fs::read_to_string(&out_file.path).expect("baseline written");
        let baseline =
            qukit_bench::baseline::Baseline::from_json(&written).expect("baseline validates");
        for engine in ["parallel_statevector[t=1]", "parallel_statevector[t=2]"] {
            assert!(
                baseline.entries.iter().any(|e| e.circuit == "qft_12" && e.engine == engine),
                "missing qft_12 on {engine}"
            );
        }
        assert!(
            !baseline.entries.iter().any(|e| e.engine == "parallel_statevector[t=4]"),
            "--threads 2 must cap the sweep"
        );
    }
}
