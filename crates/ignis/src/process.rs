//! Single-qubit quantum process tomography.
//!
//! Characterizes an unknown operation `E` as its Pauli transfer matrix
//! (PTM) `R[i][j] = Tr(P_i · E(P_j)) / 2`: four input preparations
//! (`|0⟩, |1⟩, |+⟩, |+i⟩`) are each measured in the three Pauli bases, and
//! the 16 PTM entries reconstructed by linearity — the "verification"
//! capability of the paper's Ignis description. Comparing against the
//! ideal gate's PTM yields the average gate fidelity.

use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::{Result, TerraError};
use qukit_terra::gate::Gate;
use qukit_terra::matrix::Matrix;

/// A single-qubit Pauli transfer matrix (rows/columns ordered I, X, Y, Z).
#[derive(Debug, Clone, PartialEq)]
pub struct Ptm {
    entries: [[f64; 4]; 4],
}

impl Ptm {
    /// Builds the exact PTM of a unitary gate matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 2x2.
    pub fn of_unitary(u: &Matrix) -> Self {
        assert_eq!(u.rows(), 2, "single-qubit PTM requires a 2x2 matrix");
        let paulis = pauli_basis();
        let mut entries = [[0.0; 4]; 4];
        let udg = u.dagger();
        for (j, pj) in paulis.iter().enumerate() {
            let evolved = u.matmul(pj).matmul(&udg);
            for (i, pi) in paulis.iter().enumerate() {
                entries[i][j] = pi.matmul(&evolved).trace().re / 2.0;
            }
        }
        Self { entries }
    }

    /// Builds a PTM from raw entries.
    pub fn from_entries(entries: [[f64; 4]; 4]) -> Self {
        Self { entries }
    }

    /// Entry `R[i][j]` (I=0, X=1, Y=2, Z=3).
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        self.entries[i][j]
    }

    /// Process fidelity with another PTM: `Tr(R₁ᵀ R₂) / 4`.
    pub fn process_fidelity(&self, other: &Ptm) -> f64 {
        let mut acc = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                acc += self.entries[i][j] * other.entries[i][j];
            }
        }
        acc / 4.0
    }

    /// Average gate fidelity: `(2·F_pro + 1) / 3` for a single qubit.
    pub fn average_gate_fidelity(&self, ideal: &Ptm) -> f64 {
        (2.0 * self.process_fidelity(ideal) + 1.0) / 3.0
    }

    /// Maximum absolute entry difference to another PTM.
    pub fn max_deviation(&self, other: &Ptm) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                worst = worst.max((self.entries[i][j] - other.entries[i][j]).abs());
            }
        }
        worst
    }
}

fn pauli_basis() -> [Matrix; 4] {
    use qukit_terra::complex::Complex;
    let o = Complex::ZERO;
    let l = Complex::ONE;
    let i = Complex::I;
    [
        Matrix::identity(2),
        Matrix::from_vec(2, 2, vec![o, l, l, o]),
        Matrix::from_vec(2, 2, vec![o, -i, i, o]),
        Matrix::from_vec(2, 2, vec![l, o, o, -l]),
    ]
}

/// Runs process tomography of `operation` (a 1-qubit circuit fragment)
/// under an optional noise model, reconstructing its PTM from
/// `shots`-sample expectation estimates.
///
/// # Errors
///
/// Propagates circuit and simulation errors.
///
/// # Panics
///
/// Panics if `operation` is not a single-qubit circuit.
pub fn process_tomography(
    operation: &QuantumCircuit,
    shots: usize,
    seed: u64,
    noise: Option<&NoiseModel>,
) -> Result<Ptm> {
    assert_eq!(operation.num_qubits(), 1, "single-qubit process tomography");
    // Input preparations (by index): |0⟩, |1⟩, |+⟩, |+i⟩.
    let preparations: [&[Gate]; 4] = [&[], &[Gate::X], &[Gate::H], &[Gate::H, Gate::S]];
    // m[i][prep] = <P_i> after the channel on that preparation (i: X,Y,Z).
    let mut m = [[0.0f64; 4]; 3];
    for (prep_idx, prep) in preparations.iter().enumerate() {
        for (basis_idx, basis) in ['X', 'Y', 'Z'].into_iter().enumerate() {
            let mut circ = QuantumCircuit::with_size(1, 1);
            for &g in prep.iter() {
                circ.append(g, &[0])?;
            }
            circ.compose(operation)?;
            match basis {
                'X' => {
                    circ.h(0)?;
                }
                'Y' => {
                    circ.sdg(0)?;
                    circ.h(0)?;
                }
                _ => {}
            }
            circ.measure(0, 0)?;
            let mut sim =
                QasmSimulator::new().with_seed(seed ^ ((prep_idx as u64) << 8) ^ basis_idx as u64);
            if let Some(model) = noise {
                sim = sim.with_noise(model.clone());
            }
            let counts =
                sim.run(&circ, shots).map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
            m[basis_idx][prep_idx] = counts.parity_expectation(&[0]);
        }
    }
    // Reconstruct by linearity:
    //   ρ(|0⟩) = (I+Z)/2, ρ(|1⟩) = (I−Z)/2,
    //   ρ(|+⟩) = (I+X)/2, ρ(|+i⟩) = (I+Y)/2.
    // With R[i][j] = Tr(P_i E(P_j))/2:
    //   m[i][0] = R[i][I] + R[i][Z]
    //   m[i][1] = R[i][I] − R[i][Z]
    //   m[i][+] = R[i][I] + R[i][X]
    //   m[i][+i] = R[i][I] + R[i][Y]
    let mut entries = [[0.0; 4]; 4];
    entries[0] = [1.0, 0.0, 0.0, 0.0]; // trace preservation row
    for (row, mi) in m.iter().enumerate() {
        let i = row + 1; // X, Y, Z rows of the PTM
        let r_i_identity = (mi[0] + mi[1]) / 2.0;
        entries[i][0] = r_i_identity;
        entries[i][3] = (mi[0] - mi[1]) / 2.0;
        entries[i][1] = mi[2] - r_i_identity;
        entries[i][2] = mi[3] - r_i_identity;
    }
    Ok(Ptm::from_entries(entries))
}

/// Convenience: the PTM of a standard gate under tomography vs its ideal
/// PTM, returning `(estimated, ideal, average gate fidelity)`.
///
/// # Errors
///
/// Propagates circuit and simulation errors.
pub fn characterize_gate(
    gate: Gate,
    shots: usize,
    seed: u64,
    noise: Option<&NoiseModel>,
) -> Result<(Ptm, Ptm, f64)> {
    let mut circ = QuantumCircuit::new(1);
    circ.append(gate, &[0])?;
    let estimated = process_tomography(&circ, shots, seed, noise)?;
    let ideal = Ptm::of_unitary(&gate.matrix());
    let fidelity = estimated.average_gate_fidelity(&ideal);
    Ok((estimated, ideal, fidelity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_aer::noise::QuantumError;

    #[test]
    fn analytic_ptms_of_standard_gates() {
        // Identity: PTM = I₄.
        let id = Ptm::of_unitary(&Gate::I.matrix());
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((id.entry(i, j) - expected).abs() < 1e-12);
            }
        }
        // X: leaves X, flips Y and Z.
        let x = Ptm::of_unitary(&Gate::X.matrix());
        assert!((x.entry(1, 1) - 1.0).abs() < 1e-12);
        assert!((x.entry(2, 2) + 1.0).abs() < 1e-12);
        assert!((x.entry(3, 3) + 1.0).abs() < 1e-12);
        // H: swaps X and Z, flips Y.
        let h = Ptm::of_unitary(&Gate::H.matrix());
        assert!((h.entry(1, 3) - 1.0).abs() < 1e-12);
        assert!((h.entry(3, 1) - 1.0).abs() < 1e-12);
        assert!((h.entry(2, 2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tomography_recovers_ideal_gates() {
        for gate in [Gate::I, Gate::X, Gate::H, Gate::S, Gate::T, Gate::Ry(0.7)] {
            let (estimated, ideal, fidelity) = characterize_gate(gate, 6000, 11, None).unwrap();
            assert!(
                estimated.max_deviation(&ideal) < 0.06,
                "{gate:?} deviation {}",
                estimated.max_deviation(&ideal)
            );
            assert!(fidelity > 0.99, "{gate:?} fidelity {fidelity}");
        }
    }

    #[test]
    fn tomography_detects_depolarizing_noise() {
        let p = 0.2;
        let mut noise = NoiseModel::new();
        noise.add_all_qubit_error("x", QuantumError::depolarizing(p, 1));
        let (estimated, ideal, fidelity) =
            characterize_gate(Gate::X, 8000, 13, Some(&noise)).unwrap();
        // Depolarizing shrinks the unital block by (1 - p).
        let shrink = estimated.entry(1, 1) / ideal.entry(1, 1);
        assert!((shrink - (1.0 - p)).abs() < 0.05, "shrink {shrink}");
        // F_avg for depolarizing p on a perfect gate: 1 - p/2.
        assert!((fidelity - (1.0 - p / 2.0)).abs() < 0.03, "fidelity {fidelity}");
    }

    #[test]
    fn process_fidelity_properties() {
        let id = Ptm::of_unitary(&Gate::I.matrix());
        assert!((id.process_fidelity(&id) - 1.0).abs() < 1e-12);
        assert!((id.average_gate_fidelity(&id) - 1.0).abs() < 1e-12);
        // Orthogonal-ish: X vs Z transfer matrices overlap only on I and
        // one axis.
        let x = Ptm::of_unitary(&Gate::X.matrix());
        let z = Ptm::of_unitary(&Gate::Z.matrix());
        // Tr(RxᵀRz)/4 = (1 + (+1·−1) + (−1·−1)·... compute: rows X:(1,−1),
        // Y:(−1,−1), Z:(−1,1): 1 + (−1) + 1 + (−1) = 0 → 0.
        assert!((x.process_fidelity(&z)).abs() < 1e-12);
    }

    #[test]
    fn composite_operation_tomography() {
        // A two-gate fragment: S then H, compared against the product.
        let mut circ = QuantumCircuit::new(1);
        circ.s(0).unwrap();
        circ.h(0).unwrap();
        let estimated = process_tomography(&circ, 6000, 17, None).unwrap();
        let ideal = Ptm::of_unitary(&Gate::H.matrix().matmul(&Gate::S.matrix()));
        assert!(estimated.max_deviation(&ideal) < 0.06);
    }
}
