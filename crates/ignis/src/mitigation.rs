//! Measurement-error mitigation.
//!
//! Calibrates the classical readout-assignment matrix by preparing each
//! computational basis state and histogramming the recorded outcomes, then
//! corrects measured distributions by solving `A·p_true = p_measured` —
//! the complete-measurement-calibration technique of Qiskit Ignis.

use qukit_aer::counts::Counts;
use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::matrix::Matrix;

/// A calibrated measurement-mitigation filter over `n` qubits.
#[derive(Debug, Clone)]
pub struct MeasurementFilter {
    num_qubits: usize,
    /// Column-stochastic assignment matrix:
    /// `a[measured][prepared] = P(measured | prepared)`.
    assignment: Matrix,
}

impl MeasurementFilter {
    /// Calibrates the filter against a backend noise model: prepares every
    /// basis state, measures, and tabulates the confusion matrix.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics for more than 6 qubits (2^n calibration circuits).
    pub fn calibrate(
        num_qubits: usize,
        noise: &NoiseModel,
        shots: usize,
        seed: u64,
    ) -> Result<Self, qukit_aer::error::AerError> {
        assert!(num_qubits <= 6, "calibration limited to 6 qubits");
        let dim = 1usize << num_qubits;
        let mut assignment = Matrix::zeros(dim, dim);
        for prepared in 0..dim {
            let mut circ = QuantumCircuit::with_size(num_qubits, num_qubits);
            for q in 0..num_qubits {
                if (prepared >> q) & 1 == 1 {
                    circ.x(q).expect("valid qubit");
                }
            }
            for q in 0..num_qubits {
                circ.measure(q, q).expect("valid");
            }
            let counts = QasmSimulator::new()
                .with_seed(seed ^ prepared as u64)
                .with_noise(noise.clone())
                .run(&circ, shots)?;
            for (outcome, count) in counts.iter() {
                assignment[(outcome as usize, prepared)] +=
                    Complex::from_real(count as f64 / shots as f64);
            }
        }
        Ok(Self { num_qubits, assignment })
    }

    /// Builds a filter from a known assignment matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with power-of-two dimension.
    pub fn from_assignment(assignment: Matrix) -> Self {
        assert!(assignment.is_square(), "assignment matrix must be square");
        assert!(assignment.rows().is_power_of_two(), "dimension must be a power of two");
        let num_qubits = assignment.rows().trailing_zeros() as usize;
        Self { num_qubits, assignment }
    }

    /// The calibrated assignment matrix.
    pub fn assignment_matrix(&self) -> &Matrix {
        &self.assignment
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Applies the inverse assignment to measured counts, clipping negative
    /// quasi-probabilities to zero and renormalizing. Returns corrected
    /// pseudo-counts with the same total.
    ///
    /// # Panics
    ///
    /// Panics if the counts width disagrees with the calibration or the
    /// assignment matrix is singular.
    pub fn apply(&self, counts: &Counts) -> Counts {
        assert_eq!(counts.num_clbits(), self.num_qubits, "width mismatch");
        let dim = 1usize << self.num_qubits;
        let total = counts.total();
        let measured: Vec<Complex> =
            (0..dim).map(|i| Complex::from_real(counts.probability(i as u64))).collect();
        let solved =
            self.assignment.solve(&measured).expect("assignment matrix must be invertible");
        // Clip negatives, renormalize.
        let mut probs: Vec<f64> = solved.iter().map(|z| z.re.max(0.0)).collect();
        let norm: f64 = probs.iter().sum();
        if norm > 0.0 {
            for p in &mut probs {
                *p /= norm;
            }
        }
        let mut corrected = Counts::new(self.num_qubits);
        for (i, &p) in probs.iter().enumerate() {
            let n = (p * total as f64).round() as usize;
            corrected.record_n(i as u64, n);
        }
        corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_aer::noise::ReadoutError;

    fn readout_noise(p: f64) -> NoiseModel {
        let mut noise = NoiseModel::new();
        noise.set_readout_error(ReadoutError::symmetric(p));
        noise
    }

    #[test]
    fn calibration_matrix_shape_and_stochasticity() {
        let filter = MeasurementFilter::calibrate(2, &readout_noise(0.1), 2000, 1).unwrap();
        let a = filter.assignment_matrix();
        assert_eq!(a.rows(), 4);
        for col in 0..4 {
            let sum: f64 = (0..4).map(|row| a.get(row, col).unwrap().re).sum();
            assert!((sum - 1.0).abs() < 1e-9, "column {col} sums to {sum}");
        }
        // Diagonal dominated: P(correct) ≈ 0.81 for two symmetric p=0.1 bits.
        for i in 0..4 {
            let d = a.get(i, i).unwrap().re;
            assert!((d - 0.81).abs() < 0.04, "diagonal {i} = {d}");
        }
    }

    #[test]
    fn mitigation_restores_deterministic_outcome() {
        let noise = readout_noise(0.15);
        let filter = MeasurementFilter::calibrate(1, &noise, 8000, 2).unwrap();
        // Measure |1⟩ under the same noise.
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.x(0).unwrap();
        circ.measure(0, 0).unwrap();
        let raw = QasmSimulator::new().with_seed(3).with_noise(noise).run(&circ, 8000).unwrap();
        let raw_p1 = raw.probability(1);
        assert!((raw_p1 - 0.85).abs() < 0.03, "raw {raw_p1}");
        let corrected = filter.apply(&raw);
        let fixed_p1 = corrected.probability(1);
        assert!(fixed_p1 > 0.97, "mitigated {fixed_p1}");
    }

    #[test]
    fn mitigation_improves_ghz_fidelity() {
        let noise = readout_noise(0.08);
        let filter = MeasurementFilter::calibrate(3, &noise, 6000, 4).unwrap();
        let mut ghz = QuantumCircuit::with_size(3, 3);
        ghz.h(0).unwrap();
        ghz.cx(0, 1).unwrap();
        ghz.cx(1, 2).unwrap();
        for q in 0..3 {
            ghz.measure(q, q).unwrap();
        }
        let noisy = QasmSimulator::new().with_seed(5).with_noise(noise).run(&ghz, 6000).unwrap();
        let ideal = QasmSimulator::new().with_seed(5).run(&ghz, 6000).unwrap();
        let corrected = filter.apply(&noisy);
        let raw_fid = noisy.hellinger_fidelity(&ideal);
        let fixed_fid = corrected.hellinger_fidelity(&ideal);
        assert!(fixed_fid > raw_fid, "mitigation must improve fidelity: {raw_fid} -> {fixed_fid}");
        assert!(fixed_fid > 0.98, "mitigated fidelity {fixed_fid}");
    }

    #[test]
    fn identity_assignment_is_a_noop() {
        let filter = MeasurementFilter::from_assignment(Matrix::identity(4));
        assert_eq!(filter.num_qubits(), 2);
        let mut counts = Counts::new(2);
        counts.record_n(0b01, 30);
        counts.record_n(0b10, 70);
        let corrected = filter.apply(&counts);
        assert_eq!(corrected.get_value(0b01), 30);
        assert_eq!(corrected.get_value(0b10), 70);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let filter = MeasurementFilter::from_assignment(Matrix::identity(2));
        let counts = Counts::new(2);
        let _ = filter.apply(&counts);
    }
}
