//! Quantum state tomography.
//!
//! Reconstructs the density matrix of an unknown state from measurements
//! in all `3^n` Pauli bases (linear inversion):
//! `ρ = (1/2^n) Σ_P ⟨P⟩ P` over all `4^n` Pauli strings, with the
//! expectation of each string estimated from the basis-rotated counts.

use qukit_aer::counts::Counts;
use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::error::Result;
use qukit_terra::matrix::Matrix;

/// A measurement basis per qubit (`X`, `Y` or `Z`).
pub type BasisSetting = Vec<char>;

/// Enumerates all `3^n` measurement settings.
pub fn all_settings(n: usize) -> Vec<BasisSetting> {
    let mut settings = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::with_capacity(settings.len() * 3);
        for s in &settings {
            for b in ['X', 'Y', 'Z'] {
                let mut extended = s.clone();
                extended.push(b);
                next.push(extended);
            }
        }
        settings = next;
    }
    settings
}

/// Appends the basis-change rotations and measurements for one setting
/// (`setting[q]` is the basis for qubit `q`).
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn append_basis_measurement(circ: &mut QuantumCircuit, setting: &[char]) -> Result<()> {
    for (q, &basis) in setting.iter().enumerate() {
        match basis {
            'X' => {
                circ.h(q)?;
            }
            'Y' => {
                circ.sdg(q)?;
                circ.h(q)?;
            }
            'Z' => {}
            other => panic!("invalid basis '{other}'"),
        }
    }
    for q in 0..setting.len() {
        circ.measure(q, q)?;
    }
    Ok(())
}

/// Runs state tomography of the state prepared by `preparation` and
/// reconstructs its density matrix by linear inversion.
///
/// # Errors
///
/// Propagates circuit and simulation errors.
///
/// # Panics
///
/// Panics for more than 4 qubits (3^n settings explode).
pub fn state_tomography(
    preparation: &QuantumCircuit,
    shots: usize,
    seed: u64,
    noise: Option<&NoiseModel>,
) -> Result<Matrix> {
    let n = preparation.num_qubits();
    assert!(n <= 4, "tomography limited to 4 qubits");
    let settings = all_settings(n);
    let mut counts_per_setting: Vec<(BasisSetting, Counts)> = Vec::with_capacity(settings.len());
    for (i, setting) in settings.into_iter().enumerate() {
        let mut circ = preparation.clone();
        if circ.num_clbits() < n {
            circ.add_creg("tomo", n - circ.num_clbits())?;
        }
        append_basis_measurement(&mut circ, &setting)?;
        let mut sim = QasmSimulator::new().with_seed(seed ^ (i as u64) << 20);
        if let Some(model) = noise {
            sim = sim.with_noise(model.clone());
        }
        let counts = sim
            .run(&circ, shots)
            .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
        counts_per_setting.push((setting, counts));
    }
    Ok(reconstruct(n, &counts_per_setting))
}

/// Linear-inversion reconstruction from per-setting counts.
fn reconstruct(n: usize, data: &[(BasisSetting, Counts)]) -> Matrix {
    let dim = 1usize << n;
    // ρ = (1/2^n) Σ over all 4^n Pauli strings ⟨P⟩ P.
    // ⟨P⟩ for a string with support S is estimated from any setting whose
    // bases agree with P on S; we average over all compatible settings.
    let mut rho = Matrix::zeros(dim, dim);
    for pauli_idx in 0..(1usize << (2 * n)) {
        // 2 bits per qubit: 0=I, 1=X, 2=Y, 3=Z.
        let label: Vec<char> = (0..n)
            .map(|q| match (pauli_idx >> (2 * q)) & 3 {
                0 => 'I',
                1 => 'X',
                2 => 'Y',
                _ => 'Z',
            })
            .collect();
        let mut estimates = Vec::new();
        for (setting, counts) in data {
            let compatible = label.iter().zip(setting).all(|(&p, &s)| p == 'I' || p == s);
            if compatible {
                let support: Vec<usize> =
                    label.iter().enumerate().filter(|(_, &p)| p != 'I').map(|(q, _)| q).collect();
                estimates.push(counts.parity_expectation(&support));
            }
        }
        let expectation = if estimates.is_empty() {
            0.0
        } else {
            estimates.iter().sum::<f64>() / estimates.len() as f64
        };
        if expectation.abs() < 1e-12 {
            continue;
        }
        let pauli = pauli_string_matrix(&label);
        rho = rho.add(&pauli.scale(Complex::from_real(expectation / dim as f64)));
    }
    rho
}

fn pauli_string_matrix(label: &[char]) -> Matrix {
    let mut acc = Matrix::identity(1);
    for &c in label {
        let p = single_pauli(c);
        acc = p.kron(&acc);
    }
    acc
}

fn single_pauli(c: char) -> Matrix {
    let o = Complex::ZERO;
    let l = Complex::ONE;
    let i = Complex::I;
    match c {
        'I' => Matrix::identity(2),
        'X' => Matrix::from_vec(2, 2, vec![o, l, l, o]),
        'Y' => Matrix::from_vec(2, 2, vec![o, -i, i, o]),
        'Z' => Matrix::from_vec(2, 2, vec![l, o, o, -l]),
        other => panic!("invalid Pauli '{other}'"),
    }
}

/// Fidelity `⟨ψ|ρ|ψ⟩` of a reconstructed density matrix with a pure target
/// state.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn fidelity_with_pure(rho: &Matrix, target: &[Complex]) -> f64 {
    assert_eq!(rho.rows(), target.len(), "dimension mismatch");
    let rho_psi = rho.matvec(target);
    qukit_terra::matrix::inner_product(target, &rho_psi).re
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_aer::noise::ReadoutError;

    #[test]
    fn settings_enumeration() {
        assert_eq!(all_settings(1).len(), 3);
        assert_eq!(all_settings(2).len(), 9);
        assert_eq!(all_settings(3).len(), 27);
        assert!(all_settings(2).contains(&vec!['X', 'Y']));
    }

    #[test]
    fn tomography_of_zero_state() {
        let circ = QuantumCircuit::new(1);
        let rho = state_tomography(&circ, 3000, 1, None).unwrap();
        assert!((rho.get(0, 0).unwrap().re - 1.0).abs() < 0.05);
        assert!(rho.get(1, 1).unwrap().re.abs() < 0.05);
        assert!((rho.trace().re - 1.0).abs() < 0.05);
    }

    #[test]
    fn tomography_of_plus_state() {
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        let rho = state_tomography(&circ, 3000, 2, None).unwrap();
        // |+⟩⟨+| has all entries 1/2.
        for r in 0..2 {
            for c in 0..2 {
                assert!(
                    (rho.get(r, c).unwrap().re - 0.5).abs() < 0.06,
                    "entry ({r},{c}) = {}",
                    rho.get(r, c).unwrap()
                );
            }
        }
    }

    #[test]
    fn tomography_of_bell_state_fidelity() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let rho = state_tomography(&circ, 2000, 3, None).unwrap();
        let target = qukit_terra::reference::statevector(&circ).unwrap();
        let f = fidelity_with_pure(&rho, &target);
        assert!(f > 0.95, "Bell fidelity {f}");
        assert!(rho.is_hermitian());
    }

    #[test]
    fn tomography_detects_readout_noise() {
        let mut circ = QuantumCircuit::new(1);
        circ.x(0).unwrap();
        let mut noise = NoiseModel::new();
        noise.set_readout_error(ReadoutError::symmetric(0.2));
        let rho = state_tomography(&circ, 4000, 4, Some(&noise)).unwrap();
        // Z expectation shrinks from -1 to -(1-2·0.2) = -0.6, so
        // ρ11 ≈ 0.8.
        let p1 = rho.get(1, 1).unwrap().re;
        assert!((p1 - 0.8).abs() < 0.05, "p1 {p1}");
    }

    #[test]
    fn tomography_of_y_eigenstate() {
        // S·H|0⟩ = |+i⟩: ρ = (I + Y)/2.
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.s(0).unwrap();
        let rho = state_tomography(&circ, 4000, 5, None).unwrap();
        let off = rho.get(1, 0).unwrap();
        assert!((off.im - 0.5).abs() < 0.06, "imag part {off}");
    }
}
