//! Quantum error-correcting codes.
//!
//! The paper's Ignis description promises "a portfolio of error correcting
//! codes and algorithms"; this module provides the canonical entry point:
//! the distance-3 bit-flip repetition code with ancilla-based syndrome
//! extraction and classically-conditioned correction, plus a logical-vs-
//! physical error-rate experiment demonstrating quadratic error
//! suppression.

use qukit_aer::noise::{NoiseModel, QuantumError};
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::{Result, TerraError};
use qukit_terra::gate::Gate;

/// The distance-3 bit-flip repetition code.
///
/// Layout: data qubits 0-2, syndrome ancillas 3-4. Classical registers:
/// `syn[2]` (syndrome) and `out[3]` (final data readout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepetitionCode;

impl RepetitionCode {
    /// Creates the code descriptor.
    pub fn new() -> Self {
        Self
    }

    /// Total qubits (3 data + 2 ancilla).
    pub fn num_qubits(&self) -> usize {
        5
    }

    /// Builds the full memory-experiment circuit:
    ///
    /// 1. encode `|b⟩ → |bbb⟩`,
    /// 2. one noisy idle step on each data qubit (`id` gates — attach a
    ///    bit-flip channel to `id` in the noise model),
    /// 3. syndrome extraction onto the ancillas,
    /// 4. conditioned correction,
    /// 5. data readout.
    ///
    /// # Errors
    ///
    /// Propagates operand-validation errors.
    pub fn memory_circuit(&self, logical_one: bool, correct: bool) -> Result<QuantumCircuit> {
        let mut circ = QuantumCircuit::empty();
        circ.set_name("repetition_memory");
        circ.add_qreg("q", 5)?;
        circ.add_creg("syn", 2)?;
        circ.add_creg("out", 3)?;
        // Encode.
        if logical_one {
            circ.x(0)?;
        }
        circ.cx(0, 1)?;
        circ.cx(0, 2)?;
        // Noisy idle (noise models bind errors to the id gate).
        for q in 0..3 {
            circ.id(q)?;
        }
        // Syndrome extraction: s0 = q0 ⊕ q1, s1 = q1 ⊕ q2.
        circ.cx(0, 3)?;
        circ.cx(1, 3)?;
        circ.cx(1, 4)?;
        circ.cx(2, 4)?;
        circ.measure(3, 0)?; // syn[0]
        circ.measure(4, 1)?; // syn[1]
        if correct {
            // syn = 01 → q0 flipped; 11 → q1; 10 → q2.
            circ.append_conditional(Gate::X, &[0], "syn", 0b01)?;
            circ.append_conditional(Gate::X, &[1], "syn", 0b11)?;
            circ.append_conditional(Gate::X, &[2], "syn", 0b10)?;
        }
        for q in 0..3 {
            circ.measure(q, 2 + q)?;
        }
        Ok(circ)
    }

    /// Runs the memory experiment and returns the logical error rate: the
    /// fraction of shots whose majority-voted data readout differs from
    /// the encoded logical value.
    ///
    /// # Errors
    ///
    /// Propagates circuit and simulation errors.
    pub fn logical_error_rate(
        &self,
        physical_error: f64,
        correct: bool,
        shots: usize,
        seed: u64,
    ) -> Result<f64> {
        let circ = self.memory_circuit(false, correct)?;
        let mut noise = NoiseModel::new();
        noise.add_all_qubit_error("id", QuantumError::bit_flip(physical_error));
        let counts = QasmSimulator::new()
            .with_seed(seed)
            .with_noise(noise)
            .run(&circ, shots)
            .map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
        let mut failures = 0usize;
        for (outcome, count) in counts.iter() {
            // Data bits live in clbits 2..5.
            let data = (outcome >> 2) & 0b111;
            let ones = data.count_ones();
            if ones >= 2 {
                failures += count;
            }
        }
        Ok(failures as f64 / shots as f64)
    }

    /// The analytic logical error rate of the distance-3 code under
    /// independent bit flips with perfect syndrome extraction:
    /// `3p²(1−p) + p³`.
    pub fn expected_logical_error(&self, p: f64) -> f64 {
        3.0 * p * p * (1.0 - p) + p * p * p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_memory_is_error_free() {
        let code = RepetitionCode::new();
        for logical in [false, true] {
            let circ = code.memory_circuit(logical, true).unwrap();
            let counts = QasmSimulator::new().with_seed(1).run(&circ, 200).unwrap();
            for (outcome, count) in counts.iter() {
                if count > 0 {
                    let data = (outcome >> 2) & 0b111;
                    let expected = if logical { 0b111 } else { 0 };
                    assert_eq!(data, expected, "outcome {outcome:05b}");
                    assert_eq!(outcome & 0b11, 0, "syndrome must be trivial");
                }
            }
        }
    }

    #[test]
    fn single_injected_error_is_corrected() {
        // Inject a deterministic X on each data qubit in turn via a local
        // 100% bit-flip on id.
        let code = RepetitionCode::new();
        for victim in 0..3usize {
            let circ = code.memory_circuit(false, true).unwrap();
            let mut noise = NoiseModel::new();
            noise.add_local_error("id", vec![victim], QuantumError::bit_flip(1.0));
            let counts =
                QasmSimulator::new().with_seed(2).with_noise(noise).run(&circ, 100).unwrap();
            for (outcome, count) in counts.iter() {
                if count > 0 {
                    let data = (outcome >> 2) & 0b111;
                    assert_eq!(data, 0, "error on q{victim} must be corrected ({outcome:05b})");
                    assert_ne!(outcome & 0b11, 0, "syndrome must fire for q{victim}");
                }
            }
        }
    }

    #[test]
    fn correction_suppresses_errors_quadratically() {
        let code = RepetitionCode::new();
        let p = 0.08;
        let shots = 8000;
        let corrected = code.logical_error_rate(p, true, shots, 3).unwrap();
        let expected = code.expected_logical_error(p);
        assert!(
            (corrected - expected).abs() < 0.01,
            "corrected {corrected} vs analytic {expected}"
        );
        assert!(corrected < p / 2.0, "logical rate must beat the physical rate");
    }

    #[test]
    fn conditional_correction_fixes_the_state_not_just_the_readout() {
        // Majority-voted readout masks single errors even without the
        // conditioned X corrections; reading a *single* data bit exposes
        // the difference.
        let code = RepetitionCode::new();
        let p = 0.2;
        let shots = 6000;
        let single_bit_rate = |correct: bool, seed: u64| -> f64 {
            let circ = code.memory_circuit(false, correct).unwrap();
            let mut noise = NoiseModel::new();
            noise.add_all_qubit_error("id", QuantumError::bit_flip(p));
            let counts =
                QasmSimulator::new().with_seed(seed).with_noise(noise).run(&circ, shots).unwrap();
            let failures: usize = counts
                .iter()
                .filter(|(outcome, _)| (outcome >> 2) & 1 == 1) // data bit 0
                .map(|(_, c)| c)
                .sum();
            failures as f64 / shots as f64
        };
        let with_correction = single_bit_rate(true, 9);
        let without_correction = single_bit_rate(false, 9);
        assert!((without_correction - p).abs() < 0.02, "raw {without_correction}");
        assert!(
            with_correction < without_correction - 0.05,
            "conditioned correction must repair the state: {with_correction} vs {without_correction}"
        );
        assert!(
            (with_correction - code.expected_logical_error(p)).abs() < 0.02,
            "corrected single-bit rate {with_correction}"
        );
    }

    #[test]
    fn above_threshold_correction_stops_helping() {
        // At p = 0.5 the code cannot help (analytic p_L = 0.5).
        let code = RepetitionCode::new();
        let rate = code.logical_error_rate(0.5, true, 6000, 4).unwrap();
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn analytic_formula_sanity() {
        let code = RepetitionCode::new();
        assert_eq!(code.expected_logical_error(0.0), 0.0);
        assert!((code.expected_logical_error(0.5) - 0.5).abs() < 1e-12);
        assert!((code.expected_logical_error(1.0) - 1.0).abs() < 1e-12);
        assert!(code.expected_logical_error(0.01) < 0.01);
    }
}
