//! Randomized benchmarking.
//!
//! The paper's Ignis description names "rigorously categorizing and
//! analyzing noise processes in the hardware through randomized
//! benchmarking". This module implements standard single-qubit RB: random
//! Clifford sequences of increasing length ending in the recovery element,
//! whose survival probability decays as `A·α^m + B`; the decay `α` yields
//! the average error per Clifford `r = (1 - α)/2`.

use crate::clifford::CliffordGroup;
use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One RB experiment configuration.
#[derive(Debug, Clone)]
pub struct RbConfig {
    /// Sequence lengths (number of random Cliffords before recovery).
    pub lengths: Vec<usize>,
    /// Random sequences drawn per length.
    pub samples_per_length: usize,
    /// Shots per circuit.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RbConfig {
    fn default() -> Self {
        Self { lengths: vec![1, 2, 4, 8, 16, 32, 64], samples_per_length: 8, shots: 256, seed: 7 }
    }
}

/// The measured decay curve and fitted parameters.
#[derive(Debug, Clone)]
pub struct RbResult {
    /// `(length, mean survival probability)` points.
    pub curve: Vec<(usize, f64)>,
    /// Fitted depolarizing decay `α`.
    pub alpha: f64,
    /// Average error per Clifford `r = (1 - α)/2`.
    pub error_per_clifford: f64,
}

/// Builds one RB circuit: `m` random Cliffords followed by the recovery
/// element, then measurement.
///
/// Returns the circuit; on an ideal backend it always measures `0`.
pub fn rb_circuit(group: &CliffordGroup, length: usize, rng: &mut StdRng) -> QuantumCircuit {
    let mut circ = QuantumCircuit::with_size(1, 1);
    circ.set_name(format!("rb_{length}"));
    let mut composed = 0usize; // identity
    for _ in 0..length {
        let idx = group.random(rng);
        for &g in &group.element(idx).gates {
            circ.append(g, &[0]).expect("single qubit");
        }
        composed = group.compose(composed, idx);
    }
    let recovery = group.inverse(composed);
    for &g in &group.element(recovery).gates {
        circ.append(g, &[0]).expect("single qubit");
    }
    circ.measure(0, 0).expect("valid");
    circ
}

/// Runs the full RB experiment under a noise model.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_rb(
    config: &RbConfig,
    noise: &NoiseModel,
) -> Result<RbResult, qukit_aer::error::AerError> {
    let group = CliffordGroup::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut curve = Vec::with_capacity(config.lengths.len());
    for (li, &length) in config.lengths.iter().enumerate() {
        let mut survival_sum = 0.0;
        for sample in 0..config.samples_per_length {
            let circ = rb_circuit(&group, length, &mut rng);
            let sim = QasmSimulator::new()
                .with_seed(config.seed ^ ((li as u64) << 32) ^ sample as u64)
                .with_noise(noise.clone());
            let counts = sim.run(&circ, config.shots)?;
            survival_sum += counts.probability(0);
        }
        curve.push((length, survival_sum / config.samples_per_length as f64));
    }
    let alpha = fit_decay(&curve);
    Ok(RbResult { curve, alpha, error_per_clifford: (1.0 - alpha) / 2.0 })
}

/// Fits `P(m) = A·α^m + 1/2` by weighted linear regression on
/// `ln(P - 1/2)` (the asymptote `B = 1/2` is exact for single-qubit
/// depolarizing noise). Shot noise on `P` maps to a log-space variance
/// of roughly `Var(P) / (P - 1/2)^2`, so each point is weighted by
/// `(P - 1/2)^2`: points that have decayed onto the asymptote carry
/// almost no information about `α` and must not dominate the slope.
/// Points at or below the asymptote are discarded.
pub fn fit_decay(curve: &[(usize, f64)]) -> f64 {
    let points: Vec<(f64, f64, f64)> = curve
        .iter()
        .filter(|&&(_, p)| p > 0.5 + 1e-6)
        .map(|&(m, p)| (m as f64, (p - 0.5).ln(), (p - 0.5) * (p - 0.5)))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    // Weighted least squares slope of ln(P - 1/2) = ln A + m ln α.
    let sum_w: f64 = points.iter().map(|p| p.2).sum();
    let sum_x: f64 = points.iter().map(|p| p.2 * p.0).sum();
    let sum_y: f64 = points.iter().map(|p| p.2 * p.1).sum();
    let sum_xx: f64 = points.iter().map(|p| p.2 * p.0 * p.0).sum();
    let sum_xy: f64 = points.iter().map(|p| p.2 * p.0 * p.1).sum();
    let denom = sum_w * sum_xx - sum_x * sum_x;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    let slope = (sum_w * sum_xy - sum_x * sum_y) / denom;
    slope.exp().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_aer::noise::QuantumError;

    #[test]
    fn ideal_rb_always_survives() {
        let group = CliffordGroup::new();
        let mut rng = StdRng::seed_from_u64(3);
        for length in [1usize, 5, 20] {
            let circ = rb_circuit(&group, length, &mut rng);
            let counts = QasmSimulator::new().with_seed(1).run(&circ, 100).unwrap();
            assert_eq!(counts.probability(0), 1.0, "length {length}");
        }
    }

    #[test]
    fn fit_recovers_synthetic_decay() {
        let alpha = 0.97f64;
        let curve: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&m| (m, 0.5 * alpha.powi(m as i32) + 0.5))
            .collect();
        let fitted = fit_decay(&curve);
        assert!((fitted - alpha).abs() < 1e-9, "fit {fitted}");
    }

    #[test]
    fn fit_handles_degenerate_input() {
        assert_eq!(fit_decay(&[]), 0.0);
        assert_eq!(fit_decay(&[(1, 0.4)]), 0.0);
    }

    #[test]
    fn rb_recovers_injected_depolarizing_rate() {
        // Attach depolarizing error p to every gate; average number of
        // {H,S} gates per Clifford in our decompositions varies, so we
        // attach the error per *gate* and check the fitted α is in a
        // plausible band rather than exact.
        let p = 0.02;
        let mut noise = NoiseModel::new();
        for name in ["h", "s", "sdg", "x", "y", "z"] {
            noise.add_all_qubit_error(name, QuantumError::depolarizing(p, 1));
        }
        let config = RbConfig {
            lengths: vec![1, 2, 4, 8, 16, 32],
            samples_per_length: 12,
            shots: 300,
            seed: 9,
        };
        let result = run_rb(&config, &noise).unwrap();
        // Survival must decay monotonically-ish.
        let first = result.curve.first().unwrap().1;
        let last = result.curve.last().unwrap().1;
        assert!(first > last, "decay expected: {first} -> {last}");
        // α in a physically sensible band for ~2.7 gates/Clifford at p=0.02.
        assert!(result.alpha > 0.85 && result.alpha < 0.999, "alpha {} out of band", result.alpha);
        assert!(result.error_per_clifford > 0.0005);
        assert!(result.error_per_clifford < 0.08);
    }

    #[test]
    fn stronger_noise_gives_faster_decay() {
        let make = |p: f64| {
            let mut noise = NoiseModel::new();
            for name in ["h", "s"] {
                noise.add_all_qubit_error(name, QuantumError::depolarizing(p, 1));
            }
            let config = RbConfig {
                lengths: vec![1, 4, 16, 32],
                samples_per_length: 10,
                shots: 250,
                seed: 21,
            };
            run_rb(&config, &noise).unwrap().alpha
        };
        let weak = make(0.005);
        let strong = make(0.05);
        assert!(weak > strong, "weak α {weak} must exceed strong α {strong}");
    }
}

/// Result of an interleaved RB experiment.
#[derive(Debug, Clone)]
pub struct InterleavedRbResult {
    /// The reference (standard) RB result.
    pub standard: RbResult,
    /// Decay of the interleaved sequences.
    pub interleaved_alpha: f64,
    /// Estimated error of the interleaved gate:
    /// `r = (1 - α_int/α_std) / 2`.
    pub gate_error: f64,
}

/// Builds one interleaved-RB circuit: each random Clifford is followed by
/// the Clifford under test, then the recovery element.
pub fn interleaved_rb_circuit(
    group: &CliffordGroup,
    interleaved: usize,
    length: usize,
    rng: &mut StdRng,
) -> QuantumCircuit {
    let mut circ = QuantumCircuit::with_size(1, 1);
    circ.set_name(format!("irb_{length}"));
    let mut composed = 0usize;
    for _ in 0..length {
        let idx = group.random(rng);
        for &g in &group.element(idx).gates {
            circ.append(g, &[0]).expect("single qubit");
        }
        composed = group.compose(composed, idx);
        for &g in &group.element(interleaved).gates {
            circ.append(g, &[0]).expect("single qubit");
        }
        composed = group.compose(composed, interleaved);
    }
    let recovery = group.inverse(composed);
    for &g in &group.element(recovery).gates {
        circ.append(g, &[0]).expect("single qubit");
    }
    circ.measure(0, 0).expect("valid");
    circ
}

/// Runs interleaved randomized benchmarking for the Clifford whose unitary
/// matches `gate` (e.g. [`qukit_terra::gate::Gate::H`]), estimating that
/// specific gate's error rate — the standard technique for isolating one
/// gate's contribution from the average Clifford error.
///
/// # Errors
///
/// Returns a transpile-shaped error when `gate` is not a Clifford, or
/// simulator errors from execution.
pub fn run_interleaved_rb(
    config: &RbConfig,
    noise: &NoiseModel,
    gate: qukit_terra::gate::Gate,
) -> Result<InterleavedRbResult, qukit_aer::error::AerError> {
    let group = CliffordGroup::new();
    let interleaved = group.find(&gate.matrix()).ok_or_else(|| {
        qukit_aer::error::AerError::Terra(qukit_terra::error::TerraError::Transpile {
            msg: format!("'{}' is not a single-qubit Clifford", gate.name()),
        })
    })?;
    let standard = run_rb(config, noise)?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x1EAF));
    let mut curve = Vec::with_capacity(config.lengths.len());
    for (li, &length) in config.lengths.iter().enumerate() {
        let mut survival_sum = 0.0;
        for sample in 0..config.samples_per_length {
            let circ = interleaved_rb_circuit(&group, interleaved, length, &mut rng);
            let sim = QasmSimulator::new()
                .with_seed(config.seed ^ 0xABCD ^ ((li as u64) << 32) ^ sample as u64)
                .with_noise(noise.clone());
            let counts = sim.run(&circ, config.shots)?;
            survival_sum += counts.probability(0);
        }
        curve.push((length, survival_sum / config.samples_per_length as f64));
    }
    let interleaved_alpha = fit_decay(&curve);
    let ratio = if standard.alpha > 0.0 { interleaved_alpha / standard.alpha } else { 0.0 };
    Ok(InterleavedRbResult {
        standard,
        interleaved_alpha,
        gate_error: (1.0 - ratio.clamp(0.0, 1.0)) / 2.0,
    })
}

#[cfg(test)]
mod interleaved_tests {
    use super::*;
    use qukit_aer::noise::QuantumError;
    use qukit_terra::gate::Gate;

    #[test]
    fn interleaved_circuit_is_identity_when_ideal() {
        let group = CliffordGroup::new();
        let mut rng = StdRng::seed_from_u64(1);
        for interleaved in [0usize, 3, 11] {
            let circ = interleaved_rb_circuit(&group, interleaved, 6, &mut rng);
            let counts = QasmSimulator::new().with_seed(1).run(&circ, 50).unwrap();
            assert_eq!(counts.probability(0), 1.0);
        }
    }

    #[test]
    fn non_clifford_gate_is_rejected() {
        let config = RbConfig::default();
        let err = run_interleaved_rb(&config, &NoiseModel::new(), Gate::T).unwrap_err();
        assert!(err.to_string().contains("not a single-qubit Clifford"));
    }

    #[test]
    fn interleaved_rb_isolates_a_noisy_hadamard() {
        // Noise only on H: the interleaved-H decay must be faster than the
        // reference decay, giving a positive H error estimate.
        let mut noise = NoiseModel::new();
        noise.add_all_qubit_error("h", QuantumError::depolarizing(0.04, 1));
        let config = RbConfig {
            lengths: vec![1, 2, 4, 8, 16],
            samples_per_length: 10,
            shots: 300,
            seed: 31,
        };
        let result = run_interleaved_rb(&config, &noise, Gate::H).unwrap();
        assert!(
            result.interleaved_alpha < result.standard.alpha,
            "interleaving a noisy gate must speed the decay: {} vs {}",
            result.interleaved_alpha,
            result.standard.alpha
        );
        assert!(result.gate_error > 0.0);
        assert!(result.gate_error < 0.15, "error estimate {}", result.gate_error);
    }
}
