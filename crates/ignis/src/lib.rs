//! # qukit-ignis
//!
//! Hardware characterization, verification and mitigation for the
//! **qukit** toolchain — the analogue of Qiskit's Ignis element in the
//! DATE 2019 paper: "methods related to quantum hardware characterization,
//! verification, mitigation, and correction … rigorously categorizing and
//! analyzing noise processes in the hardware through randomized
//! benchmarking, tomography, and multi-faceted comparisons with
//! simulation".
//!
//! * [`clifford`] — the 24-element single-qubit Clifford group;
//! * [`rb`] — randomized benchmarking with exponential-decay fitting;
//! * [`tomography`] — Pauli-basis state tomography by linear inversion;
//! * [`mitigation`] — measurement-calibration readout-error mitigation.
//!
//! # Examples
//!
//! ```
//! use qukit_ignis::clifford::CliffordGroup;
//!
//! let group = CliffordGroup::new();
//! assert_eq!(group.len(), 24);
//! ```

pub mod clifford;
pub mod codes;
pub mod mitigation;
pub mod process;
pub mod rb;
pub mod tomography;

pub use clifford::CliffordGroup;
pub use codes::RepetitionCode;
pub use mitigation::MeasurementFilter;
pub use process::{characterize_gate, process_tomography, Ptm};
pub use rb::{run_interleaved_rb, run_rb, InterleavedRbResult, RbConfig, RbResult};
