//! The QMDD package: nodes, unique tables, compute tables.
//!
//! This implements the decision-diagram representation the paper showcases
//! in Section V-A (Fig. 3): quantum states and operators are stored as
//! directed acyclic graphs with complex edge weights. Recursively splitting
//! a `2^n × 2^n` matrix into four `2^(n-1) × 2^(n-1)` submatrices (or a
//! state vector into two halves) and *sharing structurally equivalent
//! submatrices that differ only by a complex factor* yields representations
//! that are often exponentially more compact than the explicit arrays —
//! the basis of the DD simulator of Zulehner & Wille (TCAD'18) that was
//! integrated into Qiskit as the JKU provider.
//!
//! Canonicity is maintained by (a) weight normalization on node creation
//! (the maximum-magnitude child weight is factored out, following the
//! accuracy-oriented normalization of [38]) and (b) hash-consing through a
//! unique table with a canonicalizing complex-number table.
//!
//! # Implementation notes (the performance rebuild)
//!
//! The table layer follows "Tools for Quantum Computing Based on Decision
//! Diagrams" (Wille, Hillmich, Burgholzer) and the MQT DDSIM package:
//!
//! * unique tables and the weight table are open-addressed with an
//!   FxHash-style hash over packed node words ([`crate::tables`]);
//! * the add/mv/mm compute tables are fixed-size, direct-mapped and
//!   *lossy* — collisions evict, so cache cost is O(1) and memory is
//!   bounded regardless of circuit depth;
//! * nodes live in free-list arenas with external reference counts; a
//!   threshold-triggered mark-and-sweep GC ([`DdPackage::maybe_collect`])
//!   reclaims everything unreachable from rc-protected roots, so long
//!   multi-gate runs no longer grow without bound.
//!
//! GC only ever runs inside [`DdPackage::collect_garbage`] /
//! [`DdPackage::maybe_collect`] — never implicitly during an operation —
//! so edges held across a collection are valid iff their root was
//! protected with [`DdPackage::inc_ref`] (vectors) or
//! [`DdPackage::inc_ref_matrix`] (matrices).

use crate::tables::{fx_word, pack_edge, ComputeTable, UniqueTable, WeightTable};
use qukit_terra::complex::Complex;
use std::collections::HashMap;

/// Index of a node in the package's node arena.
pub type NodeId = u32;
/// Index of a canonical complex weight in the package's weight table.
pub type WeightId = u32;

/// The terminal node (level 0).
pub const TERMINAL: NodeId = 0;
/// The canonical weight 0.
pub const W_ZERO: WeightId = 0;
/// The canonical weight 1.
pub const W_ONE: WeightId = 1;

/// A weighted edge: the unit of sharing in the DD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Target node.
    pub node: NodeId,
    /// Canonical complex weight multiplying everything below.
    pub weight: WeightId,
}

impl Edge {
    /// The zero edge (weight 0 into the terminal).
    pub const ZERO: Edge = Edge { node: TERMINAL, weight: W_ZERO };
    /// The one edge (weight 1 into the terminal).
    pub const ONE: Edge = Edge { node: TERMINAL, weight: W_ONE };

    /// Returns `true` for the zero edge.
    pub fn is_zero(self) -> bool {
        self.weight == W_ZERO
    }

    /// Returns `true` when the edge points at the terminal node.
    pub fn is_terminal(self) -> bool {
        self.node == TERMINAL
    }
}

/// A vector-DD node: splits a state on one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VNode {
    level: u16,
    succ: [Edge; 2],
}

/// A matrix-DD node: splits an operator on one qubit
/// (`succ[row_bit * 2 + col_bit]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MNode {
    level: u16,
    succ: [Edge; 4],
}

/// Level marker for reclaimed arena slots (no real node reaches it:
/// `DdPackage::new` rejects registers that wide).
const FREE_LEVEL: u16 = u16::MAX;

const FREE_VNODE: VNode = VNode { level: FREE_LEVEL, succ: [Edge::ZERO; 2] };
const FREE_MNODE: MNode = MNode { level: FREE_LEVEL, succ: [Edge::ZERO; 4] };

#[inline]
fn hash_vnode(node: &VNode) -> u64 {
    let h = fx_word(0, u64::from(node.level));
    let h = fx_word(h, pack_edge(node.succ[0]));
    fx_word(h, pack_edge(node.succ[1]))
}

#[inline]
fn hash_mnode(node: &MNode) -> u64 {
    let mut h = fx_word(0, u64::from(node.level));
    for edge in node.succ {
        h = fx_word(h, pack_edge(edge));
    }
    h
}

/// Tolerance for identifying complex weights (see the complex table).
pub(crate) const WEIGHT_TOLERANCE: f64 = 1e-10;

/// Initial unique-table capacity (slots; grows by doubling).
const UNIQUE_BITS: u32 = 12;
/// Fixed compute-table capacity (entries; never grows — lossy).
const COMPUTE_BITS: u32 = 12;
/// Initial weight-table capacity (slots; grows by doubling).
const WEIGHT_BITS: u32 = 10;
/// Default live-node count that arms the next [`DdPackage::maybe_collect`].
const DEFAULT_GC_THRESHOLD: usize = 16_384;

/// The decision-diagram package: arenas, unique tables and operation
/// caches. All edges returned by one package are only meaningful within it.
///
/// # Examples
///
/// ```
/// use qukit_dd::package::DdPackage;
///
/// let mut dd = DdPackage::new(3);
/// let zero = dd.zero_state();
/// assert_eq!(dd.vector_nodes(zero), 3);
/// assert!(dd.amplitude(zero, 0).is_approx_one());
/// ```
#[derive(Debug)]
pub struct DdPackage {
    num_qubits: usize,
    weights: Vec<Complex>,
    weight_table: WeightTable,
    vnodes: Vec<VNode>,
    vrc: Vec<u32>,
    vfree: Vec<NodeId>,
    vunique: UniqueTable,
    mnodes: Vec<MNode>,
    mrc: Vec<u32>,
    mfree: Vec<NodeId>,
    munique: UniqueTable,
    add_table: ComputeTable,
    mv_table: ComputeTable,
    mm_table: ComputeTable,
    cache_enabled: bool,
    gc_threshold: usize,
    peak_live: usize,
    stats: DdStats,
}

/// Health counters of a [`DdPackage`] — the signals the DD literature
/// reports first: unique-table and compute-table hit rates, weight-table
/// collisions, and garbage collection. Plain fields incremented inline
/// (every package method takes `&mut self`), so tracking is always on and
/// costs two or three integer adds per operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Unique-table lookups that found an existing node (hash-consing won).
    pub unique_hits: u64,
    /// Unique-table lookups that allocated a fresh node.
    pub unique_misses: u64,
    /// Compute-table (add/mv/mm cache) lookups answered from the cache.
    pub compute_hits: u64,
    /// Compute-table lookups that had to recurse.
    pub compute_misses: u64,
    /// Weight interns resolved in a neighbouring tolerance bucket (hash
    /// collisions the 9-bucket probe had to unify).
    pub weight_collisions: u64,
    /// Times the compute tables were dropped (cache invalidations: every
    /// GC run plus explicit clears).
    pub gc_events: u64,
    /// Mark-and-sweep collections performed.
    pub gc_runs: u64,
    /// Nodes returned to the free lists across all collections.
    pub gc_reclaimed: u64,
}

impl DdPackage {
    /// Creates a package for up to `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds `u16::MAX - 1` levels.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits < u16::MAX as usize - 1, "too many qubits");
        let mut package = Self {
            num_qubits,
            weights: Vec::new(),
            weight_table: WeightTable::new(WEIGHT_BITS),
            // Index 0 is a placeholder for the shared terminal in both
            // arenas; level 0 and zero successors, never dereferenced.
            vnodes: vec![VNode { level: 0, succ: [Edge::ZERO; 2] }],
            vrc: vec![0],
            vfree: Vec::new(),
            vunique: UniqueTable::new(UNIQUE_BITS),
            mnodes: vec![MNode { level: 0, succ: [Edge::ZERO; 4] }],
            mrc: vec![0],
            mfree: Vec::new(),
            munique: UniqueTable::new(UNIQUE_BITS),
            add_table: ComputeTable::new(COMPUTE_BITS),
            mv_table: ComputeTable::new(COMPUTE_BITS),
            mm_table: ComputeTable::new(COMPUTE_BITS),
            cache_enabled: true,
            gc_threshold: DEFAULT_GC_THRESHOLD,
            peak_live: 0,
            stats: DdStats::default(),
        };
        let zero = package.intern_weight(Complex::ZERO);
        let one = package.intern_weight(Complex::ONE);
        debug_assert_eq!(zero, W_ZERO);
        debug_assert_eq!(one, W_ONE);
        package
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Disables the operation caches (for the ablation benchmark measuring
    /// how much compute-table caching matters).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.reset_compute_tables();
        }
    }

    /// Current health counters (hit/miss rates, collisions, GC activity).
    pub fn stats(&self) -> DdStats {
        self.stats
    }

    /// Zeroes the health counters (the tables themselves are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DdStats::default();
    }

    /// Resolves a weight id to its complex value.
    pub fn weight(&self, id: WeightId) -> Complex {
        self.weights[id as usize]
    }

    /// Interns a complex value, returning the canonical id of a value
    /// within `WEIGHT_TOLERANCE`.
    pub fn intern_weight(&mut self, value: Complex) -> WeightId {
        // Snap tiny components to exactly zero for stability.
        let re = if value.re.abs() < WEIGHT_TOLERANCE { 0.0 } else { value.re };
        let im = if value.im.abs() < WEIGHT_TOLERANCE { 0.0 } else { value.im };
        let value = Complex::new(re, im);
        let kr = (re / WEIGHT_TOLERANCE).round() as i64;
        let ki = (im / WEIGHT_TOLERANCE).round() as i64;
        // Check the home bucket first (the overwhelmingly common hit),
        // then the 8 neighbours (values straddling a bucket boundary must
        // still unify).
        const PROBE: [(i64, i64); 9] =
            [(0, 0), (-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)];
        let weights = &self.weights;
        for (dr, di) in PROBE {
            let hit = self.weight_table.find((kr + dr, ki + di), |id| {
                weights[id as usize].approx_eq_eps(value, WEIGHT_TOLERANCE)
            });
            if let Some(id) = hit {
                if (dr, di) != (0, 0) {
                    self.stats.weight_collisions += 1;
                }
                return id;
            }
        }
        let id = self.weights.len() as WeightId;
        self.weights.push(value);
        self.weight_table.insert((kr, ki), id);
        id
    }

    fn mul_weights(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == W_ZERO || b == W_ZERO {
            return W_ZERO;
        }
        if a == W_ONE {
            return b;
        }
        if b == W_ONE {
            return a;
        }
        let product = self.weight(a) * self.weight(b);
        self.intern_weight(product)
    }

    fn add_weights(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == W_ZERO {
            return b;
        }
        if b == W_ZERO {
            return a;
        }
        let sum = self.weight(a) + self.weight(b);
        self.intern_weight(sum)
    }

    // --- Arenas, reference counts, garbage collection ----------------------

    fn alloc_vnode(&mut self, node: VNode) -> NodeId {
        let id = match self.vfree.pop() {
            Some(id) => {
                self.vnodes[id as usize] = node;
                self.vrc[id as usize] = 0;
                id
            }
            None => {
                let id = self.vnodes.len() as NodeId;
                self.vnodes.push(node);
                self.vrc.push(0);
                id
            }
        };
        self.note_live();
        id
    }

    fn alloc_mnode(&mut self, node: MNode) -> NodeId {
        let id = match self.mfree.pop() {
            Some(id) => {
                self.mnodes[id as usize] = node;
                self.mrc[id as usize] = 0;
                id
            }
            None => {
                let id = self.mnodes.len() as NodeId;
                self.mnodes.push(node);
                self.mrc.push(0);
                id
            }
        };
        self.note_live();
        id
    }

    #[inline]
    fn note_live(&mut self) {
        let live = self.live_nodes();
        if live > self.peak_live {
            self.peak_live = live;
        }
    }

    /// Live vector + matrix nodes (allocated minus free-listed, excluding
    /// the terminal placeholders).
    pub fn live_nodes(&self) -> usize {
        (self.vnodes.len() - 1 - self.vfree.len()) + (self.mnodes.len() - 1 - self.mfree.len())
    }

    /// High-water mark of [`live_nodes`](Self::live_nodes) over the
    /// package's lifetime — the DD analogue of the `2^n` amplitude array.
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    /// Protects a vector edge's root from garbage collection (saturating).
    pub fn inc_ref(&mut self, edge: Edge) {
        if edge.node != TERMINAL {
            let rc = &mut self.vrc[edge.node as usize];
            *rc = rc.saturating_add(1);
        }
    }

    /// Releases one vector-root protection.
    pub fn dec_ref(&mut self, edge: Edge) {
        if edge.node != TERMINAL {
            let rc = &mut self.vrc[edge.node as usize];
            debug_assert!(*rc > 0, "dec_ref without matching inc_ref");
            if *rc != u32::MAX {
                *rc -= 1;
            }
        }
    }

    /// Protects a matrix edge's root from garbage collection (saturating).
    pub fn inc_ref_matrix(&mut self, edge: Edge) {
        if edge.node != TERMINAL {
            let rc = &mut self.mrc[edge.node as usize];
            *rc = rc.saturating_add(1);
        }
    }

    /// Releases one matrix-root protection.
    pub fn dec_ref_matrix(&mut self, edge: Edge) {
        if edge.node != TERMINAL {
            let rc = &mut self.mrc[edge.node as usize];
            debug_assert!(*rc > 0, "dec_ref_matrix without matching inc_ref_matrix");
            if *rc != u32::MAX {
                *rc -= 1;
            }
        }
    }

    /// Overrides the live-node threshold that arms
    /// [`maybe_collect`](Self::maybe_collect).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold.max(1);
    }

    /// Runs the GC if the live-node count has reached the threshold;
    /// returns the number of reclaimed nodes (0 when it did not run).
    ///
    /// Call this only at safe points — when every edge that must survive
    /// is protected by a reference count. The package never collects
    /// implicitly.
    pub fn maybe_collect(&mut self) -> usize {
        if self.live_nodes() < self.gc_threshold {
            return 0;
        }
        let reclaimed = self.collect_garbage();
        // If most nodes survived, collecting again soon would only burn
        // time re-marking the same diagram: back off the threshold.
        if self.live_nodes() * 2 > self.gc_threshold {
            self.gc_threshold *= 2;
        }
        reclaimed
    }

    /// Mark-and-sweep collection: every node unreachable from a
    /// reference-counted root moves to the free list, the unique tables
    /// are rebuilt from the survivors, and the compute tables are
    /// invalidated (their entries may name reclaimed nodes). Returns the
    /// number of reclaimed nodes.
    pub fn collect_garbage(&mut self) -> usize {
        // -- Mark (vectors) --
        let mut vmark = vec![false; self.vnodes.len()];
        vmark[TERMINAL as usize] = true;
        let mut stack: Vec<NodeId> = Vec::new();
        for (id, &rc) in self.vrc.iter().enumerate() {
            if rc > 0 && self.vnodes[id].level != FREE_LEVEL {
                stack.push(id as NodeId);
            }
        }
        while let Some(id) = stack.pop() {
            if vmark[id as usize] {
                continue;
            }
            vmark[id as usize] = true;
            for edge in self.vnodes[id as usize].succ {
                if !vmark[edge.node as usize] {
                    stack.push(edge.node);
                }
            }
        }
        // -- Mark (matrices) --
        let mut mmark = vec![false; self.mnodes.len()];
        mmark[TERMINAL as usize] = true;
        for (id, &rc) in self.mrc.iter().enumerate() {
            if rc > 0 && self.mnodes[id].level != FREE_LEVEL {
                stack.push(id as NodeId);
            }
        }
        while let Some(id) = stack.pop() {
            if mmark[id as usize] {
                continue;
            }
            mmark[id as usize] = true;
            for edge in self.mnodes[id as usize].succ {
                if !mmark[edge.node as usize] {
                    stack.push(edge.node);
                }
            }
        }
        // -- Sweep --
        let mut reclaimed = 0usize;
        for (id, marked) in vmark.iter().enumerate().skip(1) {
            if !marked && self.vnodes[id].level != FREE_LEVEL {
                self.vnodes[id] = FREE_VNODE;
                self.vrc[id] = 0;
                self.vfree.push(id as NodeId);
                reclaimed += 1;
            }
        }
        for (id, marked) in mmark.iter().enumerate().skip(1) {
            if !marked && self.mnodes[id].level != FREE_LEVEL {
                self.mnodes[id] = FREE_MNODE;
                self.mrc[id] = 0;
                self.mfree.push(id as NodeId);
                reclaimed += 1;
            }
        }
        // -- Rebuild the unique tables from the survivors --
        self.vunique.clear();
        let (vunique, vnodes) = (&mut self.vunique, &self.vnodes);
        for (id, node) in vnodes.iter().enumerate().skip(1) {
            if node.level != FREE_LEVEL {
                vunique.insert(hash_vnode(node), id as NodeId, |slot| {
                    hash_vnode(&vnodes[slot as usize])
                });
            }
        }
        self.munique.clear();
        let (munique, mnodes) = (&mut self.munique, &self.mnodes);
        for (id, node) in mnodes.iter().enumerate().skip(1) {
            if node.level != FREE_LEVEL {
                munique.insert(hash_mnode(node), id as NodeId, |slot| {
                    hash_mnode(&mnodes[slot as usize])
                });
            }
        }
        // Cached results may point at reclaimed (or about-to-be-reused)
        // node ids: drop everything.
        self.reset_compute_tables();
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += reclaimed as u64;
        reclaimed
    }

    fn reset_compute_tables(&mut self) {
        self.add_table.reset();
        self.mv_table.reset();
        self.mm_table.reset();
        self.stats.gc_events += 1;
    }

    // --- Vector nodes ------------------------------------------------------

    /// Creates (or reuses) a normalized vector node at `level` with the two
    /// successor edges, returning the normalized edge into it.
    ///
    /// Normalization: the child weight of largest magnitude is factored out
    /// into the returned edge; a node whose children are both zero
    /// collapses to the zero edge.
    pub fn make_vnode(&mut self, level: u16, succ: [Edge; 2]) -> Edge {
        debug_assert!(level >= 1, "vector nodes live at level >= 1");
        if succ[0].is_zero() && succ[1].is_zero() {
            return Edge::ZERO;
        }
        let w0 = self.weight(succ[0].weight);
        let w1 = self.weight(succ[1].weight);
        let (norm_idx, norm) = if w0.norm_sqr() >= w1.norm_sqr() { (0, w0) } else { (1, w1) };
        let inv = norm.recip();
        let mut normalized = [Edge::ZERO; 2];
        for (i, edge) in succ.iter().enumerate() {
            if edge.is_zero() {
                normalized[i] = Edge::ZERO;
            } else if i == norm_idx {
                normalized[i] = Edge { node: edge.node, weight: W_ONE };
            } else {
                let w = self.weight(edge.weight) * inv;
                let wid = self.intern_weight(w);
                normalized[i] =
                    if wid == W_ZERO { Edge::ZERO } else { Edge { node: edge.node, weight: wid } };
            }
        }
        let node = VNode { level, succ: normalized };
        let hash = hash_vnode(&node);
        let vnodes = &self.vnodes;
        let id = match self.vunique.find(hash, |slot| vnodes[slot as usize] == node) {
            Some(id) => {
                self.stats.unique_hits += 1;
                id
            }
            None => {
                self.stats.unique_misses += 1;
                let id = self.alloc_vnode(node);
                let (vunique, vnodes) = (&mut self.vunique, &self.vnodes);
                vunique.insert(hash, id, |slot| hash_vnode(&vnodes[slot as usize]));
                id
            }
        };
        let top = self.intern_weight(norm);
        Edge { node: id, weight: top }
    }

    #[inline]
    fn vnode(&self, id: NodeId) -> &VNode {
        debug_assert_ne!(self.vnodes[id as usize].level, FREE_LEVEL, "use of reclaimed vnode");
        &self.vnodes[id as usize]
    }

    /// Level of a vector edge's node (0 for terminal).
    pub fn vector_level(&self, edge: Edge) -> u16 {
        self.vnode(edge.node).level
    }

    /// Level of a vector node by id (0 for terminal).
    pub fn vector_level_of(&self, node: NodeId) -> u16 {
        self.vnode(node).level
    }

    /// Raw successor edge of a vector node (parent weight *not* folded in).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the terminal.
    pub fn vector_child(&self, node: NodeId, bit: usize) -> Edge {
        assert_ne!(node, TERMINAL, "terminal has no successors");
        self.vnode(node).succ[bit]
    }

    /// The successor of a vector edge along `bit`, with weights multiplied
    /// through.
    pub fn vector_successor(&mut self, edge: Edge, bit: usize) -> Edge {
        let child = self.vnode(edge.node).succ[bit];
        let weight = self.mul_weights(edge.weight, child.weight);
        if weight == W_ZERO {
            Edge::ZERO
        } else {
            Edge { node: child.node, weight }
        }
    }

    /// The basis state `|0…0⟩` as a vector DD.
    pub fn zero_state(&mut self) -> Edge {
        self.basis_state(0)
    }

    /// An arbitrary computational basis state as a vector DD.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn basis_state(&mut self, index: usize) -> Edge {
        assert!(index < (1usize << self.num_qubits), "basis index out of range");
        let mut edge = Edge::ONE;
        for level in 1..=self.num_qubits as u16 {
            let bit = (index >> (level - 1)) & 1;
            let mut succ = [Edge::ZERO; 2];
            succ[bit] = edge;
            edge = self.make_vnode(level, succ);
        }
        edge
    }

    /// The amplitude `⟨index|ψ⟩` of a vector DD.
    pub fn amplitude(&self, edge: Edge, index: usize) -> Complex {
        let mut acc = self.weight(edge.weight);
        let mut node = edge.node;
        while node != TERMINAL {
            let vn = self.vnode(node);
            let bit = (index >> (vn.level - 1)) & 1;
            let child = vn.succ[bit];
            acc *= self.weight(child.weight);
            if acc.is_approx_zero() {
                return Complex::ZERO;
            }
            node = child.node;
        }
        acc
    }

    /// Materializes the full `2^n` amplitude vector (exponential; for tests
    /// and small benchmarks). Iterative: one explicit stack, no recursion.
    pub fn to_statevector(&self, edge: Edge) -> Vec<Complex> {
        let dim = 1usize << self.num_qubits;
        let mut out = vec![Complex::ZERO; dim];
        let top = self.weight(edge.weight);
        if top.is_approx_zero() {
            return out;
        }
        // (node, basis-index prefix, accumulated weight). State DDs built
        // through make_vnode never skip levels, so a terminal entry always
        // sits at level 0 with a complete prefix.
        let mut stack: Vec<(NodeId, usize, Complex)> = Vec::with_capacity(64);
        stack.push((edge.node, 0, top));
        while let Some((node, prefix, acc)) = stack.pop() {
            if node == TERMINAL {
                out[prefix] = acc;
                continue;
            }
            let vn = self.vnode(node);
            for bit in 0..2 {
                let child = vn.succ[bit];
                if child.is_zero() {
                    continue;
                }
                let next = acc * self.weight(child.weight);
                if next.is_approx_zero() {
                    continue;
                }
                stack.push((child.node, prefix | (bit << (vn.level - 1)), next));
            }
        }
        out
    }

    /// Number of distinct nodes reachable from a vector edge (excluding the
    /// terminal) — the size metric of the Fig. 3 comparison.
    pub fn vector_nodes(&self, edge: Edge) -> usize {
        let mut seen = vec![false; self.vnodes.len()];
        seen[TERMINAL as usize] = true;
        let mut count = 0usize;
        let mut stack = vec![edge.node];
        while let Some(node) = stack.pop() {
            if seen[node as usize] {
                continue;
            }
            seen[node as usize] = true;
            count += 1;
            for child in self.vnode(node).succ {
                stack.push(child.node);
            }
        }
        count
    }

    /// Squared norm `⟨ψ|ψ⟩` of a vector DD.
    pub fn vector_norm_sqr(&self, edge: Edge) -> f64 {
        let mut cache = vec![f64::NAN; self.vnodes.len()];
        let body = self.node_norms_into(edge.node, &mut cache);
        self.weight(edge.weight).norm_sqr() * body
    }

    /// Fills `cache[node] = ‖subtree(node)‖²` for every node reachable from
    /// `root` (iterative post-order; untouched slots stay NaN) and returns
    /// `cache[root]`. The cache must be sized to the vnode arena. Shared
    /// with the sampler, which reuses one cache across all shots.
    pub(crate) fn node_norms_into(&self, root: NodeId, cache: &mut [f64]) -> f64 {
        debug_assert_eq!(cache.len(), self.vnodes.len());
        cache[TERMINAL as usize] = 1.0;
        let mut stack: Vec<NodeId> = vec![root];
        while let Some(&node) = stack.last() {
            if !cache[node as usize].is_nan() {
                stack.pop();
                continue;
            }
            let vn = self.vnode(node);
            let mut ready = true;
            for child in vn.succ {
                if !child.is_zero() && cache[child.node as usize].is_nan() {
                    stack.push(child.node);
                    ready = false;
                }
            }
            if ready {
                let mut total = 0.0;
                for child in vn.succ {
                    if !child.is_zero() {
                        total += self.weight(child.weight).norm_sqr() * cache[child.node as usize];
                    }
                }
                cache[node as usize] = total;
                stack.pop();
            }
        }
        cache[root as usize]
    }

    /// Size of the vector-node arena (for sizing per-node scratch buffers).
    pub(crate) fn vnode_arena_len(&self) -> usize {
        self.vnodes.len()
    }

    // --- Vector addition ----------------------------------------------------

    /// Adds two vector DDs.
    pub fn add_vectors(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let (a, b) = if (a.node, a.weight) <= (b.node, b.weight) { (a, b) } else { (b, a) };
        if self.cache_enabled {
            if let Some(hit) = self.add_table.lookup(a, b) {
                self.stats.compute_hits += 1;
                return hit;
            }
        }
        self.stats.compute_misses += 1;
        let result = if a.node == TERMINAL && b.node == TERMINAL {
            let w = self.add_weights(a.weight, b.weight);
            if w == W_ZERO {
                Edge::ZERO
            } else {
                Edge { node: TERMINAL, weight: w }
            }
        } else {
            let level = self.vector_level(a).max(self.vector_level(b));
            let mut succ = [Edge::ZERO; 2];
            for (bit, slot) in succ.iter_mut().enumerate() {
                let ac = self.descend_vector(a, level, bit);
                let bc = self.descend_vector(b, level, bit);
                *slot = self.add_vectors(ac, bc);
            }
            self.make_vnode(level, succ)
        };
        if self.cache_enabled {
            self.add_table.store(a, b, result);
        }
        result
    }

    /// Child of `edge` along `bit` if its node is at `level`, otherwise the
    /// edge itself (implicit don't-care expansion for skipped levels).
    fn descend_vector(&mut self, edge: Edge, level: u16, bit: usize) -> Edge {
        if edge.node != TERMINAL && self.vector_level(edge) == level {
            self.vector_successor(edge, bit)
        } else {
            // Node skipped at this level: for state DDs built by this
            // package levels are never skipped, but addition interim
            // results can be sub-normalized; treat as same value on both
            // branches (don't-care) — only correct for terminal edges,
            // which is the only skip case reachable here.
            edge
        }
    }

    // --- Matrix nodes ---------------------------------------------------------

    /// Creates (or reuses) a normalized matrix node.
    pub fn make_mnode(&mut self, level: u16, succ: [Edge; 4]) -> Edge {
        debug_assert!(level >= 1, "matrix nodes live at level >= 1");
        if succ.iter().all(|e| e.is_zero()) {
            return Edge::ZERO;
        }
        // Factor out the max-magnitude child weight.
        let mut norm_idx = 0;
        let mut best = -1.0f64;
        for (i, edge) in succ.iter().enumerate() {
            let mag = self.weight(edge.weight).norm_sqr();
            if mag > best {
                best = mag;
                norm_idx = i;
            }
        }
        let norm = self.weight(succ[norm_idx].weight);
        let inv = norm.recip();
        let mut normalized = [Edge::ZERO; 4];
        for (i, edge) in succ.iter().enumerate() {
            if edge.is_zero() {
                normalized[i] = Edge::ZERO;
            } else if i == norm_idx {
                normalized[i] = Edge { node: edge.node, weight: W_ONE };
            } else {
                let w = self.weight(edge.weight) * inv;
                let wid = self.intern_weight(w);
                normalized[i] =
                    if wid == W_ZERO { Edge::ZERO } else { Edge { node: edge.node, weight: wid } };
            }
        }
        let node = MNode { level, succ: normalized };
        let hash = hash_mnode(&node);
        let mnodes = &self.mnodes;
        let id = match self.munique.find(hash, |slot| mnodes[slot as usize] == node) {
            Some(id) => {
                self.stats.unique_hits += 1;
                id
            }
            None => {
                self.stats.unique_misses += 1;
                let id = self.alloc_mnode(node);
                let (munique, mnodes) = (&mut self.munique, &self.mnodes);
                munique.insert(hash, id, |slot| hash_mnode(&mnodes[slot as usize]));
                id
            }
        };
        let top = self.intern_weight(norm);
        Edge { node: id, weight: top }
    }

    #[inline]
    fn mnode(&self, id: NodeId) -> &MNode {
        debug_assert_ne!(self.mnodes[id as usize].level, FREE_LEVEL, "use of reclaimed mnode");
        &self.mnodes[id as usize]
    }

    /// Level of a matrix edge's node (0 for terminal).
    pub fn matrix_level(&self, edge: Edge) -> u16 {
        self.mnode(edge.node).level
    }

    /// Number of distinct matrix nodes reachable from an edge.
    pub fn matrix_nodes(&self, edge: Edge) -> usize {
        let mut seen = vec![false; self.mnodes.len()];
        seen[TERMINAL as usize] = true;
        let mut count = 0usize;
        let mut stack = vec![edge.node];
        while let Some(node) = stack.pop() {
            if seen[node as usize] {
                continue;
            }
            seen[node as usize] = true;
            count += 1;
            for child in self.mnode(node).succ {
                stack.push(child.node);
            }
        }
        count
    }

    /// The identity matrix DD over all qubits.
    pub fn identity(&mut self) -> Edge {
        let mut edge = Edge::ONE;
        for level in 1..=self.num_qubits as u16 {
            edge = self.make_mnode(level, [edge, Edge::ZERO, Edge::ZERO, edge]);
        }
        edge
    }

    /// Builds the matrix DD of a `k`-qubit gate applied to `qubits`
    /// (little-endian operand convention matching
    /// [`qukit_terra::gate::Gate::matrix`]).
    ///
    /// # Panics
    ///
    /// Panics if operand count and matrix dimension disagree or operands
    /// repeat / exceed the register.
    pub fn gate_matrix(&mut self, matrix: &qukit_terra::matrix::Matrix, qubits: &[usize]) -> Edge {
        let k = qubits.len();
        assert_eq!(matrix.rows(), 1 << k, "matrix dimension mismatch");
        for &q in qubits {
            assert!(q < self.num_qubits, "operand qubit {q} out of range");
        }
        let mut memo: HashMap<(u16, usize, usize), Edge> = HashMap::new();
        self.build_gate(matrix, qubits, self.num_qubits as u16, 0, 0, &mut memo)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_gate(
        &mut self,
        matrix: &qukit_terra::matrix::Matrix,
        qubits: &[usize],
        level: u16,
        row_acc: usize,
        col_acc: usize,
        memo: &mut HashMap<(u16, usize, usize), Edge>,
    ) -> Edge {
        if level == 0 {
            let value = matrix[(row_acc, col_acc)];
            let w = self.intern_weight(value);
            return if w == W_ZERO { Edge::ZERO } else { Edge { node: TERMINAL, weight: w } };
        }
        if let Some(&hit) = memo.get(&(level, row_acc, col_acc)) {
            return hit;
        }
        let q = (level - 1) as usize;
        let result = if let Some(pos) = qubits.iter().position(|&x| x == q) {
            let mut succ = [Edge::ZERO; 4];
            for r in 0..2 {
                for c in 0..2 {
                    let child = self.build_gate(
                        matrix,
                        qubits,
                        level - 1,
                        row_acc | (r << pos),
                        col_acc | (c << pos),
                        memo,
                    );
                    succ[r * 2 + c] = child;
                }
            }
            self.make_mnode(level, succ)
        } else {
            let below = self.build_gate(matrix, qubits, level - 1, row_acc, col_acc, memo);
            self.make_mnode(level, [below, Edge::ZERO, Edge::ZERO, below])
        };
        memo.insert((level, row_acc, col_acc), result);
        result
    }

    // --- Matrix-vector and matrix-matrix multiplication -------------------------

    /// Applies a matrix DD to a vector DD: `|ψ'⟩ = M|ψ⟩`.
    ///
    /// This is the core simulation step — "simulating a quantum circuit
    /// conceptually boils down to a sequence of matrix-vector
    /// multiplications" (paper, Section V-A), except both operands stay in
    /// their compressed DD form throughout.
    pub fn multiply_mv(&mut self, m: Edge, v: Edge) -> Edge {
        if m.is_zero() || v.is_zero() {
            return Edge::ZERO;
        }
        if m.node == TERMINAL && v.node == TERMINAL {
            let w = self.mul_weights(m.weight, v.weight);
            return if w == W_ZERO { Edge::ZERO } else { Edge { node: TERMINAL, weight: w } };
        }
        // Factor the top weights out so cache entries are weight-normalized.
        let (m_body, v_body) =
            (Edge { node: m.node, weight: W_ONE }, Edge { node: v.node, weight: W_ONE });
        let outer = self.mul_weights(m.weight, v.weight);
        if outer == W_ZERO {
            return Edge::ZERO;
        }
        let cached = if self.cache_enabled { self.mv_table.lookup(m_body, v_body) } else { None };
        let body_result = if let Some(hit) = cached {
            self.stats.compute_hits += 1;
            hit
        } else {
            self.stats.compute_misses += 1;
            let level = self.matrix_level(m).max(self.vector_level(v));
            let mut succ = [Edge::ZERO; 2];
            for (r, slot) in succ.iter_mut().enumerate() {
                let mut acc = Edge::ZERO;
                for c in 0..2 {
                    let m_child = self.descend_matrix(m_body, level, r, c);
                    let v_child = self.descend_vector_strict(v_body, level, c);
                    let prod = self.multiply_mv(m_child, v_child);
                    acc = self.add_vectors(acc, prod);
                }
                *slot = acc;
            }
            let result = self.make_vnode(level, succ);
            if self.cache_enabled {
                self.mv_table.store(m_body, v_body, result);
            }
            result
        };
        let weight = self.mul_weights(outer, body_result.weight);
        if weight == W_ZERO {
            Edge::ZERO
        } else {
            Edge { node: body_result.node, weight }
        }
    }

    /// Multiplies two matrix DDs: `A·B`.
    pub fn multiply_mm(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() || b.is_zero() {
            return Edge::ZERO;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            let w = self.mul_weights(a.weight, b.weight);
            return if w == W_ZERO { Edge::ZERO } else { Edge { node: TERMINAL, weight: w } };
        }
        let (a_body, b_body) =
            (Edge { node: a.node, weight: W_ONE }, Edge { node: b.node, weight: W_ONE });
        let outer = self.mul_weights(a.weight, b.weight);
        if outer == W_ZERO {
            return Edge::ZERO;
        }
        let cached = if self.cache_enabled { self.mm_table.lookup(a_body, b_body) } else { None };
        let body_result = if let Some(hit) = cached {
            self.stats.compute_hits += 1;
            hit
        } else {
            self.stats.compute_misses += 1;
            let level = self.matrix_level(a).max(self.matrix_level(b));
            let mut succ = [Edge::ZERO; 4];
            for r in 0..2 {
                for c in 0..2 {
                    let mut acc = Edge::ZERO;
                    for k in 0..2 {
                        let a_child = self.descend_matrix(a_body, level, r, k);
                        let b_child = self.descend_matrix(b_body, level, k, c);
                        let prod = self.multiply_mm(a_child, b_child);
                        acc = self.add_matrices(acc, prod);
                    }
                    succ[r * 2 + c] = acc;
                }
            }
            let result = self.make_mnode(level, succ);
            if self.cache_enabled {
                self.mm_table.store(a_body, b_body, result);
            }
            result
        };
        let weight = self.mul_weights(outer, body_result.weight);
        if weight == W_ZERO {
            Edge::ZERO
        } else {
            Edge { node: body_result.node, weight }
        }
    }

    /// Adds two matrix DDs.
    pub fn add_matrices(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            let w = self.add_weights(a.weight, b.weight);
            return if w == W_ZERO { Edge::ZERO } else { Edge { node: TERMINAL, weight: w } };
        }
        let level = self.matrix_level(a).max(self.matrix_level(b));
        let mut succ = [Edge::ZERO; 4];
        for r in 0..2 {
            for c in 0..2 {
                let ac = self.descend_matrix(a, level, r, c);
                let bc = self.descend_matrix(b, level, r, c);
                succ[r * 2 + c] = self.add_matrices(ac, bc);
            }
        }
        self.make_mnode(level, succ)
    }

    fn descend_matrix(&mut self, edge: Edge, level: u16, r: usize, c: usize) -> Edge {
        if edge.node != TERMINAL && self.matrix_level(edge) == level {
            let child = self.mnode(edge.node).succ[r * 2 + c];
            let weight = self.mul_weights(edge.weight, child.weight);
            if weight == W_ZERO {
                Edge::ZERO
            } else {
                Edge { node: child.node, weight }
            }
        } else if r == c {
            // Skipped level acts as identity.
            edge
        } else {
            Edge::ZERO
        }
    }

    fn descend_vector_strict(&mut self, edge: Edge, level: u16, bit: usize) -> Edge {
        if edge.node != TERMINAL && self.vector_level(edge) == level {
            self.vector_successor(edge, bit)
        } else {
            // For fully-expanded state DDs this cannot happen except at the
            // terminal, where the value is shared by both branches.
            edge
        }
    }

    /// Materializes a matrix DD as a dense matrix (exponential; tests
    /// and the Fig. 3 reproduction only).
    pub fn to_matrix(&self, edge: Edge) -> qukit_terra::matrix::Matrix {
        let dim = 1usize << self.num_qubits;
        let mut out = qukit_terra::matrix::Matrix::zeros(dim, dim);
        self.fill_matrix(edge, self.num_qubits as u16, 0, 0, self.weight(edge.weight), &mut out);
        out
    }

    fn fill_matrix(
        &self,
        edge: Edge,
        level: u16,
        row: usize,
        col: usize,
        acc: Complex,
        out: &mut qukit_terra::matrix::Matrix,
    ) {
        if acc.is_approx_zero() {
            return;
        }
        if level == 0 {
            out[(row, col)] = acc;
            return;
        }
        if edge.node == TERMINAL || self.matrix_level(edge) != level {
            // Skipped level: identity expansion.
            for b in 0..2 {
                self.fill_matrix(
                    edge,
                    level - 1,
                    row | (b << (level - 1)),
                    col | (b << (level - 1)),
                    acc,
                    out,
                );
            }
            return;
        }
        let mn = self.mnode(edge.node);
        for r in 0..2 {
            for c in 0..2 {
                let child = mn.succ[r * 2 + c];
                if child.is_zero() {
                    continue;
                }
                self.fill_matrix(
                    child,
                    level - 1,
                    row | (r << (level - 1)),
                    col | (c << (level - 1)),
                    acc * self.weight(child.weight),
                    out,
                );
            }
        }
    }

    /// Inner product `⟨a|b⟩` of two vector DDs, computed on the compressed
    /// representation with memoization (never materializing amplitudes).
    pub fn inner_product(&mut self, a: Edge, b: Edge) -> Complex {
        let mut cache: HashMap<(NodeId, NodeId), Complex> = HashMap::new();
        let top = self.weight(a.weight).conj() * self.weight(b.weight);
        if top.is_approx_zero() {
            return Complex::ZERO;
        }
        top * self.inner_product_body(a.node, b.node, &mut cache)
    }

    fn inner_product_body(
        &mut self,
        a: NodeId,
        b: NodeId,
        cache: &mut HashMap<(NodeId, NodeId), Complex>,
    ) -> Complex {
        if a == TERMINAL && b == TERMINAL {
            return Complex::ONE;
        }
        if let Some(&hit) = cache.get(&(a, b)) {
            return hit;
        }
        // State DDs built by this package never skip levels, so the two
        // nodes are at the same level here.
        let mut acc = Complex::ZERO;
        for bit in 0..2 {
            let ca = self.vector_child(a, bit);
            let cb = self.vector_child(b, bit);
            if ca.is_zero() || cb.is_zero() {
                continue;
            }
            let w = self.weight(ca.weight).conj() * self.weight(cb.weight);
            if w.is_approx_zero() {
                continue;
            }
            acc += w * self.inner_product_body(ca.node, cb.node, cache);
        }
        cache.insert((a, b), acc);
        acc
    }

    /// Fidelity `|⟨a|b⟩|²` between two vector DDs.
    pub fn fidelity(&mut self, a: Edge, b: Edge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// Live nodes (vector + matrix) — a memory telemetry metric. Alias of
    /// [`live_nodes`](Self::live_nodes), kept for the original telemetry
    /// name.
    pub fn allocated_nodes(&self) -> usize {
        self.live_nodes()
    }

    /// Clears the operation caches (unique tables are kept).
    pub fn clear_caches(&mut self) {
        self.reset_compute_tables();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::complex::c64;
    use qukit_terra::gate::Gate;

    #[test]
    fn weight_interning_is_canonical() {
        let mut dd = DdPackage::new(1);
        let a = dd.intern_weight(c64(0.5, -0.25));
        let b = dd.intern_weight(c64(0.5 + 1e-13, -0.25 - 1e-13));
        assert_eq!(a, b, "nearby weights must unify");
        let c = dd.intern_weight(c64(0.5001, -0.25));
        assert_ne!(a, c);
        assert_eq!(dd.intern_weight(Complex::ZERO), W_ZERO);
        assert_eq!(dd.intern_weight(Complex::ONE), W_ONE);
    }

    #[test]
    fn boundary_straddling_weights_unify_to_one_canonical_id() {
        // Two values on opposite sides of a tolerance-bucket boundary:
        // rounding puts them in adjacent buckets, but they are within
        // WEIGHT_TOLERANCE of each other, so the 9-bucket probe must
        // unify them — and count the unification as a collision.
        let mut dd = DdPackage::new(1);
        let base = 0.5;
        let v1 = c64(base + 0.44 * WEIGHT_TOLERANCE, base);
        let v2 = c64(base + 0.56 * WEIGHT_TOLERANCE, base);
        let k1 = (v1.re / WEIGHT_TOLERANCE).round() as i64;
        let k2 = (v2.re / WEIGHT_TOLERANCE).round() as i64;
        assert_ne!(k1, k2, "test values must straddle a bucket boundary");
        let before = dd.stats().weight_collisions;
        let a = dd.intern_weight(v1);
        let b = dd.intern_weight(v2);
        assert_eq!(a, b, "straddling values must intern to one canonical id");
        assert_eq!(
            dd.stats().weight_collisions,
            before + 1,
            "the neighbour-bucket unification must be counted"
        );
        // The imaginary axis straddles too.
        let c = dd.intern_weight(c64(0.25, base + 0.44 * WEIGHT_TOLERANCE));
        let d = dd.intern_weight(c64(0.25, base + 0.56 * WEIGHT_TOLERANCE));
        assert_eq!(c, d);
    }

    #[test]
    fn zero_state_amplitudes() {
        let mut dd = DdPackage::new(3);
        let psi = dd.zero_state();
        assert!(dd.amplitude(psi, 0).is_approx_one());
        for idx in 1..8 {
            assert!(dd.amplitude(psi, idx).is_approx_zero());
        }
        assert!((dd.vector_norm_sqr(psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn basis_states_are_canonical_chains() {
        let mut dd = DdPackage::new(4);
        let a = dd.basis_state(0b1010);
        let b = dd.basis_state(0b1010);
        assert_eq!(a, b, "hash consing must return identical edges");
        assert!(dd.amplitude(a, 0b1010).is_approx_one());
        assert_eq!(dd.vector_nodes(a), 4);
    }

    #[test]
    fn gate_matrix_reproduces_dense() {
        let mut dd = DdPackage::new(3);
        for (gate, qubits) in [
            (Gate::H, vec![0]),
            (Gate::H, vec![2]),
            (Gate::T, vec![1]),
            (Gate::CX, vec![0, 2]),
            (Gate::CX, vec![2, 0]),
            (Gate::Swap, vec![0, 1]),
        ] {
            let edge = dd.gate_matrix(&gate.matrix(), &qubits);
            let dense = dd.to_matrix(edge);
            // Reference: embed with the reference simulator.
            let mut circ = qukit_terra::circuit::QuantumCircuit::new(3);
            circ.append(gate, &qubits).unwrap();
            let expected = qukit_terra::reference::unitary(&circ).unwrap();
            assert!(dense.approx_eq_eps(&expected, 1e-9), "{gate:?} on {qubits:?}");
        }
    }

    #[test]
    fn identity_dd_has_linear_size() {
        let mut dd = DdPackage::new(8);
        let id = dd.identity();
        assert_eq!(dd.matrix_nodes(id), 8);
    }

    #[test]
    fn mv_multiplication_matches_dense() {
        let mut dd = DdPackage::new(3);
        let mut psi = dd.zero_state();
        let mut reference = vec![Complex::ZERO; 8];
        reference[0] = Complex::ONE;
        for (gate, qubits) in [
            (Gate::H, vec![0usize]),
            (Gate::CX, vec![0, 1]),
            (Gate::T, vec![1]),
            (Gate::CX, vec![1, 2]),
            (Gate::H, vec![2]),
        ] {
            let m = dd.gate_matrix(&gate.matrix(), &qubits);
            psi = dd.multiply_mv(m, psi);
            qukit_terra::reference::apply_gate(&mut reference, &gate.matrix(), &qubits);
        }
        let result = dd.to_statevector(psi);
        for (a, b) in result.iter().zip(&reference) {
            assert!(a.approx_eq_eps(*b, 1e-9));
        }
        assert!((dd.vector_norm_sqr(psi) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ghz_state_dd_is_linear_in_qubits() {
        // The flagship compactness result: GHZ needs 2^n amplitudes densely
        // but only 2n-1 DD nodes (a top node plus the all-zero and all-one
        // chains).
        let n = 12;
        let mut dd = DdPackage::new(n);
        let mut psi = dd.zero_state();
        let h = dd.gate_matrix(&Gate::H.matrix(), &[0]);
        psi = dd.multiply_mv(h, psi);
        for q in 1..n {
            let cx = dd.gate_matrix(&Gate::CX.matrix(), &[q - 1, q]);
            psi = dd.multiply_mv(cx, psi);
        }
        assert_eq!(dd.vector_nodes(psi), 2 * n - 1, "GHZ must stay linear");
        let amp0 = dd.amplitude(psi, 0);
        let amp_all = dd.amplitude(psi, (1 << n) - 1);
        assert!((amp0.norm_sqr() - 0.5).abs() < 1e-9);
        assert!((amp_all.norm_sqr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn addition_is_commutative_and_linear() {
        let mut dd = DdPackage::new(2);
        let a = dd.basis_state(0);
        let b = dd.basis_state(3);
        let ab = dd.add_vectors(a, b);
        let ba = dd.add_vectors(b, a);
        assert_eq!(ab, ba);
        assert!((dd.vector_norm_sqr(ab) - 2.0).abs() < 1e-12);
        assert!(dd.amplitude(ab, 0).is_approx_one());
        assert!(dd.amplitude(ab, 3).is_approx_one());
    }

    #[test]
    fn mm_multiplication_matches_dense() {
        let mut dd = DdPackage::new(2);
        let h0 = dd.gate_matrix(&Gate::H.matrix(), &[0]);
        let cx = dd.gate_matrix(&Gate::CX.matrix(), &[0, 1]);
        let product = dd.multiply_mm(cx, h0); // CX · H(q0)
        let dense = dd.to_matrix(product);
        let mut circ = qukit_terra::circuit::QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let expected = qukit_terra::reference::unitary(&circ).unwrap();
        assert!(dense.approx_eq_eps(&expected, 1e-9));
    }

    #[test]
    fn canonicity_hh_restores_original_edge() {
        let mut dd = DdPackage::new(4);
        let psi = dd.zero_state();
        let h = dd.gate_matrix(&Gate::H.matrix(), &[2]);
        let once = dd.multiply_mv(h, psi);
        let twice = dd.multiply_mv(h, once);
        assert_eq!(twice, psi, "H·H|ψ⟩ must be structurally identical to |ψ⟩");
    }

    #[test]
    fn cache_toggle_gives_same_results() {
        let run = |cache: bool| -> Vec<Complex> {
            let mut dd = DdPackage::new(4);
            dd.set_cache_enabled(cache);
            let mut psi = dd.zero_state();
            for q in 0..4 {
                let h = dd.gate_matrix(&Gate::H.matrix(), &[q]);
                psi = dd.multiply_mv(h, psi);
            }
            for q in 0..3 {
                let cx = dd.gate_matrix(&Gate::CX.matrix(), &[q, q + 1]);
                psi = dd.multiply_mv(cx, psi);
            }
            dd.to_statevector(psi)
        };
        let with = run(true);
        let without = run(false);
        for (a, b) in with.iter().zip(&without) {
            assert!(a.approx_eq_eps(*b, 1e-9));
        }
    }

    #[test]
    fn inner_product_matches_dense() {
        let mut dd = DdPackage::new(3);
        // |psi> = GHZ, |phi> = uniform superposition.
        let mut psi = dd.zero_state();
        let h0 = dd.gate_matrix(&Gate::H.matrix(), &[0]);
        psi = dd.multiply_mv(h0, psi);
        for q in 1..3 {
            let cx = dd.gate_matrix(&Gate::CX.matrix(), &[q - 1, q]);
            psi = dd.multiply_mv(cx, psi);
        }
        let mut phi = dd.zero_state();
        for q in 0..3 {
            let h = dd.gate_matrix(&Gate::H.matrix(), &[q]);
            phi = dd.multiply_mv(h, phi);
        }
        let dense_psi = dd.to_statevector(psi);
        let dense_phi = dd.to_statevector(phi);
        let expected = qukit_terra::matrix::inner_product(&dense_psi, &dense_phi);
        let actual = dd.inner_product(psi, phi);
        assert!(actual.approx_eq_eps(expected, 1e-10), "{actual} vs {expected}");
        // <GHZ|uniform> = 2/sqrt(2 * 8) = 0.5.
        assert!((actual.re - 0.5).abs() < 1e-10);
    }

    #[test]
    fn inner_product_self_is_norm() {
        let mut dd = DdPackage::new(4);
        let mut psi = dd.zero_state();
        for (g, q) in [(Gate::H, 0usize), (Gate::T, 0), (Gate::H, 2)] {
            let m = dd.gate_matrix(&g.matrix(), &[q]);
            psi = dd.multiply_mv(m, psi);
        }
        let ip = dd.inner_product(psi, psi);
        assert!((ip.re - 1.0).abs() < 1e-10);
        assert!(ip.im.abs() < 1e-10);
        assert!((dd.fidelity(psi, psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn orthogonal_states_have_zero_fidelity() {
        let mut dd = DdPackage::new(2);
        let a = dd.basis_state(0b01);
        let b = dd.basis_state(0b10);
        assert!(dd.inner_product(a, b).is_approx_zero());
        assert_eq!(dd.fidelity(a, b), 0.0);
    }

    #[test]
    fn allocated_nodes_grows_and_reports() {
        let mut dd = DdPackage::new(3);
        let before = dd.allocated_nodes();
        let _ = dd.zero_state();
        assert!(dd.allocated_nodes() > before);
        dd.clear_caches();
    }

    #[test]
    fn gc_reclaims_unreferenced_nodes_and_keeps_protected_roots() {
        let n = 6;
        let mut dd = DdPackage::new(n);
        // A protected GHZ state...
        let mut ghz = dd.zero_state();
        let h = dd.gate_matrix(&Gate::H.matrix(), &[0]);
        ghz = dd.multiply_mv(h, ghz);
        for q in 1..n {
            let cx = dd.gate_matrix(&Gate::CX.matrix(), &[q - 1, q]);
            ghz = dd.multiply_mv(cx, ghz);
        }
        dd.inc_ref(ghz);
        let expected = dd.to_statevector(ghz);
        // ...plus a pile of garbage: unprotected basis states and gate DDs.
        for i in 0..(1 << n) {
            let _ = dd.basis_state(i);
        }
        let live_before = dd.live_nodes();
        let reclaimed = dd.collect_garbage();
        assert!(reclaimed > 0, "garbage must be reclaimed");
        assert!(dd.live_nodes() < live_before);
        assert_eq!(dd.stats().gc_runs, 1);
        assert_eq!(dd.stats().gc_reclaimed, reclaimed as u64);
        // The protected state is untouched, bit for bit.
        let after = dd.to_statevector(ghz);
        for (a, b) in after.iter().zip(&expected) {
            assert_eq!(a, b, "protected roots must survive GC exactly");
        }
        assert_eq!(dd.vector_nodes(ghz), 2 * n - 1);
        dd.dec_ref(ghz);
    }

    #[test]
    fn gc_free_list_slots_are_reused() {
        let mut dd = DdPackage::new(4);
        for i in 0..16 {
            let _ = dd.basis_state(i);
        }
        let arena_before = dd.vnode_arena_len();
        let reclaimed = dd.collect_garbage();
        assert!(reclaimed > 0);
        // Rebuilding states after the sweep must reuse freed slots instead
        // of growing the arena.
        for i in 0..16 {
            let _ = dd.basis_state(i);
        }
        assert_eq!(dd.vnode_arena_len(), arena_before, "freed slots must be recycled");
    }

    #[test]
    fn gc_after_sweep_rebuilt_states_stay_correct() {
        let mut dd = DdPackage::new(3);
        let a = dd.basis_state(5);
        let amp_before = dd.amplitude(a, 5);
        dd.collect_garbage(); // `a` was unprotected: reclaimed
        let b = dd.basis_state(5);
        assert!(dd.amplitude(b, 5).approx_eq_eps(amp_before, 1e-12));
        let c = dd.basis_state(5);
        assert_eq!(b, c, "hash consing is canonical again after the rebuild");
    }

    #[test]
    fn maybe_collect_honors_threshold() {
        let mut dd = DdPackage::new(4);
        dd.set_gc_threshold(usize::MAX);
        for i in 0..16 {
            let _ = dd.basis_state(i);
        }
        assert_eq!(dd.maybe_collect(), 0, "below threshold: no collection");
        dd.set_gc_threshold(1);
        assert!(dd.maybe_collect() > 0, "above threshold: collects");
        assert!(dd.stats().gc_runs >= 1);
    }

    #[test]
    fn peak_live_nodes_tracks_high_water_mark() {
        let mut dd = DdPackage::new(4);
        for i in 0..16 {
            let _ = dd.basis_state(i);
        }
        let peak = dd.peak_live_nodes();
        assert!(peak >= dd.live_nodes());
        dd.collect_garbage();
        assert_eq!(dd.peak_live_nodes(), peak, "peak must survive the sweep");
        assert!(dd.live_nodes() < peak);
    }
}
