//! Decision-diagram based equivalence checking.
//!
//! The paper highlights DDs not only for simulation but for *verification*
//! (its references [22], [33]): two circuits are equivalent iff
//! `U₁ · U₂†` is the identity up to global phase — a check that stays in
//! the compressed representation throughout, and therefore scales far past
//! dense-matrix comparison on structured circuits.

use crate::package::{DdPackage, Edge, TERMINAL, W_ONE};
use crate::simulator::{DdError, DdSimulator};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::instruction::Operation;

/// The result of an equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Equivalence {
    /// The circuits implement identical unitaries.
    Equivalent,
    /// Identical up to the given global phase (radians).
    EquivalentUpToPhase(f64),
    /// The circuits differ.
    NotEquivalent,
}

impl Equivalence {
    /// Returns `true` for either equivalence flavour.
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::NotEquivalent)
    }
}

/// Checks whether two unitary circuits of the same width are equivalent,
/// entirely on decision diagrams: builds `U₁ · U₂†` by multiplying `U₂`'s
/// gates *inverted and reversed* onto `U₁`, then tests the result against
/// the identity DD.
///
/// # Errors
///
/// Returns [`DdError::UnsupportedInstruction`] for non-unitary circuits.
///
/// # Panics
///
/// Panics if the circuits have different widths.
pub fn check_equivalence(
    circuit_a: &QuantumCircuit,
    circuit_b: &QuantumCircuit,
) -> Result<Equivalence, DdError> {
    assert_eq!(
        circuit_a.num_qubits(),
        circuit_b.num_qubits(),
        "equivalence checking requires equal widths"
    );
    let n = circuit_a.num_qubits();
    let mut package = DdPackage::new(n);
    let mut acc = package.identity();
    // U_a, applied left to right.
    for inst in circuit_a.instructions() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let gate_dd = package.gate_matrix(&g.matrix(), &inst.qubits);
                acc = package.multiply_mm(gate_dd, acc);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    // U_b† applied on the left: multiply the inverses in reverse order.
    for inst in circuit_b.instructions().iter().rev() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let gate_dd = package.gate_matrix(&g.inverse().matrix(), &inst.qubits);
                acc = package.multiply_mm(gate_dd, acc);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    Ok(classify_identity(&mut package, acc, circuit_a, circuit_b))
}

fn classify_identity(
    package: &mut DdPackage,
    result: Edge,
    a: &QuantumCircuit,
    b: &QuantumCircuit,
) -> Equivalence {
    // The identity DD has the canonical chain structure: compare nodes,
    // then account for the top weight (the global phase).
    let identity = package.identity();
    if result.node != identity.node {
        return Equivalence::NotEquivalent;
    }
    let weight = package.weight(result.weight);
    if (weight.norm() - 1.0).abs() > 1e-9 {
        return Equivalence::NotEquivalent;
    }
    let phase = weight.arg() + b.global_phase() - a.global_phase();
    // Normalize phase into (-π, π].
    let phase = (-phase).rem_euclid(std::f64::consts::TAU);
    let phase = if phase > std::f64::consts::PI { phase - std::f64::consts::TAU } else { phase };
    if phase.abs() < 1e-9 {
        Equivalence::Equivalent
    } else {
        Equivalence::EquivalentUpToPhase(-phase)
    }
}

/// Convenience wrapper: equivalence of a circuit against its transpiled
/// form *ignoring* qubit relabeling is not meaningful, so this checks two
/// same-layout circuits only. For mapped circuits, conjugate with the
/// layout permutation first.
///
/// # Errors
///
/// Propagates [`check_equivalence`] errors.
pub fn assert_equivalent(a: &QuantumCircuit, b: &QuantumCircuit) -> Result<bool, DdError> {
    Ok(check_equivalence(a, b)?.is_equivalent())
}

/// Verifies that a state DD is normalized — a cheap sanity check exposed
/// for test harnesses.
pub fn is_normalized(simulated: &crate::simulator::DdState) -> bool {
    let _ = DdSimulator::new(); // anchor the public type in rustdoc
    let root = simulated.root;
    if root.node == TERMINAL {
        return root.weight == W_ONE;
    }
    (simulated.package.vector_norm_sqr(root) - 1.0).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::gate::Gate;

    #[test]
    fn identical_circuits_are_equivalent() {
        let circ = qukit_terra::circuit::fig1_circuit();
        let result = check_equivalence(&circ, &circ).unwrap();
        assert_eq!(result, Equivalence::Equivalent);
    }

    #[test]
    fn rewritten_circuits_are_equivalent() {
        // H·H = I, CX·CX = I around a T gate.
        let mut a = QuantumCircuit::new(2);
        a.t(0).unwrap();
        let mut b = QuantumCircuit::new(2);
        b.h(1).unwrap();
        b.cx(0, 1).unwrap();
        b.cx(0, 1).unwrap();
        b.h(1).unwrap();
        b.t(0).unwrap();
        assert!(assert_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn phase_equivalence_is_distinguished() {
        // Z X Z X = -I: equivalent to the identity only up to phase π.
        let mut a = QuantumCircuit::new(1);
        a.z(0).unwrap();
        a.x(0).unwrap();
        a.z(0).unwrap();
        a.x(0).unwrap();
        let b = QuantumCircuit::new(1);
        match check_equivalence(&a, &b).unwrap() {
            Equivalence::EquivalentUpToPhase(phase) => {
                assert!((phase.abs() - std::f64::consts::PI).abs() < 1e-9, "phase {phase}");
            }
            other => panic!("expected phase equivalence, got {other:?}"),
        }
    }

    #[test]
    fn different_circuits_are_rejected() {
        let mut a = QuantumCircuit::new(2);
        a.cx(0, 1).unwrap();
        let mut b = QuantumCircuit::new(2);
        b.cx(1, 0).unwrap();
        assert_eq!(check_equivalence(&a, &b).unwrap(), Equivalence::NotEquivalent);

        let mut c = QuantumCircuit::new(2);
        c.rx(0.3, 0).unwrap();
        let mut d = QuantumCircuit::new(2);
        d.rx(0.3001, 0).unwrap();
        assert_eq!(check_equivalence(&c, &d).unwrap(), Equivalence::NotEquivalent);
    }

    #[test]
    fn transpiler_output_verifies_on_dds() {
        // End-to-end: decompose+optimize (no mapping; layouts match) and
        // verify with the DD checker instead of dense matrices.
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        circ.swap(1, 2).unwrap();
        circ.t(0).unwrap();
        let options = qukit_terra::transpiler::TranspileOptions::for_simulator(3);
        let transpiled = qukit_terra::transpiler::transpile(&circ, &options).unwrap();
        assert!(assert_equivalent(&circ, &transpiled.circuit).unwrap());
    }

    #[test]
    fn measurement_is_rejected() {
        let mut a = QuantumCircuit::with_size(1, 1);
        a.measure(0, 0).unwrap();
        let b = QuantumCircuit::new(1);
        assert!(check_equivalence(&a, &b).is_err());
    }

    #[test]
    fn normalization_check() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!(is_normalized(&state));
        let _ = Gate::H; // keep import used
    }
}
