//! Decision-diagram based equivalence checking.
//!
//! The paper highlights DDs not only for simulation but for *verification*
//! (its references [22], [33]): two circuits are equivalent iff
//! `U₁ · U₂†` is the identity up to global phase — a check that stays in
//! the compressed representation throughout, and therefore scales far past
//! dense-matrix comparison on structured circuits.

use crate::package::{DdPackage, Edge, TERMINAL, W_ONE};
use crate::simulator::{DdError, DdSimulator};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::gate::Gate;
use qukit_terra::instruction::Operation;
use qukit_terra::matrix::Matrix;

/// The result of an equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Equivalence {
    /// The circuits implement identical unitaries.
    Equivalent,
    /// Identical up to the given global phase (radians).
    EquivalentUpToPhase(f64),
    /// The circuits differ.
    NotEquivalent,
}

impl Equivalence {
    /// Returns `true` for either equivalence flavour.
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::NotEquivalent)
    }
}

/// Checks whether two unitary circuits of the same width are equivalent,
/// entirely on decision diagrams: builds `U₁ · U₂†` by multiplying `U₂`'s
/// gates *inverted and reversed* onto `U₁`, then tests the result against
/// the identity DD.
///
/// # Errors
///
/// Returns [`DdError::UnsupportedInstruction`] for non-unitary circuits.
///
/// # Panics
///
/// Panics if the circuits have different widths.
pub fn check_equivalence(
    circuit_a: &QuantumCircuit,
    circuit_b: &QuantumCircuit,
) -> Result<Equivalence, DdError> {
    assert_eq!(
        circuit_a.num_qubits(),
        circuit_b.num_qubits(),
        "equivalence checking requires equal widths"
    );
    let n = circuit_a.num_qubits();
    let mut package = DdPackage::new(n);
    let mut acc = package.identity();
    package.inc_ref_matrix(acc);
    // U_a, applied left to right.
    for inst in circuit_a.instructions() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let gate_dd = package.gate_matrix(&g.matrix(), &inst.qubits);
                accumulate(&mut package, &mut acc, gate_dd);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    // U_b† applied on the left: multiply the inverses in reverse order.
    for inst in circuit_b.instructions().iter().rev() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let gate_dd = package.gate_matrix(&g.inverse().matrix(), &inst.qubits);
                accumulate(&mut package, &mut acc, gate_dd);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    Ok(classify_identity(&mut package, acc, circuit_a, circuit_b))
}

/// `acc ← gate · acc` with the accumulator rc-protected across the
/// between-gates GC safe point (the checker's product chain can grow far
/// past the simulator's state DDs, so reclaiming dead intermediates is
/// what keeps long verifications memory-bounded).
fn accumulate(package: &mut DdPackage, acc: &mut Edge, gate: Edge) {
    let next = package.multiply_mm(gate, *acc);
    package.inc_ref_matrix(next);
    package.dec_ref_matrix(*acc);
    *acc = next;
    package.maybe_collect();
}

fn classify_identity(
    package: &mut DdPackage,
    result: Edge,
    a: &QuantumCircuit,
    b: &QuantumCircuit,
) -> Equivalence {
    // The identity DD has the canonical chain structure: compare nodes,
    // then account for the top weight (the global phase).
    let identity = package.identity();
    if result.node != identity.node {
        return Equivalence::NotEquivalent;
    }
    let weight = package.weight(result.weight);
    if (weight.norm() - 1.0).abs() > 1e-9 {
        return Equivalence::NotEquivalent;
    }
    let phase = weight.arg() + b.global_phase() - a.global_phase();
    // Normalize phase into (-π, π].
    let phase = (-phase).rem_euclid(std::f64::consts::TAU);
    let phase = if phase > std::f64::consts::PI { phase - std::f64::consts::TAU } else { phase };
    if phase.abs() < 1e-9 {
        Equivalence::Equivalent
    } else {
        Equivalence::EquivalentUpToPhase(-phase)
    }
}

/// Checks a mapped (transpiled) circuit against its original, accounting
/// for the permuted layouts the mapper introduced.
///
/// `initial_layout[q]` / `final_layout[q]` give the physical wire holding
/// logical qubit `q` before / after the mapped circuit (the
/// `TranspileResult` fields). The check is performed on the subspace
/// reachable from `|0…0⟩` — ancilla wires (physical positions not in the
/// initial layout) are pinned to `|0⟩` with projectors, exactly the
/// semantics of executing on a freshly initialized device register. The
/// equivalence condition `U_mapped · Π₀ = e^{iφ} · U_original↑ · P · Π₀`
/// is tested as a *single* product chain
///
/// ```text
/// E = P† · U_original↑† · U_mapped · Π₀   (must equal e^{iφ} · Π₀)
/// ```
///
/// where `Π₀` projects the ancilla inputs onto `|0⟩`, `P` is the wire
/// permutation taking each initial position to the corresponding final
/// position, and `U_original↑` is the original circuit relabeled onto the
/// final layout. Accumulating one chain (rather than building both sides
/// separately and comparing) makes floating-point rounding cancel the
/// same way it does in [`check_equivalence`]; canonicity of the DD then
/// reduces the comparison to a node identity against `Π₀` plus one
/// weight ratio (the global phase).
///
/// # Errors
///
/// Returns [`DdError::UnsupportedInstruction`] for non-unitary circuits.
///
/// # Panics
///
/// Panics on inconsistent widths or invalid layouts (wrong length,
/// duplicate or out-of-range positions).
pub fn check_equivalence_mapped(
    original: &QuantumCircuit,
    mapped: &QuantumCircuit,
    initial_layout: &[usize],
    final_layout: &[usize],
) -> Result<Equivalence, DdError> {
    let n = original.num_qubits();
    let m = mapped.num_qubits();
    assert!(m >= n, "mapped circuit must be at least as wide as the original");
    validate_layout(initial_layout, n, m);
    validate_layout(final_layout, n, m);

    let mut package = DdPackage::new(m);
    let projector = ancilla_projector(&mut package, initial_layout, m);
    package.inc_ref_matrix(projector);

    let mut acc = projector;
    package.inc_ref_matrix(acc);
    apply_gates(&mut package, &mut acc, mapped)?;
    // U_original↑†: inverses in reverse order, relabeled onto the final
    // layout.
    for inst in original.instructions().iter().rev() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let qubits: Vec<usize> = inst.qubits.iter().map(|&q| final_layout[q]).collect();
                let gate_dd = package.gate_matrix(&g.inverse().matrix(), &qubits);
                accumulate(&mut package, &mut acc, gate_dd);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    // P†: the permutation's transpositions, undone in reverse order.
    let perm = complete_permutation(initial_layout, final_layout, m);
    for (a, b) in permutation_swaps(&perm).into_iter().rev() {
        let swap = package.gate_matrix(&Gate::Swap.matrix(), &[a, b]);
        accumulate(&mut package, &mut acc, swap);
    }

    if acc.node != projector.node {
        return Ok(Equivalence::NotEquivalent);
    }
    let we = package.weight(acc.weight);
    let wp = package.weight(projector.weight);
    if (we.norm() / wp.norm() - 1.0).abs() > 1e-9 {
        return Ok(Equivalence::NotEquivalent);
    }
    let ratio = we * wp.recip();
    let phase = ratio.arg() + mapped.global_phase() - original.global_phase();
    let phase = phase.rem_euclid(std::f64::consts::TAU);
    let phase = if phase > std::f64::consts::PI { phase - std::f64::consts::TAU } else { phase };
    if phase.abs() < 1e-9 {
        Ok(Equivalence::Equivalent)
    } else {
        Ok(Equivalence::EquivalentUpToPhase(phase))
    }
}

fn validate_layout(layout: &[usize], n: usize, m: usize) {
    assert_eq!(layout.len(), n, "layout must assign every logical qubit");
    let mut seen = vec![false; m];
    for &p in layout {
        assert!(p < m, "layout position {p} out of range for {m} physical qubits");
        assert!(!seen[p], "layout position {p} repeated");
        seen[p] = true;
    }
}

/// Left-multiplies the gates of `circuit` onto `acc`.
fn apply_gates(
    package: &mut DdPackage,
    acc: &mut Edge,
    circuit: &QuantumCircuit,
) -> Result<(), DdError> {
    for inst in circuit.instructions() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                let gate_dd = package.gate_matrix(&g.matrix(), &inst.qubits);
                accumulate(package, acc, gate_dd);
            }
            Operation::Barrier => {}
            other => return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() }),
        }
    }
    Ok(())
}

/// `|0⟩⟨0|` on every physical wire that holds no logical qubit at input.
fn ancilla_projector(package: &mut DdPackage, initial_layout: &[usize], m: usize) -> Edge {
    let mut is_logical = vec![false; m];
    for &p in initial_layout {
        is_logical[p] = true;
    }
    let mut proj = Matrix::zeros(2, 2);
    proj[(0, 0)] = Complex::ONE;
    let mut acc = package.identity();
    for q in (0..m).filter(|&q| !is_logical[q]) {
        let p = package.gate_matrix(&proj, &[q]);
        acc = package.multiply_mm(p, acc);
    }
    acc
}

/// Extends the logical-position relocation `initial → final` to a full
/// permutation of the `m` physical wires. Ancilla sources map onto ancilla
/// targets in index order; because ancilla inputs are projected onto `|0⟩`
/// the choice of completion does not affect the checked operator.
fn complete_permutation(initial_layout: &[usize], final_layout: &[usize], m: usize) -> Vec<usize> {
    let mut perm = vec![usize::MAX; m];
    let mut target_taken = vec![false; m];
    for (q, &src) in initial_layout.iter().enumerate() {
        perm[src] = final_layout[q];
        target_taken[final_layout[q]] = true;
    }
    let mut free_targets = (0..m).filter(|&t| !target_taken[t]);
    for slot in perm.iter_mut() {
        if *slot == usize::MAX {
            *slot = free_targets.next().expect("completion target available");
        }
    }
    perm
}

/// Decomposes a wire permutation (`bit starting at s ends at perm[s]`) into
/// a sequence of transpositions, to be applied to the state in order.
fn permutation_swaps(perm: &[usize]) -> Vec<(usize, usize)> {
    let mut swaps = Vec::new();
    // current[s] = present position of the bit that started at wire s.
    let mut current: Vec<usize> = (0..perm.len()).collect();
    for s in 0..perm.len() {
        while current[s] != perm[s] {
            let from = current[s];
            let to = perm[s];
            swaps.push((from, to));
            // The bit occupying `to` moves back to `from`.
            for c in current.iter_mut() {
                if *c == to {
                    *c = from;
                } else if *c == from {
                    *c = to;
                }
            }
        }
    }
    swaps
}

/// Convenience wrapper: equivalence of a circuit against its transpiled
/// form *ignoring* qubit relabeling is not meaningful, so this checks two
/// same-layout circuits only. For mapped circuits, conjugate with the
/// layout permutation first.
///
/// # Errors
///
/// Propagates [`check_equivalence`] errors.
pub fn assert_equivalent(a: &QuantumCircuit, b: &QuantumCircuit) -> Result<bool, DdError> {
    Ok(check_equivalence(a, b)?.is_equivalent())
}

/// Verifies that a state DD is normalized — a cheap sanity check exposed
/// for test harnesses.
pub fn is_normalized(simulated: &crate::simulator::DdState) -> bool {
    let _ = DdSimulator::new(); // anchor the public type in rustdoc
    let root = simulated.root;
    if root.node == TERMINAL {
        return root.weight == W_ONE;
    }
    (simulated.package.vector_norm_sqr(root) - 1.0).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::gate::Gate;

    #[test]
    fn identical_circuits_are_equivalent() {
        let circ = qukit_terra::circuit::fig1_circuit();
        let result = check_equivalence(&circ, &circ).unwrap();
        assert_eq!(result, Equivalence::Equivalent);
    }

    #[test]
    fn rewritten_circuits_are_equivalent() {
        // H·H = I, CX·CX = I around a T gate.
        let mut a = QuantumCircuit::new(2);
        a.t(0).unwrap();
        let mut b = QuantumCircuit::new(2);
        b.h(1).unwrap();
        b.cx(0, 1).unwrap();
        b.cx(0, 1).unwrap();
        b.h(1).unwrap();
        b.t(0).unwrap();
        assert!(assert_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn phase_equivalence_is_distinguished() {
        // Z X Z X = -I: equivalent to the identity only up to phase π.
        let mut a = QuantumCircuit::new(1);
        a.z(0).unwrap();
        a.x(0).unwrap();
        a.z(0).unwrap();
        a.x(0).unwrap();
        let b = QuantumCircuit::new(1);
        match check_equivalence(&a, &b).unwrap() {
            Equivalence::EquivalentUpToPhase(phase) => {
                assert!((phase.abs() - std::f64::consts::PI).abs() < 1e-9, "phase {phase}");
            }
            other => panic!("expected phase equivalence, got {other:?}"),
        }
    }

    #[test]
    fn different_circuits_are_rejected() {
        let mut a = QuantumCircuit::new(2);
        a.cx(0, 1).unwrap();
        let mut b = QuantumCircuit::new(2);
        b.cx(1, 0).unwrap();
        assert_eq!(check_equivalence(&a, &b).unwrap(), Equivalence::NotEquivalent);

        let mut c = QuantumCircuit::new(2);
        c.rx(0.3, 0).unwrap();
        let mut d = QuantumCircuit::new(2);
        d.rx(0.3001, 0).unwrap();
        assert_eq!(check_equivalence(&c, &d).unwrap(), Equivalence::NotEquivalent);
    }

    #[test]
    fn transpiler_output_verifies_on_dds() {
        // End-to-end: decompose+optimize (no mapping; layouts match) and
        // verify with the DD checker instead of dense matrices.
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        circ.swap(1, 2).unwrap();
        circ.t(0).unwrap();
        let options = qukit_terra::transpiler::TranspileOptions::for_simulator(3);
        let transpiled = qukit_terra::transpiler::transpile(&circ, &options).unwrap();
        assert!(assert_equivalent(&circ, &transpiled.circuit).unwrap());
    }

    #[test]
    fn mapped_check_with_trivial_layout_matches_plain_check() {
        let circ = qukit_terra::circuit::fig1_circuit();
        let layout: Vec<usize> = (0..circ.num_qubits()).collect();
        let result = check_equivalence_mapped(&circ, &circ, &layout, &layout).unwrap();
        assert_eq!(result, Equivalence::Equivalent);
    }

    #[test]
    fn mapped_check_accounts_for_swap_insertion() {
        // Original: CX(0,1). Mapped: the router swapped the wires first, so
        // the gate acts on the exchanged positions and the final layout is
        // reversed.
        let mut original = QuantumCircuit::new(2);
        original.cx(0, 1).unwrap();
        let mut mapped = QuantumCircuit::new(2);
        mapped.swap(0, 1).unwrap();
        mapped.cx(1, 0).unwrap();
        let result = check_equivalence_mapped(&original, &mapped, &[0, 1], &[1, 0]).unwrap();
        assert_eq!(result, Equivalence::Equivalent);
        // With the final layout mis-declared the circuits must differ.
        let wrong = check_equivalence_mapped(&original, &mapped, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(wrong, Equivalence::NotEquivalent);
    }

    #[test]
    fn mapped_check_verifies_real_transpiler_output() {
        // GHZ on non-adjacent qubits forces the mapper to insert swaps on
        // the QX4 coupling map; the transpiled circuit is wider (5 wires)
        // than the logical circuit (3 wires).
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(2, 1).unwrap();
        circ.t(1).unwrap();
        let options = qukit_terra::transpiler::TranspileOptions::for_device(
            qukit_terra::coupling::CouplingMap::ibm_qx4(),
        );
        let result = qukit_terra::transpiler::transpile(&circ, &options).unwrap();
        let verdict = check_equivalence_mapped(
            &circ,
            &result.circuit,
            &result.initial_layout,
            &result.final_layout,
        )
        .unwrap();
        assert!(verdict.is_equivalent(), "transpiled GHZ must verify, got {verdict:?}");
    }

    #[test]
    fn mapped_check_catches_a_mutated_mapped_circuit() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 2).unwrap();
        let options = qukit_terra::transpiler::TranspileOptions::for_device(
            qukit_terra::coupling::CouplingMap::ibm_qx4(),
        );
        let result = qukit_terra::transpiler::transpile(&circ, &options).unwrap();
        let mut broken = result.circuit.clone();
        broken.z(0).unwrap();
        let verdict =
            check_equivalence_mapped(&circ, &broken, &result.initial_layout, &result.final_layout)
                .unwrap();
        assert_eq!(verdict, Equivalence::NotEquivalent);
    }

    #[test]
    fn permutation_swaps_compose_to_the_permutation() {
        let perm = vec![2, 0, 1, 4, 3];
        let swaps = permutation_swaps(&perm);
        let mut current: Vec<usize> = (0..perm.len()).collect();
        for (a, b) in swaps {
            for c in current.iter_mut() {
                if *c == a {
                    *c = b;
                } else if *c == b {
                    *c = a;
                }
            }
        }
        assert_eq!(current, perm);
    }

    #[test]
    fn measurement_is_rejected() {
        let mut a = QuantumCircuit::with_size(1, 1);
        a.measure(0, 0).unwrap();
        let b = QuantumCircuit::new(1);
        assert!(check_equivalence(&a, &b).is_err());
    }

    #[test]
    fn normalization_check() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!(is_normalized(&state));
        let _ = Gate::H; // keep import used
    }
}
