//! Circuit-level decision-diagram simulation.
//!
//! [`DdSimulator`] drives a [`DdPackage`] over a `QuantumCircuit`: the
//! complete "advanced simulation" flow of the paper's Section V-A,
//! including measurement sampling directly from the compressed
//! representation (no statevector is ever materialized).

use crate::package::{DdPackage, Edge, TERMINAL};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::instruction::Operation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Memoization key for a gate's matrix DD: the exact bit patterns of the
/// matrix entries plus the qubit placement. Repeated gates (the common
/// case — think the CX ladder of a GHZ preparation or the controlled-phase
/// grid of a QFT) skip `gate_matrix` reconstruction entirely.
#[derive(PartialEq, Eq, Hash)]
struct GateKey {
    bits: Box<[u64]>,
    qubits: Box<[usize]>,
}

impl GateKey {
    fn new(matrix: &qukit_terra::matrix::Matrix, qubits: &[usize]) -> Self {
        let mut bits = Vec::with_capacity(matrix.rows() * matrix.cols() * 2);
        for r in 0..matrix.rows() {
            for c in 0..matrix.cols() {
                let v = matrix[(r, c)];
                bits.push(v.re.to_bits());
                bits.push(v.im.to_bits());
            }
        }
        Self { bits: bits.into_boxed_slice(), qubits: qubits.to_vec().into_boxed_slice() }
    }
}

/// Paths-to-outcomes enumeration bound for [`DdState::sample_counts`]:
/// if the state has at most this many nonzero basis outcomes, sampling
/// collapses to one categorical draw per shot over the enumerated
/// distribution instead of a per-shot DD walk.
const ENUMERATE_CAP: usize = 2048;

/// Errors produced by the DD simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdError {
    /// Instruction unsupported in pure-state DD simulation.
    UnsupportedInstruction {
        /// Instruction name.
        name: String,
    },
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::UnsupportedInstruction { name } => {
                write!(f, "instruction '{name}' is not supported by the DD simulator")
            }
        }
    }
}

impl std::error::Error for DdError {}

/// The result of a DD simulation: the final state as a DD plus telemetry.
#[derive(Debug)]
pub struct DdState {
    /// The package owning the diagram.
    pub package: DdPackage,
    /// Edge to the final state.
    pub root: Edge,
    /// Maximum node count observed during simulation (memory high-water
    /// mark — the DD analogue of the `2^n` amplitude array).
    pub peak_nodes: usize,
}

impl DdState {
    /// Number of nodes in the final state DD.
    pub fn node_count(&self) -> usize {
        self.package.vector_nodes(self.root)
    }

    /// Amplitude of a basis state.
    pub fn amplitude(&self, index: usize) -> qukit_terra::complex::Complex {
        self.package.amplitude(self.root, index)
    }

    /// Materializes the dense statevector (exponential; small circuits).
    pub fn to_statevector(&self) -> Vec<qukit_terra::complex::Complex> {
        self.package.to_statevector(self.root)
    }

    /// Samples `shots` measurement outcomes of all qubits directly from the
    /// DD, without materializing amplitudes: at each node the branch
    /// probability is `|w_b|² · ‖child‖²`.
    ///
    /// The subtree-norm cache is built exactly once (an iterative
    /// post-order walk into a flat per-node buffer) and reused across all
    /// shots. When the state has few nonzero outcomes (≤
    /// [`ENUMERATE_CAP`]) the distribution is enumerated up front and each
    /// shot is one binary search over the CDF; otherwise shots walk the
    /// diagram and repeated outcomes are deduped before recording.
    pub fn sample_counts(&self, shots: usize, seed: u64) -> qukit_aer::counts::Counts {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.package.num_qubits();
        let mut counts = qukit_aer::counts::Counts::new(n.min(64));
        if shots == 0 {
            return counts;
        }
        // Subtree squared norms, computed once for the whole run.
        let mut norms = vec![f64::NAN; self.package.vnode_arena_len()];
        let root_norm = self.package.node_norms_into(self.root.node, &mut norms);
        if let Some(outcomes) = self.enumerate_outcomes(ENUMERATE_CAP) {
            // Categorical sampling: cumulative weights + binary search.
            let mut cdf = Vec::with_capacity(outcomes.len());
            let mut total = 0.0f64;
            for &(_, p) in &outcomes {
                total += p;
                cdf.push(total);
            }
            let mut hits = vec![0usize; outcomes.len()];
            for _ in 0..shots {
                let r = rng.gen::<f64>() * total;
                let idx = cdf.partition_point(|&acc| acc < r).min(outcomes.len() - 1);
                hits[idx] += 1;
            }
            for (idx, &hit) in hits.iter().enumerate() {
                if hit > 0 {
                    counts.record_n(outcomes[idx].0, hit);
                }
            }
        } else {
            // Too many distinct outcomes to enumerate: walk per shot, but
            // aggregate duplicates before touching the counts map.
            let mut dedup: HashMap<u64, usize> = HashMap::new();
            for _ in 0..shots {
                let outcome = self.walk_once(&mut rng, &norms, root_norm);
                *dedup.entry(outcome).or_insert(0) += 1;
            }
            for (outcome, hit) in dedup {
                counts.record_n(outcome, hit);
            }
        }
        counts
    }

    /// Enumerates all `(outcome, unnormalized probability)` pairs of the
    /// state, or `None` if there are more than `cap` nonzero outcomes. The
    /// probability of a complete path is the product of its squared edge
    /// magnitudes (normalization-correct because the per-node sum of those
    /// products is exactly the subtree norm).
    fn enumerate_outcomes(&self, cap: usize) -> Option<Vec<(u64, f64)>> {
        let mut outcomes: Vec<(u64, f64)> = Vec::new();
        let mut stack: Vec<(u32, u64, f64)> = vec![(self.root.node, 0, 1.0)];
        while let Some((node, prefix, acc)) = stack.pop() {
            if node == TERMINAL {
                if outcomes.len() == cap {
                    return None;
                }
                outcomes.push((prefix, acc));
                continue;
            }
            let level = self.package.vector_level_of(node);
            for bit in 0..2u64 {
                let child = self.package.vector_child(node, bit as usize);
                if child.is_zero() {
                    continue;
                }
                let p = acc * self.package.weight(child.weight).norm_sqr();
                if p > 0.0 {
                    stack.push((child.node, prefix | (bit << (level - 1)), p));
                }
            }
        }
        Some(outcomes)
    }

    /// One top-down sampling walk using the prebuilt subtree-norm buffer.
    fn walk_once(&self, rng: &mut StdRng, norms: &[f64], root_norm: f64) -> u64 {
        let mut outcome = 0u64;
        let mut node = self.root.node;
        let mut subtree = root_norm;
        while node != TERMINAL {
            let level = self.package.vector_level_of(node);
            let zero_child = self.package.vector_child(node, 0);
            let one_child = self.package.vector_child(node, 1);
            let branch = |child: Edge| {
                if child.is_zero() {
                    0.0
                } else {
                    self.package.weight(child.weight).norm_sqr() * norms[child.node as usize]
                }
            };
            let p0 = branch(zero_child);
            let p1 = branch(one_child);
            let total = if subtree > 0.0 { p0 + p1 } else { 0.0 };
            let bit = if total <= 0.0 {
                0
            } else if rng.gen::<f64>() * total < p1 {
                1
            } else {
                0
            };
            let next = if bit == 1 { one_child } else { zero_child };
            if bit == 1 {
                outcome |= 1 << (level - 1);
            }
            subtree = if next.is_zero() { 0.0 } else { norms[next.node as usize] };
            node = next.node;
        }
        outcome
    }
}

/// Decision-diagram circuit simulator.
///
/// # Examples
///
/// ```
/// use qukit_dd::simulator::DdSimulator;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_dd::simulator::DdError> {
/// let mut ghz = QuantumCircuit::new(10);
/// ghz.h(0).unwrap();
/// for q in 1..10 {
///     ghz.cx(q - 1, q).unwrap();
/// }
/// let state = DdSimulator::new().run(&ghz)?;
/// // 1024 amplitudes, but only 19 DD nodes.
/// assert_eq!(state.node_count(), 19);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DdSimulator {
    cache_enabled: bool,
}

impl Default for DdSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl DdSimulator {
    /// Creates the simulator (compute-table caching enabled).
    pub fn new() -> Self {
        Self { cache_enabled: true }
    }

    /// Disables the compute-table cache — the ablation knob for the
    /// caching benchmark.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Simulates a unitary circuit, returning the final state as a DD.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::UnsupportedInstruction`] for measurement, reset
    /// or conditioned gates (sample measurement outcomes from the returned
    /// [`DdState`] instead).
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<DdState, DdError> {
        let _span = qukit_obs::span!(
            "dd.run",
            qubits = circuit.num_qubits(),
            gates = circuit.instructions().len()
        );
        qukit_obs::counter_inc("qukit_dd_runs_total");
        let mut package = DdPackage::new(circuit.num_qubits());
        package.set_cache_enabled(self.cache_enabled);
        let mut root = package.zero_state();
        package.inc_ref(root);
        // Gate DDs memoized across the run; each memoized edge is
        // rc-protected so it survives collections.
        let mut gate_memo: HashMap<GateKey, Edge> = HashMap::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    let matrix = g.matrix();
                    let key = GateKey::new(&matrix, &inst.qubits);
                    let gate_dd = match gate_memo.get(&key) {
                        Some(&edge) => edge,
                        None => {
                            let edge = package.gate_matrix(&matrix, &inst.qubits);
                            package.inc_ref_matrix(edge);
                            gate_memo.insert(key, edge);
                            edge
                        }
                    };
                    let next = package.multiply_mv(gate_dd, root);
                    package.inc_ref(next);
                    package.dec_ref(root);
                    root = next;
                    // Safe point: the state and every memoized gate are
                    // rc-protected, nothing else must survive.
                    package.maybe_collect();
                }
                Operation::Barrier => {}
                other => {
                    return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() })
                }
            }
        }
        let peak = package.peak_live_nodes();
        let state = DdState { package, root, peak_nodes: peak };
        flush_dd_metrics(&state.package, state.node_count(), peak);
        Ok(state)
    }

    /// Builds the full circuit unitary as a matrix DD (the paper's Fig. 3
    /// object) and returns `(package, edge)`.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::UnsupportedInstruction`] for non-unitary
    /// instructions.
    pub fn build_unitary(&self, circuit: &QuantumCircuit) -> Result<(DdPackage, Edge), DdError> {
        let mut package = DdPackage::new(circuit.num_qubits());
        package.set_cache_enabled(self.cache_enabled);
        let mut acc = package.identity();
        package.inc_ref_matrix(acc);
        let mut gate_memo: HashMap<GateKey, Edge> = HashMap::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    let matrix = g.matrix();
                    let key = GateKey::new(&matrix, &inst.qubits);
                    let gate_dd = match gate_memo.get(&key) {
                        Some(&edge) => edge,
                        None => {
                            let edge = package.gate_matrix(&matrix, &inst.qubits);
                            package.inc_ref_matrix(edge);
                            gate_memo.insert(key, edge);
                            edge
                        }
                    };
                    let next = package.multiply_mm(gate_dd, acc);
                    package.inc_ref_matrix(next);
                    package.dec_ref_matrix(acc);
                    acc = next;
                    package.maybe_collect();
                }
                Operation::Barrier => {}
                other => {
                    return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() })
                }
            }
        }
        Ok((package, acc))
    }
}

/// Flushes package health counters (collected as plain fields on the hot
/// path) into the global metrics registry. A no-op when metrics are off.
fn flush_dd_metrics(package: &DdPackage, final_nodes: usize, peak_nodes: usize) {
    if !qukit_obs::enabled() {
        return;
    }
    let stats = package.stats();
    qukit_obs::counter_add("qukit_dd_unique_hits_total", stats.unique_hits);
    qukit_obs::counter_add("qukit_dd_unique_misses_total", stats.unique_misses);
    qukit_obs::counter_add("qukit_dd_compute_hits_total", stats.compute_hits);
    qukit_obs::counter_add("qukit_dd_compute_misses_total", stats.compute_misses);
    qukit_obs::counter_add("qukit_dd_weight_collisions_total", stats.weight_collisions);
    qukit_obs::counter_add("qukit_dd_gc_events_total", stats.gc_events);
    qukit_obs::counter_add("qukit_dd_gc_runs_total", stats.gc_runs);
    qukit_obs::counter_add("qukit_dd_gc_reclaimed_total", stats.gc_reclaimed);
    qukit_obs::gauge_set("qukit_dd_nodes", final_nodes as f64);
    qukit_obs::gauge_set("qukit_dd_peak_nodes", peak_nodes as f64);
    qukit_obs::gauge_set("qukit_dd_live_nodes", package.live_nodes() as f64);
    qukit_obs::gauge_set("qukit_dd_peak_live_nodes", package.peak_live_nodes() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::circuit::fig1_circuit;

    #[test]
    fn fig1_matches_reference_simulation() {
        let circ = fig1_circuit();
        let state = DdSimulator::new().run(&circ).unwrap();
        let expected = qukit_terra::reference::statevector(&circ).unwrap();
        let actual = state.to_statevector();
        for (a, b) in actual.iter().zip(&expected) {
            assert!(a.approx_eq_eps(*b, 1e-9));
        }
    }

    #[test]
    fn unitary_dd_matches_reference_unitary() {
        let circ = fig1_circuit();
        let (package, edge) = DdSimulator::new().build_unitary(&circ).unwrap();
        let dense = package.to_matrix(edge);
        let expected = qukit_terra::reference::unitary(&circ).unwrap();
        assert!(dense.approx_eq_eps(&expected, 1e-9));
    }

    #[test]
    fn ghz_sampling_yields_only_two_outcomes() {
        let n = 8;
        let mut ghz = QuantumCircuit::new(n);
        ghz.h(0).unwrap();
        for q in 1..n {
            ghz.cx(q - 1, q).unwrap();
        }
        let state = DdSimulator::new().run(&ghz).unwrap();
        let counts = state.sample_counts(2000, 5);
        let all_ones = (1u64 << n) - 1;
        assert_eq!(counts.get_value(0) + counts.get_value(all_ones), 2000);
        let balance = counts.probability(0);
        assert!((balance - 0.5).abs() < 0.05, "balance {balance}");
    }

    #[test]
    fn sampling_matches_amplitudes_on_uneven_distribution() {
        let mut circ = QuantumCircuit::new(1);
        circ.ry(1.0, 0).unwrap(); // cos²(0.5) ≈ 0.7702 for |0⟩
        let state = DdSimulator::new().run(&circ).unwrap();
        let counts = state.sample_counts(4000, 9);
        let p0 = counts.probability(0);
        let expected = (0.5f64).cos().powi(2);
        assert!((p0 - expected).abs() < 0.03, "p0 {p0} vs {expected}");
    }

    #[test]
    fn measurement_is_rejected() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        let err = DdSimulator::new().run(&circ).unwrap_err();
        assert!(err.to_string().contains("measure"));
    }

    #[test]
    fn barriers_are_ignored() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.barrier_all();
        circ.cx(0, 1).unwrap();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!((state.amplitude(0).norm_sqr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn without_cache_gives_identical_state() {
        let circ = fig1_circuit();
        let cached = DdSimulator::new().run(&circ).unwrap();
        let uncached = DdSimulator::new().without_cache().run(&circ).unwrap();
        let a = cached.to_statevector();
        let b = uncached.to_statevector();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.approx_eq_eps(*y, 1e-9));
        }
    }

    #[test]
    fn peak_nodes_is_reported() {
        let circ = fig1_circuit();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!(state.peak_nodes >= state.node_count());
    }
}
