//! Circuit-level decision-diagram simulation.
//!
//! [`DdSimulator`] drives a [`DdPackage`] over a `QuantumCircuit`: the
//! complete "advanced simulation" flow of the paper's Section V-A,
//! including measurement sampling directly from the compressed
//! representation (no statevector is ever materialized).

use crate::package::{DdPackage, Edge};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::instruction::Operation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Errors produced by the DD simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdError {
    /// Instruction unsupported in pure-state DD simulation.
    UnsupportedInstruction {
        /// Instruction name.
        name: String,
    },
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::UnsupportedInstruction { name } => {
                write!(f, "instruction '{name}' is not supported by the DD simulator")
            }
        }
    }
}

impl std::error::Error for DdError {}

/// The result of a DD simulation: the final state as a DD plus telemetry.
#[derive(Debug)]
pub struct DdState {
    /// The package owning the diagram.
    pub package: DdPackage,
    /// Edge to the final state.
    pub root: Edge,
    /// Maximum node count observed during simulation (memory high-water
    /// mark — the DD analogue of the `2^n` amplitude array).
    pub peak_nodes: usize,
}

impl DdState {
    /// Number of nodes in the final state DD.
    pub fn node_count(&self) -> usize {
        self.package.vector_nodes(self.root)
    }

    /// Amplitude of a basis state.
    pub fn amplitude(&self, index: usize) -> qukit_terra::complex::Complex {
        self.package.amplitude(self.root, index)
    }

    /// Materializes the dense statevector (exponential; small circuits).
    pub fn to_statevector(&self) -> Vec<qukit_terra::complex::Complex> {
        self.package.to_statevector(self.root)
    }

    /// Samples `shots` measurement outcomes of all qubits directly from the
    /// DD, without materializing amplitudes: at each node the branch
    /// probability is `|w_b|² · ‖child‖²`.
    pub fn sample_counts(&self, shots: usize, seed: u64) -> qukit_aer::counts::Counts {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.package.num_qubits();
        let mut counts = qukit_aer::counts::Counts::new(n.min(64));
        // Cache of subtree squared norms.
        let mut norm_cache: HashMap<u32, f64> = HashMap::new();
        for _ in 0..shots {
            let outcome = self.sample_once(&mut rng, &mut norm_cache);
            counts.record(outcome);
        }
        counts
    }

    /// `‖w·subtree‖²` for an edge (the edge weight is included); subtree
    /// bodies are cached per node.
    fn subtree_norm(&self, edge: Edge, cache: &mut HashMap<u32, f64>) -> f64 {
        let w = self.package.weight(edge.weight).norm_sqr();
        if edge.node == crate::package::TERMINAL {
            return w;
        }
        if let Some(&v) = cache.get(&edge.node) {
            return w * v;
        }
        let mut body = 0.0;
        for bit in 0..2 {
            let child = self.package.vector_child(edge.node, bit);
            if !child.is_zero() {
                body += self.subtree_norm(child, cache);
            }
        }
        cache.insert(edge.node, body);
        w * body
    }

    fn sample_once(&self, rng: &mut StdRng, cache: &mut HashMap<u32, f64>) -> u64 {
        let mut outcome = 0u64;
        let mut edge = Edge { node: self.root.node, weight: crate::package::W_ONE };
        while edge.node != crate::package::TERMINAL {
            let level = self.package.vector_level(edge);
            let zero_child = self.package.vector_child(edge.node, 0);
            let one_child = self.package.vector_child(edge.node, 1);
            let p0 = self.subtree_norm(zero_child, cache);
            let p1 = self.subtree_norm(one_child, cache);
            let total = p0 + p1;
            let bit = if total <= 0.0 {
                0
            } else if rng.gen::<f64>() * total < p1 {
                1
            } else {
                0
            };
            if bit == 1 {
                outcome |= 1 << (level - 1);
            }
            let next = if bit == 1 { one_child } else { zero_child };
            edge = Edge { node: next.node, weight: crate::package::W_ONE };
        }
        outcome
    }
}

/// Decision-diagram circuit simulator.
///
/// # Examples
///
/// ```
/// use qukit_dd::simulator::DdSimulator;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_dd::simulator::DdError> {
/// let mut ghz = QuantumCircuit::new(10);
/// ghz.h(0).unwrap();
/// for q in 1..10 {
///     ghz.cx(q - 1, q).unwrap();
/// }
/// let state = DdSimulator::new().run(&ghz)?;
/// // 1024 amplitudes, but only 19 DD nodes.
/// assert_eq!(state.node_count(), 19);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DdSimulator {
    cache_enabled: bool,
}

impl Default for DdSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl DdSimulator {
    /// Creates the simulator (compute-table caching enabled).
    pub fn new() -> Self {
        Self { cache_enabled: true }
    }

    /// Disables the compute-table cache — the ablation knob for the
    /// caching benchmark.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Simulates a unitary circuit, returning the final state as a DD.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::UnsupportedInstruction`] for measurement, reset
    /// or conditioned gates (sample measurement outcomes from the returned
    /// [`DdState`] instead).
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<DdState, DdError> {
        let _span = qukit_obs::span!(
            "dd.run",
            qubits = circuit.num_qubits(),
            gates = circuit.instructions().len()
        );
        qukit_obs::counter_inc("qukit_dd_runs_total");
        let mut package = DdPackage::new(circuit.num_qubits());
        package.set_cache_enabled(self.cache_enabled);
        let mut root = package.zero_state();
        let mut peak = package.allocated_nodes();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    let gate_dd = package.gate_matrix(&g.matrix(), &inst.qubits);
                    root = package.multiply_mv(gate_dd, root);
                    peak = peak.max(package.allocated_nodes());
                }
                Operation::Barrier => {}
                other => {
                    return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() })
                }
            }
        }
        let state = DdState { package, root, peak_nodes: peak };
        flush_dd_metrics(&state.package, state.node_count(), peak);
        Ok(state)
    }

    /// Builds the full circuit unitary as a matrix DD (the paper's Fig. 3
    /// object) and returns `(package, edge)`.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::UnsupportedInstruction`] for non-unitary
    /// instructions.
    pub fn build_unitary(&self, circuit: &QuantumCircuit) -> Result<(DdPackage, Edge), DdError> {
        let mut package = DdPackage::new(circuit.num_qubits());
        package.set_cache_enabled(self.cache_enabled);
        let mut acc = package.identity();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    let gate_dd = package.gate_matrix(&g.matrix(), &inst.qubits);
                    acc = package.multiply_mm(gate_dd, acc);
                }
                Operation::Barrier => {}
                other => {
                    return Err(DdError::UnsupportedInstruction { name: other.name().to_owned() })
                }
            }
        }
        Ok((package, acc))
    }
}

/// Flushes package health counters (collected as plain fields on the hot
/// path) into the global metrics registry. A no-op when metrics are off.
fn flush_dd_metrics(package: &DdPackage, final_nodes: usize, peak_nodes: usize) {
    if !qukit_obs::enabled() {
        return;
    }
    let stats = package.stats();
    qukit_obs::counter_add("qukit_dd_unique_hits_total", stats.unique_hits);
    qukit_obs::counter_add("qukit_dd_unique_misses_total", stats.unique_misses);
    qukit_obs::counter_add("qukit_dd_compute_hits_total", stats.compute_hits);
    qukit_obs::counter_add("qukit_dd_compute_misses_total", stats.compute_misses);
    qukit_obs::counter_add("qukit_dd_weight_collisions_total", stats.weight_collisions);
    qukit_obs::counter_add("qukit_dd_gc_events_total", stats.gc_events);
    qukit_obs::gauge_set("qukit_dd_nodes", final_nodes as f64);
    qukit_obs::gauge_set("qukit_dd_peak_nodes", peak_nodes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::circuit::fig1_circuit;

    #[test]
    fn fig1_matches_reference_simulation() {
        let circ = fig1_circuit();
        let state = DdSimulator::new().run(&circ).unwrap();
        let expected = qukit_terra::reference::statevector(&circ).unwrap();
        let actual = state.to_statevector();
        for (a, b) in actual.iter().zip(&expected) {
            assert!(a.approx_eq_eps(*b, 1e-9));
        }
    }

    #[test]
    fn unitary_dd_matches_reference_unitary() {
        let circ = fig1_circuit();
        let (package, edge) = DdSimulator::new().build_unitary(&circ).unwrap();
        let dense = package.to_matrix(edge);
        let expected = qukit_terra::reference::unitary(&circ).unwrap();
        assert!(dense.approx_eq_eps(&expected, 1e-9));
    }

    #[test]
    fn ghz_sampling_yields_only_two_outcomes() {
        let n = 8;
        let mut ghz = QuantumCircuit::new(n);
        ghz.h(0).unwrap();
        for q in 1..n {
            ghz.cx(q - 1, q).unwrap();
        }
        let state = DdSimulator::new().run(&ghz).unwrap();
        let counts = state.sample_counts(2000, 5);
        let all_ones = (1u64 << n) - 1;
        assert_eq!(counts.get_value(0) + counts.get_value(all_ones), 2000);
        let balance = counts.probability(0);
        assert!((balance - 0.5).abs() < 0.05, "balance {balance}");
    }

    #[test]
    fn sampling_matches_amplitudes_on_uneven_distribution() {
        let mut circ = QuantumCircuit::new(1);
        circ.ry(1.0, 0).unwrap(); // cos²(0.5) ≈ 0.7702 for |0⟩
        let state = DdSimulator::new().run(&circ).unwrap();
        let counts = state.sample_counts(4000, 9);
        let p0 = counts.probability(0);
        let expected = (0.5f64).cos().powi(2);
        assert!((p0 - expected).abs() < 0.03, "p0 {p0} vs {expected}");
    }

    #[test]
    fn measurement_is_rejected() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        let err = DdSimulator::new().run(&circ).unwrap_err();
        assert!(err.to_string().contains("measure"));
    }

    #[test]
    fn barriers_are_ignored() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.barrier_all();
        circ.cx(0, 1).unwrap();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!((state.amplitude(0).norm_sqr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn without_cache_gives_identical_state() {
        let circ = fig1_circuit();
        let cached = DdSimulator::new().run(&circ).unwrap();
        let uncached = DdSimulator::new().without_cache().run(&circ).unwrap();
        let a = cached.to_statevector();
        let b = uncached.to_statevector();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.approx_eq_eps(*y, 1e-9));
        }
    }

    #[test]
    fn peak_nodes_is_reported() {
        let circ = fig1_circuit();
        let state = DdSimulator::new().run(&circ).unwrap();
        assert!(state.peak_nodes >= state.node_count());
    }
}
