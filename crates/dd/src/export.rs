//! Graphviz export of decision diagrams.
//!
//! Renders a vector or matrix DD in DOT format, reproducing the style of
//! the paper's Fig. 3b (nodes by qubit level, edge weights annotated).

use crate::package::{DdPackage, Edge, TERMINAL};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders a vector DD as a Graphviz `digraph`.
pub fn vector_to_dot(package: &DdPackage, root: Edge) -> String {
    let mut out = String::from("digraph dd {\n  rankdir=TB;\n  node [shape=circle];\n");
    let _ = writeln!(
        out,
        "  root [shape=point]; root -> n{} [label=\"{}\"];",
        root.node,
        format_weight(package, root.weight)
    );
    let mut seen = HashSet::new();
    let mut stack = vec![root.node];
    while let Some(node) = stack.pop() {
        if node == TERMINAL || !seen.insert(node) {
            continue;
        }
        let _ = writeln!(out, "  n{} [label=\"x{}\"];", node, package.vector_level_of(node) - 1);
        for bit in 0..2 {
            let child = package.vector_child(node, bit);
            if child.is_zero() {
                continue;
            }
            let style = if bit == 0 { "dashed" } else { "solid" };
            let _ = writeln!(
                out,
                "  n{} -> n{} [style={style}, label=\"{}\"];",
                node,
                child.node,
                format_weight(package, child.weight)
            );
            stack.push(child.node);
        }
    }
    out.push_str("  n0 [shape=box, label=\"1\"];\n}\n");
    out
}

fn format_weight(package: &DdPackage, w: crate::package::WeightId) -> String {
    let z = package.weight(w);
    if z.is_approx_one() {
        String::new()
    } else if z.im.abs() < 1e-12 {
        format!("{:.3}", z.re)
    } else {
        format!("{:.3}{}{:.3}i", z.re, if z.im >= 0.0 { "+" } else { "-" }, z.im.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::DdSimulator;
    use qukit_terra::circuit::QuantumCircuit;

    #[test]
    fn dot_output_contains_nodes_and_terminal() {
        let mut ghz = QuantumCircuit::new(3);
        ghz.h(0).unwrap();
        ghz.cx(0, 1).unwrap();
        ghz.cx(1, 2).unwrap();
        let state = DdSimulator::new().run(&ghz).unwrap();
        let dot = vector_to_dot(&state.package, state.root);
        assert!(dot.starts_with("digraph dd {"));
        assert!(dot.contains("x2"));
        assert!(dot.contains("shape=box"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
