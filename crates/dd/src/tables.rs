//! Hash tables tuned for the QMDD hot path.
//!
//! The DD literature (Zulehner & Wille TCAD'19; the MQT DDSIM package)
//! is explicit that the table layer dominates DD simulation cost: every
//! node creation is a unique-table lookup and every recursion step is a
//! compute-table lookup. `std::collections::HashMap` pays SipHash plus
//! rehash-on-grow on that path; this module replaces it with
//!
//! * [`fx_word`]-based hashing — an FxHash-style multiply-rotate over the
//!   packed node words, a handful of cycles per key;
//! * [`UniqueTable`] — an open-addressed, linear-probe index of node ids
//!   whose keys live in the package's node arena (the table itself stores
//!   only `u32` ids, so a probe touches one contiguous cache line);
//! * [`ComputeTable`] — a fixed-size direct-mapped *lossy* cache for the
//!   add/mv/mm operations: a new entry simply evicts whatever hashed to
//!   the same slot, so lookup and store are both O(1) and the memory
//!   bound is a compile-time constant;
//! * [`WeightTable`] — an open-addressed index of canonical complex
//!   weights keyed by their tolerance bucket, supporting the 9-bucket
//!   neighbour probe that unifies values straddling a bucket boundary.

use crate::package::Edge;

/// The FxHash multiplier (the same constant rustc's FxHasher uses).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Folds one 64-bit word into an FxHash-style running hash.
#[inline]
pub(crate) fn fx_word(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Packs an edge into a single hashable word.
#[inline]
pub(crate) fn pack_edge(edge: Edge) -> u64 {
    (u64::from(edge.node) << 32) | u64::from(edge.weight)
}

/// Empty-slot sentinel shared by the tables (node ids never reach it:
/// arenas are bounded well below `u32::MAX` entries).
const EMPTY: u32 = u32::MAX;

/// Open-addressed unique-table index: maps node *content* (stored in the
/// package arena) to the canonical node id. Linear probing, power-of-two
/// capacity, grows at 7/8 load. Deletion happens only wholesale — the GC
/// sweep rebuilds the table from the surviving nodes — so no tombstones
/// are needed.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Box<[u32]>,
    bits: u32,
    len: usize,
}

impl UniqueTable {
    /// Creates a table with `1 << bits` slots.
    pub(crate) fn new(bits: u32) -> Self {
        Self { slots: vec![EMPTY; 1 << bits].into_boxed_slice(), bits, len: 0 }
    }

    #[inline]
    fn index(&self, hash: u64) -> usize {
        // The multiply pushes entropy into the high bits; index from there.
        (hash >> (64 - self.bits)) as usize
    }

    /// Number of stored ids.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Probes for an id whose arena node matches, per the caller's
    /// equality predicate.
    #[inline]
    pub(crate) fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = self.index(hash);
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return None;
            }
            if eq(slot) {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a fresh id under `hash`. `rehash` recomputes the hash of an
    /// already-stored id (needed when the insert triggers a grow).
    pub(crate) fn insert(&mut self, hash: u64, id: u32, rehash: impl Fn(u32) -> u64) {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            let old = std::mem::replace(
                &mut self.slots,
                vec![EMPTY; 1 << (self.bits + 1)].into_boxed_slice(),
            );
            self.bits += 1;
            for slot in old.iter().copied().filter(|&s| s != EMPTY) {
                self.place(rehash(slot), slot);
            }
        }
        self.place(hash, id);
        self.len += 1;
    }

    #[inline]
    fn place(&mut self, hash: u64, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = self.index(hash);
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = id;
    }

    /// Drops every stored id (capacity is kept — the GC rebuild refills
    /// a table of the same size).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }
}

/// One direct-mapped compute-table entry: operands and cached result.
#[derive(Debug, Clone, Copy)]
struct ComputeEntry {
    a: Edge,
    b: Edge,
    result: Edge,
}

const EMPTY_ENTRY: ComputeEntry = ComputeEntry {
    a: Edge { node: EMPTY, weight: EMPTY },
    b: Edge { node: EMPTY, weight: EMPTY },
    result: Edge { node: EMPTY, weight: EMPTY },
};

/// Fixed-size direct-mapped lossy cache for one DD operation
/// (MQT-DDSIM style). Collisions overwrite — the cache trades recall for
/// O(1) cost and a hard memory bound, which on deep circuits beats an
/// unbounded map whose growth rehashes and whose footprint never shrinks.
#[derive(Debug)]
pub(crate) struct ComputeTable {
    entries: Box<[ComputeEntry]>,
    bits: u32,
}

impl ComputeTable {
    /// Creates a table with `1 << bits` entries.
    pub(crate) fn new(bits: u32) -> Self {
        Self { entries: vec![EMPTY_ENTRY; 1 << bits].into_boxed_slice(), bits }
    }

    #[inline]
    fn index(&self, a: Edge, b: Edge) -> usize {
        let hash = fx_word(fx_word(0, pack_edge(a)), pack_edge(b));
        (hash >> (64 - self.bits)) as usize
    }

    /// Returns the cached result for `(a, b)`, if this exact pair still
    /// occupies its slot.
    #[inline]
    pub(crate) fn lookup(&self, a: Edge, b: Edge) -> Option<Edge> {
        let entry = &self.entries[self.index(a, b)];
        (entry.a == a && entry.b == b).then_some(entry.result)
    }

    /// Stores `(a, b) -> result`, evicting whatever hashed to the slot.
    #[inline]
    pub(crate) fn store(&mut self, a: Edge, b: Edge, result: Edge) {
        let i = self.index(a, b);
        self.entries[i] = ComputeEntry { a, b, result };
    }

    /// Invalidates every entry (GC sweep: cached results may reference
    /// reclaimed nodes).
    pub(crate) fn reset(&mut self) {
        self.entries.fill(EMPTY_ENTRY);
    }
}

/// One weight-table slot: the tolerance-bucket key plus the weight id.
#[derive(Debug, Clone, Copy)]
struct WeightSlot {
    key: (i64, i64),
    id: u32,
}

/// Open-addressed index of canonical complex weights keyed by tolerance
/// bucket. Unlike a plain map it tolerates several entries under the same
/// bucket key (linear probing just walks past non-matching values), so a
/// bucket can never silently lose an earlier canonical weight.
#[derive(Debug)]
pub(crate) struct WeightTable {
    slots: Box<[WeightSlot]>,
    bits: u32,
    len: usize,
}

const EMPTY_WEIGHT: WeightSlot = WeightSlot { key: (0, 0), id: EMPTY };

impl WeightTable {
    /// Creates a table with `1 << bits` slots.
    pub(crate) fn new(bits: u32) -> Self {
        Self { slots: vec![EMPTY_WEIGHT; 1 << bits].into_boxed_slice(), bits, len: 0 }
    }

    #[inline]
    fn index(&self, key: (i64, i64)) -> usize {
        let hash = fx_word(fx_word(0, key.0 as u64), key.1 as u64);
        (hash >> (64 - self.bits)) as usize
    }

    /// Probes the bucket `key` for an id whose stored weight satisfies the
    /// caller's tolerance predicate.
    #[inline]
    pub(crate) fn find(
        &self,
        key: (i64, i64),
        mut matches: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = self.index(key);
        loop {
            let slot = self.slots[i];
            if slot.id == EMPTY {
                return None;
            }
            if slot.key == key && matches(slot.id) {
                return Some(slot.id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a fresh weight id under its bucket key.
    pub(crate) fn insert(&mut self, key: (i64, i64), id: u32) {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            let old = std::mem::replace(
                &mut self.slots,
                vec![EMPTY_WEIGHT; 1 << (self.bits + 1)].into_boxed_slice(),
            );
            self.bits += 1;
            for slot in old.iter().copied().filter(|s| s.id != EMPTY) {
                self.place(slot);
            }
        }
        self.place(WeightSlot { key, id });
        self.len += 1;
    }

    #[inline]
    fn place(&mut self, slot: WeightSlot) {
        let mask = self.slots.len() - 1;
        let mut i = self.index(slot.key);
        while self.slots[i].id != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(node: u32, weight: u32) -> Edge {
        Edge { node, weight }
    }

    #[test]
    fn unique_table_finds_by_content_and_grows() {
        // Keys live outside the table: simulate an arena of u64 keys.
        let arena: Vec<u64> = (0..2000).map(|i| i * 7919).collect();
        let hash = |k: u64| fx_word(0, k);
        let mut table = UniqueTable::new(4); // deliberately tiny: force growth
        for (id, &key) in arena.iter().enumerate() {
            assert_eq!(table.find(hash(key), |slot| arena[slot as usize] == key), None);
            table.insert(hash(key), id as u32, |slot| hash(arena[slot as usize]));
        }
        assert_eq!(table.len(), arena.len());
        for (id, &key) in arena.iter().enumerate() {
            assert_eq!(table.find(hash(key), |slot| arena[slot as usize] == key), Some(id as u32));
        }
        table.clear();
        assert_eq!(table.len(), 0);
        assert_eq!(table.find(hash(arena[0]), |slot| arena[slot as usize] == arena[0]), None);
    }

    #[test]
    fn compute_table_is_lossy_but_exact() {
        let mut table = ComputeTable::new(4);
        table.store(edge(1, 1), edge(2, 1), edge(3, 1));
        assert_eq!(table.lookup(edge(1, 1), edge(2, 1)), Some(edge(3, 1)));
        // A different pair either misses or (on slot collision) evicted the
        // original — it must never return a wrong result.
        assert_eq!(table.lookup(edge(2, 1), edge(1, 1)), None);
        for i in 0..100u32 {
            table.store(edge(i, 1), edge(i, 2), edge(i, 3));
        }
        for i in 0..100u32 {
            if let Some(result) = table.lookup(edge(i, 1), edge(i, 2)) {
                assert_eq!(result, edge(i, 3), "stale entries must never surface");
            }
        }
        table.reset();
        assert_eq!(table.lookup(edge(1, 1), edge(2, 1)), None);
    }

    #[test]
    fn weight_table_keeps_same_bucket_entries_distinct() {
        // Two ids under one bucket key: probing must keep both reachable.
        let mut table = WeightTable::new(4);
        table.insert((5, -3), 0);
        table.insert((5, -3), 1);
        assert_eq!(table.find((5, -3), |id| id == 0), Some(0));
        assert_eq!(table.find((5, -3), |id| id == 1), Some(1));
        assert_eq!(table.find((5, -3), |id| id == 9), None);
        assert_eq!(table.find((6, -3), |_| true), None);
        // Growth keeps every entry findable.
        for i in 2..200 {
            table.insert((i, i), i as u32);
        }
        assert_eq!(table.find((100, 100), |id| id == 100), Some(100));
        assert_eq!(table.find((5, -3), |id| id == 1), Some(1));
    }
}
