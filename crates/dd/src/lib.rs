//! # qukit-dd
//!
//! Decision-diagram (QMDD) based quantum circuit simulation — the
//! "developer's perspective" contribution showcased in Section V-A of the
//! DATE 2019 Qiskit paper (and integrated into Qiskit as the JKU add-on
//! simulator [5]). States and operators are stored as edge-weighted DAGs
//! that share structurally equivalent substructures, which for many
//! practically relevant circuits is exponentially more compact than the
//! `2^n` amplitude array used by `qukit-aer` (the paper's Fig. 3).
//!
//! * [`package::DdPackage`] — nodes, canonical weight table, unique tables
//!   and compute caches; matrix-vector and matrix-matrix multiplication;
//! * [`simulator::DdSimulator`] — circuit driver with node-count telemetry
//!   and direct sampling from the compressed state;
//! * [`export`] — Graphviz rendering of diagrams (Fig. 3b style).
//!
//! # Examples
//!
//! ```
//! use qukit_dd::simulator::DdSimulator;
//! use qukit_terra::circuit::QuantumCircuit;
//!
//! # fn main() -> Result<(), qukit_dd::simulator::DdError> {
//! let mut ghz = QuantumCircuit::new(16);
//! ghz.h(0).unwrap();
//! for q in 1..16 {
//!     ghz.cx(q - 1, q).unwrap();
//! }
//! let state = DdSimulator::new().run(&ghz)?;
//! assert_eq!(state.node_count(), 31); // vs 65536 dense amplitudes
//! # Ok(())
//! # }
//! ```

pub mod export;
pub mod package;
pub mod simulator;
mod tables;
pub mod verify;

pub use package::{DdPackage, Edge};
pub use simulator::{DdError, DdSimulator, DdState};
pub use verify::{check_equivalence, check_equivalence_mapped, Equivalence};
