//! Ablation: decision-diagram compute-table caching.
//!
//! DESIGN.md calls out the DD operation caches as a design choice; this
//! ablation measures simulation with the compute tables enabled vs
//! disabled (unique tables stay on — they define canonicity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::dd::simulator::DdSimulator;
use qukit_bench::{entangler, ghz, qft};
use std::time::{Duration, Instant};

fn report() {
    println!("=== Ablation: DD compute-table caching ===\n");
    println!("{:<18} {:>14} {:>14} {:>10}", "circuit", "cached (µs)", "uncached (µs)", "speedup");
    let workloads = vec![
        ("ghz_16".to_owned(), ghz(16)),
        ("qft_8".to_owned(), qft(8)),
        ("entangler_10x3".to_owned(), entangler(10, 3)),
    ];
    for (name, circ) in &workloads {
        let t0 = Instant::now();
        let cached_state = DdSimulator::new().run(circ).expect("simulable");
        let cached = t0.elapsed().as_secs_f64() * 1e6;
        let t0 = Instant::now();
        let uncached_state = DdSimulator::new().without_cache().run(circ).expect("simulable");
        let uncached = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(
            cached_state.node_count(),
            uncached_state.node_count(),
            "caching must not change the result"
        );
        println!("{name:<18} {cached:>14.1} {uncached:>14.1} {:>10.2}x", uncached / cached);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("dd_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for (name, circ) in [("qft_7", qft(7)), ("entangler_8x3", entangler(8, 3))] {
        group.bench_with_input(BenchmarkId::new("cached", name), &circ, |b, circ| {
            b.iter(|| DdSimulator::new().run(std::hint::black_box(circ)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("uncached", name), &circ, |b, circ| {
            b.iter(|| DdSimulator::new().without_cache().run(std::hint::black_box(circ)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
