//! Section V-B claim ([Zulehner-Paler-Wille TCAD'18]) — heuristic search
//! reduces added gates vs naive mapping.
//!
//! Sweeps a benchmark-circuit suite over IBM QX5 (16 qubits) and reports
//! the gate overhead of every mapper; the expected shape is
//! `astar ≤ lookahead ≤ basic` on added gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::terra::coupling::CouplingMap;
use qukit::terra::transpiler::{transpile, MapperKind, TranspileOptions};
use qukit_bench::mapping_suite;
use std::time::Duration;

fn report() {
    println!("=== §V-B reproduction: mapping overhead on IBM QX5 ===\n");
    let qx5 = CouplingMap::ibm_qx5();
    println!(
        "{:<22} {:>6} | {:>13} {:>13} {:>13}",
        "circuit", "base", "basic", "lookahead", "astar"
    );
    println!(
        "{:<22} {:>6} | {:>7}{:>6} {:>7}{:>6} {:>7}{:>6}",
        "", "gates", "gates", "swaps", "gates", "swaps", "gates", "swaps"
    );
    let mut totals = [0usize; 3];
    for (name, circ) in mapping_suite(10) {
        let base = qukit::terra::transpiler::decompose::elementary_gate_count(&circ);
        let mut row = format!("{name:<22} {base:>6} |");
        for (i, mapper) in
            [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar].iter().enumerate()
        {
            let options = TranspileOptions {
                coupling_map: Some(qx5.clone()),
                mapper: *mapper,
                optimization_level: 1,
                ..TranspileOptions::default()
            };
            let result = transpile(&circ, &options).expect("transpiles");
            row.push_str(&format!(" {:>7}{:>6}", result.circuit.num_gates(), result.num_swaps));
            totals[i] += result.circuit.num_gates();
        }
        println!("{row}");
    }
    println!("\ntotals: basic {} / lookahead {} / astar {} gates", totals[0], totals[1], totals[2]);
    println!(
        "shape check (search beats naive): lookahead<=basic: {}, astar<=basic: {}",
        totals[1] <= totals[0],
        totals[2] <= totals[0]
    );
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let qx5 = CouplingMap::ibm_qx5();
    let mut group = c.benchmark_group("mapping_suite");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2));
    let circ = qukit_bench::random_circuit(10, 40, 1234);
    for (mapper, label) in [
        (MapperKind::Basic, "basic"),
        (MapperKind::Lookahead, "lookahead"),
        (MapperKind::AStar, "astar"),
    ] {
        let options = TranspileOptions {
            coupling_map: Some(qx5.clone()),
            mapper,
            optimization_level: 1,
            ..TranspileOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("random_10x40", label), &options, |b, options| {
            b.iter(|| transpile(std::hint::black_box(&circ), options).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
