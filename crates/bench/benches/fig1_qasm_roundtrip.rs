//! Fig. 1 — OpenQASM description of a quantum circuit.
//!
//! Regenerates both panels of the paper's Fig. 1 (the OpenQASM listing and
//! the circuit diagram), verifies the parse→emit round trip is exact, and
//! benchmarks the OpenQASM front end.

use criterion::{criterion_group, criterion_main, Criterion};
use qukit::terra::circuit::fig1_circuit;
use qukit::terra::{draw, qasm};
use std::time::Duration;

const FIG1_QASM: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[2];
cx q[2],q[3];
cx q[0],q[1];
h q[1];
cx q[1],q[2];
t q[0];
cx q[2],q[0];
cx q[0],q[1];
"#;

fn report() {
    println!("=== Fig. 1 reproduction ===");
    let circ = fig1_circuit();
    let emitted = qasm::emit(&circ);
    println!("(a) OpenQASM code:\n{emitted}");
    println!("(b) Circuit diagram:\n{}", draw::draw(&circ));
    let parsed = qasm::parse(FIG1_QASM).expect("paper listing parses");
    println!(
        "round trip exact: listing == emitted: {}, parsed == built: {}",
        emitted == FIG1_QASM,
        parsed.instructions() == circ.instructions()
    );
    println!(
        "metrics: {} gates ({} CNOTs), depth {}",
        circ.num_gates(),
        circ.count_ops()["cx"],
        circ.depth()
    );
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("fig1_qasm");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("parse", |b| b.iter(|| qasm::parse(std::hint::black_box(FIG1_QASM))));
    let circ = fig1_circuit();
    group.bench_function("emit", |b| b.iter(|| qasm::emit(std::hint::black_box(&circ))));
    group.bench_function("draw", |b| b.iter(|| draw::draw(std::hint::black_box(&circ))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
