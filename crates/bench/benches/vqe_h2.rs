//! Section III (Aqua) claim — VQE, "at the basis of many of Aqua's
//! applications".
//!
//! Reports VQE ground-state energies against exact diagonalization for H2
//! and a transverse-field Ising sweep, and benchmarks the energy
//! evaluation and the full hybrid loop.

use criterion::{criterion_group, criterion_main, Criterion};
use qukit::aqua::operator::{h2_hamiltonian, transverse_field_ising};
use qukit::aqua::optimizers::{NelderMead, Optimizer, Spsa};
use qukit::aqua::vqe::{HardwareEfficientAnsatz, Vqe};
use std::time::Duration;

fn report() {
    println!("=== §III (Aqua) reproduction: VQE vs exact diagonalization ===\n");
    let h2 = h2_hamiltonian();
    let exact = h2.min_eigenvalue();
    println!("H2 @ 0.735 Å: exact E0 = {exact:.8} Ha");
    let ansatz = HardwareEfficientAnsatz::new(2, 1);
    let vqe = Vqe::new(&h2, ansatz);
    let nm = NelderMead { max_evaluations: 4000, ..NelderMead::new() };
    let r = vqe.run(&nm, &vec![0.1; ansatz.num_parameters()]).expect("runs");
    println!(
        "  Nelder-Mead: {:.8} Ha (error {:+.2e}, {} evals)",
        r.energy,
        r.energy - exact,
        r.evaluations
    );
    let spsa = Spsa { iterations: 1000, a: 1.0, c: 0.2, seed: 11 };
    let r = vqe.run(&spsa, &vec![0.2; ansatz.num_parameters()]).expect("runs");
    println!(
        "  SPSA:        {:.8} Ha (error {:+.2e}, {} evals)",
        r.energy,
        r.energy - exact,
        r.evaluations
    );

    println!("\nTransverse-field Ising (4 qubits, J=1):");
    println!("{:>6} {:>13} {:>13} {:>10}", "h", "VQE", "exact", "error");
    for field in [0.25, 0.75, 1.25] {
        let ising = transverse_field_ising(4, 1.0, field);
        let exact = ising.min_eigenvalue();
        let ansatz = HardwareEfficientAnsatz::new(4, 2);
        let vqe = Vqe::new(&ising, ansatz);
        let nm = NelderMead { max_evaluations: 6000, ..NelderMead::new() };
        let r = vqe.run(&nm, &vec![0.3; ansatz.num_parameters()]).expect("runs");
        println!(
            "{:>6.2} {:>13.6} {:>13.6} {:>10.2e}",
            field,
            r.energy,
            exact,
            (r.energy - exact).abs()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("vqe");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2));
    let h2 = h2_hamiltonian();
    let ansatz = HardwareEfficientAnsatz::new(2, 1);
    let vqe = Vqe::new(&h2, ansatz);
    let params = vec![0.37; ansatz.num_parameters()];
    group.bench_function("h2_energy_evaluation", |b| {
        b.iter(|| vqe.energy(std::hint::black_box(&params)).unwrap())
    });
    group.bench_function("h2_full_loop_300_evals", |b| {
        b.iter(|| {
            let nm = NelderMead { max_evaluations: 300, ..NelderMead::new() };
            let mut objective = |p: &[f64]| vqe.energy(p).unwrap();
            nm.minimize(&mut objective, &vec![0.1; ansatz.num_parameters()])
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
