//! Fig. 4 — mapping the Fig. 1 circuit to the IBM QX4 architecture.
//!
//! Regenerates the paper's Fig. 4 comparison: the naive Qiskit-`compile`
//! style flow (4a) against the improved search-based flow (4b). Prints the
//! gate-count table for every mapper × optimization level and benchmarks
//! the mapping passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::terra::circuit::fig1_circuit;
use qukit::terra::coupling::CouplingMap;
use qukit::terra::transpiler::{transpile, MapperKind, TranspileOptions};
use std::time::Duration;

fn report() {
    println!("=== Fig. 4 reproduction: Fig. 1 circuit on IBM QX4 ===\n");
    let circ = fig1_circuit();
    let qx4 = CouplingMap::ibm_qx4();
    println!("input: {} gates ({} CNOTs), depth {}", circ.num_gates(), 5, circ.depth());
    println!(
        "\n{:<12} {:<4} {:>6} {:>5} {:>5} {:>6} {:>6}",
        "mapper", "opt", "gates", "cx", "1q", "swaps", "depth"
    );
    let mut naive_size = 0;
    let mut best_size = usize::MAX;
    for (mapper, label) in [
        (MapperKind::Basic, "basic"),
        (MapperKind::Lookahead, "lookahead"),
        (MapperKind::AStar, "astar"),
    ] {
        for level in [0u8, 1, 2, 3] {
            let options = TranspileOptions {
                coupling_map: Some(qx4.clone()),
                mapper,
                optimization_level: level,
                ..TranspileOptions::default()
            };
            let result = transpile(&circ, &options).expect("transpiles");
            let total = result.circuit.num_gates();
            let cx = result.circuit.count_ops().get("cx").copied().unwrap_or(0);
            println!(
                "{:<12} {:<4} {:>6} {:>5} {:>5} {:>6} {:>6}",
                label,
                level,
                total,
                cx,
                total - cx,
                result.num_swaps,
                result.circuit.depth()
            );
            if mapper == MapperKind::Basic && level == 0 {
                naive_size = total;
            }
            best_size = best_size.min(total);
        }
    }
    println!(
        "\nFig. 4a (naive) size: {naive_size}; best optimized size: {best_size} \
         ({:.0}% reduction — the paper's 'more efficient overall map')",
        100.0 * (1.0 - best_size as f64 / naive_size as f64)
    );
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let circ = fig1_circuit();
    let qx4 = CouplingMap::ibm_qx4();
    let mut group = c.benchmark_group("fig4_mapping");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for (mapper, label) in [
        (MapperKind::Basic, "basic"),
        (MapperKind::Lookahead, "lookahead"),
        (MapperKind::AStar, "astar"),
    ] {
        let options = TranspileOptions {
            coupling_map: Some(qx4.clone()),
            mapper,
            optimization_level: 3,
            ..TranspileOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("transpile", label), &options, |b, options| {
            b.iter(|| transpile(std::hint::black_box(&circ), options).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
