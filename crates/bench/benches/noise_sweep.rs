//! Section III (Aer) claim — noise deteriorates algorithm results.
//!
//! Sweeps the depolarizing error rate and reports GHZ success probability
//! and Grover peak probability — the "run on noisy simulators in order to
//! analyze to what extent realistic noise levels deteriorate the results"
//! workflow. Benchmarks the trajectory simulator against the exact
//! density-matrix simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::aer::density::DensityMatrixSimulator;
use qukit::aer::noise::NoiseModel;
use qukit::aer::simulator::QasmSimulator;
use qukit::QuantumCircuit;
use std::time::Duration;

fn ghz_measured(n: usize) -> QuantumCircuit {
    let mut circ = qukit_bench::ghz(n);
    circ.measure_all();
    circ
}

fn report() {
    println!("=== §III (Aer) reproduction: noise sweeps ===\n");
    let shots = 4000;
    println!("GHZ-4 success probability vs CX depolarizing rate:");
    println!("{:>8} {:>10}", "p(cx)", "success");
    let ghz = ghz_measured(4);
    for p in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let noise = NoiseModel::depolarizing(p / 10.0, p, 0.0);
        let counts = QasmSimulator::new()
            .with_seed(1)
            .with_noise(noise)
            .run(&ghz, shots)
            .expect("simulable");
        let success = counts.probability(0) + counts.probability(0b1111);
        println!("{p:>8.3} {success:>10.4}");
    }

    println!("\nGrover-3 peak probability vs error rate:");
    println!("{:>8} {:>10} {:>10}", "p(cx)", "P(marked)", "argmax ok");
    let mut grover = qukit::aqua::grover::grover_circuit(3, &[5], None).expect("builds");
    grover.measure_all();
    for p in [0.0, 0.01, 0.02, 0.05, 0.1] {
        let noise = NoiseModel::depolarizing(p / 10.0, p, 0.0);
        let counts = QasmSimulator::new()
            .with_seed(2)
            .with_noise(noise)
            .run(&grover, shots)
            .expect("simulable");
        println!(
            "{p:>8.3} {:>10.4} {:>10}",
            counts.probability(5),
            counts.most_frequent() == Some(5)
        );
    }

    println!("\nTrajectory sampling vs exact density matrix (Bell, p=0.05):");
    let mut bell = QuantumCircuit::new(2);
    bell.h(0).expect("valid");
    bell.cx(0, 1).expect("valid");
    let noise = NoiseModel::depolarizing(0.005, 0.05, 0.0);
    let rho = DensityMatrixSimulator::new().with_noise(noise.clone()).run(&bell).expect("runs");
    let mut measured = bell.clone();
    measured.measure_all();
    let counts = QasmSimulator::new()
        .with_seed(3)
        .with_noise(noise)
        .run(&measured, 20_000)
        .expect("simulable");
    println!("{:>8} {:>12} {:>12}", "state", "exact", "sampled");
    for i in 0..4usize {
        println!(
            "{:>8} {:>12.4} {:>12.4}",
            format!("{i:02b}"),
            rho.probabilities()[i],
            counts.probability(i as u64)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("noise_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let ghz = ghz_measured(4);
    for p in [0.0f64, 0.05] {
        let noise = NoiseModel::depolarizing(p / 10.0, p, 0.0);
        group.bench_with_input(
            BenchmarkId::new("ghz4_1000shots", format!("p{p}")),
            &noise,
            |b, noise| {
                b.iter(|| {
                    QasmSimulator::new()
                        .with_seed(1)
                        .with_noise(noise.clone())
                        .run(std::hint::black_box(&ghz), 1000)
                        .unwrap()
                })
            },
        );
    }
    let mut bell = QuantumCircuit::new(2);
    bell.h(0).unwrap();
    bell.cx(0, 1).unwrap();
    let noise = NoiseModel::depolarizing(0.005, 0.05, 0.0);
    group.bench_function("bell_density_matrix_exact", |b| {
        b.iter(|| {
            DensityMatrixSimulator::new()
                .with_noise(noise.clone())
                .run(std::hint::black_box(&bell))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
