//! Ablation: transpiler optimization levels.
//!
//! DESIGN.md calls out the optimization pipeline as a design choice; this
//! ablation reports the gate-count reduction of each level (0-3) across
//! the benchmark suite, and benchmarks the passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::terra::coupling::CouplingMap;
use qukit::terra::transpiler::{transpile, MapperKind, TranspileOptions};
use qukit_bench::mapping_suite;
use std::time::Duration;

fn report() {
    println!("=== Ablation: optimization level vs mapped gate count (QX5) ===\n");
    let qx5 = CouplingMap::ibm_qx5();
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "level 0", "level 1", "level 2", "level 3"
    );
    for (name, circ) in mapping_suite(10) {
        let mut row = format!("{name:<22}");
        for level in 0u8..=3 {
            let options = TranspileOptions {
                coupling_map: Some(qx5.clone()),
                mapper: MapperKind::Lookahead,
                optimization_level: level,
                ..TranspileOptions::default()
            };
            let result = transpile(&circ, &options).expect("transpiles");
            row.push_str(&format!(" {:>8}", result.circuit.num_gates()));
        }
        println!("{row}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let qx5 = CouplingMap::ibm_qx5();
    let circ = qukit_bench::entangler(10, 3);
    let mut group = c.benchmark_group("transpile_levels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for level in [0u8, 1, 2, 3] {
        let options = TranspileOptions {
            coupling_map: Some(qx5.clone()),
            mapper: MapperKind::Lookahead,
            optimization_level: level,
            ..TranspileOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("entangler_10x3", level),
            &options,
            |b, options| b.iter(|| transpile(std::hint::black_box(&circ), options).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
