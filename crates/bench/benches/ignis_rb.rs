//! Section III (Ignis) claim — characterizing noise through randomized
//! benchmarking and mitigating readout errors.
//!
//! Reports the RB decay curve / fitted error-per-Clifford for several
//! injected error rates, the readout-mitigation improvement, and
//! benchmarks the RB pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use qukit::aer::noise::{NoiseModel, QuantumError, ReadoutError};
use qukit::aer::simulator::QasmSimulator;
use qukit::ignis::mitigation::MeasurementFilter;
use qukit::ignis::rb::{run_rb, RbConfig};
use qukit::QuantumCircuit;
use std::time::Duration;

fn gate_noise(p: f64) -> NoiseModel {
    let mut noise = NoiseModel::new();
    for name in ["h", "s"] {
        noise.add_all_qubit_error(name, QuantumError::depolarizing(p, 1));
    }
    noise
}

fn report() {
    println!("=== §III (Ignis) reproduction: RB and mitigation ===\n");
    println!("Randomized benchmarking: fitted α and error/Clifford vs injected p:");
    println!("{:>8} {:>10} {:>14}", "p(gate)", "alpha", "r (EPC)");
    for p in [0.002, 0.01, 0.03, 0.08] {
        let config = RbConfig {
            lengths: vec![1, 2, 4, 8, 16, 32],
            samples_per_length: 10,
            shots: 300,
            seed: 5,
        };
        let result = run_rb(&config, &gate_noise(p)).expect("runs");
        println!("{p:>8.3} {:>10.4} {:>14.5}", result.alpha, result.error_per_clifford);
    }

    println!("\nDecay curve at p = 0.03:");
    let config = RbConfig::default();
    let result = run_rb(&config, &gate_noise(0.03)).expect("runs");
    for (m, p) in &result.curve {
        let bar: String = std::iter::repeat_n('#', (p * 40.0) as usize).collect();
        println!("  m = {m:>3}: {p:.3} {bar}");
    }

    println!("\nReadout mitigation (GHZ-3, 6% flip):");
    let mut noise = NoiseModel::new();
    noise.set_readout_error(ReadoutError::symmetric(0.06));
    let mut ghz = qukit_bench::ghz(3);
    ghz.measure_all();
    let ideal = QasmSimulator::new().with_seed(1).run(&ghz, 6000).expect("runs");
    let noisy =
        QasmSimulator::new().with_seed(1).with_noise(noise.clone()).run(&ghz, 6000).expect("runs");
    let filter = MeasurementFilter::calibrate(3, &noise, 8000, 2).expect("calibrates");
    let mitigated = filter.apply(&noisy);
    println!(
        "  raw fidelity:       {:.4}\n  mitigated fidelity: {:.4}",
        noisy.hellinger_fidelity(&ideal),
        mitigated.hellinger_fidelity(&ideal)
    );
    println!();
    let _ = QuantumCircuit::new(1); // keep the import used in all feature configs
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("ignis");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("rb_full_experiment", |b| {
        let config =
            RbConfig { lengths: vec![1, 4, 16], samples_per_length: 4, shots: 100, seed: 3 };
        let noise = gate_noise(0.02);
        b.iter(|| run_rb(std::hint::black_box(&config), &noise).unwrap())
    });
    group.bench_function("mitigation_calibrate_2q", |b| {
        let mut noise = NoiseModel::new();
        noise.set_readout_error(ReadoutError::symmetric(0.05));
        b.iter(|| MeasurementFilter::calibrate(2, &noise, 500, 1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
