//! Fig. 3 — matrix vs decision diagram of a quantum computation.
//!
//! Regenerates the paper's Fig. 3 comparison: the explicit `2^n × 2^n`
//! matrix of a computation against its decision diagram. Reports entry
//! counts vs node counts across circuit families and sweeps `n` to exhibit
//! the exponential-vs-linear gap, then benchmarks DD construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::dd::simulator::DdSimulator;
use qukit_bench::{entangler, ghz, qft, random_circuit};
use std::time::Duration;

fn report() {
    println!("=== Fig. 3 reproduction: dense matrix vs decision diagram ===\n");
    println!("Circuit unitaries (matrix DD):");
    println!(
        "{:<18} {:>3} {:>16} {:>12} {:>12}",
        "circuit", "n", "dense entries", "dd nodes", "ratio"
    );
    let mut rows: Vec<(String, usize)> = Vec::new();
    for n in [3usize, 6, 9, 12] {
        rows.push((format!("ghz_{n}"), n));
    }
    for n in [3usize, 5, 7] {
        rows.push((format!("qft_{n}"), n));
    }
    for (name, n) in rows {
        let circ = if name.starts_with("ghz") { ghz(n) } else { qft(n) };
        let (package, edge) = DdSimulator::new().build_unitary(&circ).expect("unitary");
        let dense: u128 = 1u128 << (2 * n);
        let nodes = package.matrix_nodes(edge);
        println!(
            "{:<18} {:>3} {:>16} {:>12} {:>12.1}",
            name,
            n,
            dense,
            nodes,
            dense as f64 / nodes as f64
        );
    }

    println!("\nFinal states (vector DD):");
    println!(
        "{:<18} {:>3} {:>16} {:>12} {:>12}",
        "circuit", "n", "dense amps", "dd nodes", "ratio"
    );
    for n in [8usize, 12, 16, 20] {
        let state = DdSimulator::new().run(&ghz(n)).expect("simulable");
        println!(
            "{:<18} {:>3} {:>16} {:>12} {:>12.1}",
            format!("ghz_{n}"),
            n,
            1u64 << n,
            state.node_count(),
            (1u64 << n) as f64 / state.node_count() as f64
        );
    }
    for n in [6usize, 10] {
        let state = DdSimulator::new().run(&entangler(n, 2)).expect("simulable");
        println!(
            "{:<18} {:>3} {:>16} {:>12} {:>12.1}",
            format!("entangler_{n}x2"),
            n,
            1u64 << n,
            state.node_count(),
            (1u64 << n) as f64 / state.node_count() as f64
        );
    }
    // Random circuits: the DD degenerates toward dense size (the paper's
    // caveat that DDs help on *structured* functions).
    for n in [6usize, 8] {
        let state = DdSimulator::new().run(&random_circuit(n, 60, 7)).expect("simulable");
        println!(
            "{:<18} {:>3} {:>16} {:>12} {:>12.1}",
            format!("random_{n}x60"),
            n,
            1u64 << n,
            state.node_count(),
            (1u64 << n) as f64 / state.node_count() as f64
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("fig3_dd_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for n in [6usize, 10, 14] {
        let circ = ghz(n);
        group.bench_with_input(BenchmarkId::new("ghz_unitary_dd", n), &circ, |b, circ| {
            b.iter(|| DdSimulator::new().build_unitary(std::hint::black_box(circ)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
