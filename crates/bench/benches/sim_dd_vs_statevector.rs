//! Section V-A claim ([Zulehner-Wille TCAD'18]) — DD simulation beats
//! array simulation on structured circuits.
//!
//! Benchmarks the decision-diagram simulator against the dense statevector
//! simulator across circuit families and widths. The expected *shape*:
//! DD wins (and scales past the dense memory wall) on structured circuits
//! such as GHZ; dense wins on unstructured random circuits whose DDs
//! degenerate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qukit::aer::simulator::StatevectorSimulator;
use qukit::dd::simulator::DdSimulator;
use qukit_bench::{entangler, ghz, random_circuit};
use std::time::{Duration, Instant};

fn report() {
    println!("=== §V-A reproduction: DD vs statevector simulation ===\n");
    println!(
        "{:<18} {:>3} {:>14} {:>14} {:>10} {:>10}",
        "circuit", "n", "dense (µs)", "dd (µs)", "dd nodes", "winner"
    );
    let mut workloads: Vec<(String, qukit::QuantumCircuit)> = Vec::new();
    for n in [10usize, 14, 18] {
        workloads.push((format!("ghz_{n}"), ghz(n)));
    }
    for n in [10usize, 14] {
        workloads.push((format!("entangler_{n}x2"), entangler(n, 2)));
    }
    for n in [10usize, 12] {
        workloads.push((format!("random_{n}x80"), random_circuit(n, 80, 3)));
    }
    for (name, circ) in &workloads {
        let t0 = Instant::now();
        let _ = StatevectorSimulator::new().run(circ).expect("dense sim");
        let dense_us = t0.elapsed().as_secs_f64() * 1e6;
        let t0 = Instant::now();
        let state = DdSimulator::new().run(circ).expect("dd sim");
        let dd_us = t0.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:<18} {:>3} {:>14.1} {:>14.1} {:>10} {:>10}",
            name,
            circ.num_qubits(),
            dense_us,
            dd_us,
            state.node_count(),
            if dd_us < dense_us { "dd" } else { "dense" }
        );
    }
    // Beyond the dense wall: DD handles widths the 2^n array cannot.
    println!("\nBeyond the dense-simulation comfort zone (DD only):");
    for n in [24usize, 32, 48, 64] {
        let t0 = Instant::now();
        let state = DdSimulator::new().run(&ghz(n)).expect("dd sim");
        println!(
            "  ghz_{n}: {} nodes in {:.1} µs (dense would need 2^{n} amplitudes)",
            state.node_count(),
            t0.elapsed().as_secs_f64() * 1e6
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("sim_comparison");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for n in [8usize, 12, 16] {
        let circ = ghz(n);
        group.bench_with_input(BenchmarkId::new("ghz_dense", n), &circ, |b, circ| {
            b.iter(|| StatevectorSimulator::new().run(std::hint::black_box(circ)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ghz_dd", n), &circ, |b, circ| {
            b.iter(|| DdSimulator::new().run(std::hint::black_box(circ)).unwrap())
        });
    }
    for n in [8usize, 10] {
        let circ = random_circuit(n, 60, 5);
        group.bench_with_input(BenchmarkId::new("random_dense", n), &circ, |b, circ| {
            b.iter(|| StatevectorSimulator::new().run(std::hint::black_box(circ)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("random_dd", n), &circ, |b, circ| {
            b.iter(|| DdSimulator::new().run(std::hint::black_box(circ)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
