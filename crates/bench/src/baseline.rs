//! The committed JSON bench baseline (`BENCH_PR3.json`).
//!
//! [`run_baseline`] sweeps a fixed circuit suite across every engine
//! that can run it and records wall time plus the key `qukit_*` metrics
//! of each run. The output is a stable, schema-versioned JSON document
//! (`qukit-bench-baseline/v1`) that CI regenerates and validates and
//! that `qukit stats <file>.json` renders as a table — the regression
//! anchor for "did an engine get slower or busier".

use qukit::backend::Backend;
use qukit::terra::circuit::QuantumCircuit;
use qukit_obs::json::{escape, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier stamped into every baseline document.
pub const BASELINE_SCHEMA: &str = "qukit-bench-baseline/v1";

/// Knobs of a baseline sweep.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Shots per (circuit, engine) run.
    pub shots: usize,
    /// Seed threaded into every seedable backend.
    pub seed: u64,
    /// Record `qukit_*` metrics per entry (disable to measure the
    /// uninstrumented wall time — the overhead comparison knob).
    pub collect_metrics: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self { shots: 1024, seed: 7, collect_metrics: true }
    }
}

/// One (circuit, engine) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Circuit name (e.g. `ghz_8`).
    pub circuit: String,
    /// Engine/backend name (e.g. `dd_simulator`).
    pub engine: String,
    /// Circuit width.
    pub qubits: usize,
    /// Gate count before backend-side transpilation.
    pub gates: usize,
    /// Shots sampled.
    pub shots: usize,
    /// End-to-end wall time of the run, seconds.
    pub wall_seconds: f64,
    /// Key metrics observed during the run (counters and gauges,
    /// flattened to f64). Empty when metric collection is off.
    pub metrics: BTreeMap<String, f64>,
}

/// A full baseline document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Every (circuit, engine) measurement, in sweep order.
    pub entries: Vec<BaselineEntry>,
}

/// Builds one backend instance by name with the sweep seed applied.
fn make_engine(name: &str, seed: u64) -> Box<dyn Backend> {
    use qukit::backend::{DdSimulatorBackend, FakeDevice, QasmSimulatorBackend, StabilizerBackend};
    match name {
        "qasm_simulator" => Box::new(QasmSimulatorBackend::new().with_seed(seed)),
        "dd_simulator" => Box::new(DdSimulatorBackend::new().with_seed(seed)),
        "stabilizer_simulator" => Box::new(StabilizerBackend::new().with_seed(seed)),
        "ibmqx4" => Box::new(FakeDevice::ibmqx4().with_seed(seed)),
        other => unreachable!("unknown baseline engine '{other}'"),
    }
}

/// The fixed sweep: circuit × engines able to run it. The GHZ circuits
/// are Clifford (stabilizer-eligible); only the ≤5-qubit circuits fit
/// the ibmqx4 device model.
fn sweep() -> Vec<(String, QuantumCircuit, Vec<&'static str>)> {
    let bell = {
        let mut circ = QuantumCircuit::new(2);
        circ.set_name("bell");
        circ.h(0).expect("valid");
        circ.cx(0, 1).expect("valid");
        circ
    };
    vec![
        (
            "ghz_8".to_owned(),
            crate::ghz(8),
            vec!["qasm_simulator", "dd_simulator", "stabilizer_simulator"],
        ),
        ("qft_6".to_owned(), crate::qft(6), vec!["qasm_simulator", "dd_simulator"]),
        (
            "entangler_6x3".to_owned(),
            crate::entangler(6, 3),
            vec!["qasm_simulator", "dd_simulator"],
        ),
        (
            "random_6x40".to_owned(),
            crate::random_circuit(6, 40, 1234),
            vec!["qasm_simulator", "dd_simulator"],
        ),
        ("ghz_5".to_owned(), crate::ghz(5), vec!["ibmqx4"]),
        ("bell".to_owned(), bell, vec!["qasm_simulator", "ibmqx4"]),
    ]
}

/// Runs the full sweep and returns the baseline.
///
/// When `collect_metrics` is on, the global metrics registry is reset
/// before (and snapshot after) each run, so each entry's `metrics` map
/// reflects that run alone. The registry is left disabled afterwards.
pub fn run_baseline(config: &BaselineConfig) -> Baseline {
    let was_enabled = qukit_obs::enabled();
    let mut entries = Vec::new();
    for (circuit_name, circuit, engines) in sweep() {
        for engine_name in engines {
            let engine = make_engine(engine_name, config.seed);
            if config.collect_metrics {
                qukit_obs::set_enabled(true);
                qukit_obs::reset();
            }
            let start = std::time::Instant::now();
            let counts = engine.run(&prepared(&circuit), config.shots).expect("baseline run");
            let wall_seconds = start.elapsed().as_secs_f64();
            assert_eq!(counts.total(), config.shots, "baseline runs sample every shot");
            let metrics = if config.collect_metrics {
                let snapshot = qukit_obs::registry().snapshot();
                qukit_obs::set_enabled(was_enabled);
                let mut flat: BTreeMap<String, f64> = BTreeMap::new();
                for (name, value) in &snapshot.counters {
                    flat.insert(name.clone(), *value as f64);
                }
                for (name, value) in &snapshot.gauges {
                    flat.insert(name.clone(), *value);
                }
                flat
            } else {
                BTreeMap::new()
            };
            entries.push(BaselineEntry {
                circuit: circuit_name.clone(),
                engine: engine_name.to_owned(),
                qubits: circuit.num_qubits(),
                gates: circuit.num_gates(),
                shots: config.shots,
                wall_seconds,
                metrics,
            });
        }
    }
    qukit_obs::set_enabled(was_enabled);
    Baseline { entries }
}

/// Adds terminal measurements where the suite circuit has none (the
/// backends require measured circuits for sampling).
fn prepared(circuit: &QuantumCircuit) -> QuantumCircuit {
    if circuit.has_measurements() {
        circuit.clone()
    } else {
        let mut measured = circuit.clone();
        measured.measure_all();
        measured
    }
}

impl Baseline {
    /// Serializes to the `qukit-bench-baseline/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        out.push_str("  \"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"circuit\": \"{}\",", escape(&entry.circuit));
            let _ = writeln!(out, "      \"engine\": \"{}\",", escape(&entry.engine));
            let _ = writeln!(out, "      \"qubits\": {},", entry.qubits);
            let _ = writeln!(out, "      \"gates\": {},", entry.gates);
            let _ = writeln!(out, "      \"shots\": {},", entry.shots);
            let _ = writeln!(out, "      \"wall_seconds\": {},", fmt_f64(entry.wall_seconds));
            out.push_str("      \"metrics\": {");
            for (j, (name, value)) in entry.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        \"{}\": {}", escape(name), fmt_f64(*value));
            }
            if !entry.metrics.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n    }");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses and validates a baseline document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first schema violation.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing \"schema\" field".to_owned())?;
        if schema != BASELINE_SCHEMA {
            return Err(format!("schema '{schema}' is not '{BASELINE_SCHEMA}'"));
        }
        let raw_entries = value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing \"entries\" array".to_owned())?;
        let mut entries = Vec::new();
        for (i, raw) in raw_entries.iter().enumerate() {
            let field_str = |key: &str| {
                raw.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("entry {i}: missing string \"{key}\""))
            };
            let field_num = |key: &str| {
                raw.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("entry {i}: missing number \"{key}\""))
            };
            let metrics_obj = raw
                .get("metrics")
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("entry {i}: missing object \"metrics\""))?;
            let mut metrics = BTreeMap::new();
            for (name, v) in metrics_obj {
                let value = v
                    .as_f64()
                    .ok_or_else(|| format!("entry {i}: metric \"{name}\" is not a number"))?;
                metrics.insert(name.clone(), value);
            }
            entries.push(BaselineEntry {
                circuit: field_str("circuit")?,
                engine: field_str("engine")?,
                qubits: field_num("qubits")? as usize,
                gates: field_num("gates")? as usize,
                shots: field_num("shots")? as usize,
                wall_seconds: field_num("wall_seconds")?,
                metrics,
            });
        }
        Ok(Self { entries })
    }
}

/// Finite shortest-roundtrip float formatting (JSON has no NaN/Inf).
fn fmt_f64(value: f64) -> String {
    if !value.is_finite() {
        return "0".to_owned();
    }
    let text = format!("{value}");
    // `{}` on f64 already round-trips; just make integers explicit
    // floats so the field parses as a number either way.
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline runs mutate the global metrics registry; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn baseline_covers_at_least_eight_circuit_engine_pairs() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 64, ..Default::default() });
        assert!(baseline.entries.len() >= 8, "only {} entries", baseline.entries.len());
        let mut pairs: Vec<(String, String)> =
            baseline.entries.iter().map(|e| (e.circuit.clone(), e.engine.clone())).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), baseline.entries.len(), "pairs must be unique");
        assert!(baseline.entries.iter().all(|e| e.wall_seconds >= 0.0));
        assert!(!qukit_obs::enabled(), "baseline leaves metrics as it found them");
    }

    #[test]
    fn baseline_entries_embed_engine_metrics() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 32, ..Default::default() });
        let dd =
            baseline.entries.iter().find(|e| e.engine == "dd_simulator").expect("dd entries exist");
        assert!(
            dd.metrics.keys().any(|k| k.starts_with("qukit_dd_")),
            "dd entry carries dd metrics: {:?}",
            dd.metrics.keys().collect::<Vec<_>>()
        );
        let sv = baseline
            .entries
            .iter()
            .find(|e| e.engine == "qasm_simulator")
            .expect("statevector entries exist");
        assert!(sv.metrics.keys().any(|k| k.starts_with("qukit_aer_")));
    }

    #[test]
    fn baseline_json_round_trips() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 16, ..Default::default() });
        let json = baseline.to_json();
        let parsed = Baseline::from_json(&json).expect("own output validates");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::from_json("{}").is_err());
        assert!(Baseline::from_json("{\"schema\": \"other/v9\", \"entries\": []}").is_err());
        assert!(Baseline::from_json(
            "{\"schema\": \"qukit-bench-baseline/v1\", \"entries\": [{}]}"
        )
        .is_err());
        assert!(Baseline::from_json("not json").is_err());
    }

    #[test]
    fn metrics_can_be_disabled_for_overhead_runs() {
        let _guard = lock();
        let config = BaselineConfig { shots: 16, collect_metrics: false, ..Default::default() };
        let baseline = run_baseline(&config);
        assert!(baseline.entries.iter().all(|e| e.metrics.is_empty()));
    }
}
