//! The committed JSON bench baseline (`BENCH_PR3.json`).
//!
//! [`run_baseline`] sweeps a fixed circuit suite across every engine
//! that can run it and records wall time plus the key `qukit_*` metrics
//! of each run. The output is a stable, schema-versioned JSON document
//! (`qukit-bench-baseline/v1`) that CI regenerates and validates and
//! that `qukit stats <file>.json` renders as a table — the regression
//! anchor for "did an engine get slower or busier".

use qukit::backend::Backend;
use qukit::terra::circuit::QuantumCircuit;
use qukit_obs::json::{escape, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier stamped into every baseline document.
pub const BASELINE_SCHEMA: &str = "qukit-bench-baseline/v1";

/// Wall-time floor (seconds) below which [`Baseline::compare`] treats a
/// measurement as noise: both sides of a ratio are clamped up to this
/// before comparing, so sub-half-millisecond jitter never reads as a
/// regression.
pub const MIN_COMPARE_WALL: f64 = 0.0005;

/// Knobs of a baseline sweep.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Shots per (circuit, engine) run.
    pub shots: usize,
    /// Seed threaded into every seedable backend.
    pub seed: u64,
    /// Record `qukit_*` metrics per entry (disable to measure the
    /// uninstrumented wall time — the overhead comparison knob).
    pub collect_metrics: bool,
    /// Timed repetitions per (circuit, engine); the entry records the
    /// minimum wall time, which is far more stable than a single sample
    /// on a noisy machine.
    pub repeats: usize,
    /// Thread counts swept by the `parallel_statevector[t=N]` engines on
    /// the wide (12-qubit) circuits. Empty disables the parallel sweep.
    pub threads: Vec<usize>,
    /// Also run the 22–26-qubit statevector entries (`ghz_24`, `qft_22`,
    /// `qft_24`, `random_26x40`) on the parallel engine with SIMD on and
    /// off. Off by default: each run sweeps a ≥64 MiB state.
    pub large_statevector: bool,
    /// Bindings in the parameter-sweep entries (`sweep[batch]` vs
    /// `sweep[independent]`). 0 disables the sweep comparison.
    pub sweep_bindings: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            shots: 1024,
            seed: 7,
            collect_metrics: true,
            repeats: 5,
            threads: vec![1, 2, 4, 8],
            large_statevector: false,
            sweep_bindings: 64,
        }
    }
}

/// One (circuit, engine) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Circuit name (e.g. `ghz_8`).
    pub circuit: String,
    /// Engine/backend name (e.g. `dd_simulator`).
    pub engine: String,
    /// Circuit width.
    pub qubits: usize,
    /// Gate count before backend-side transpilation.
    pub gates: usize,
    /// Shots sampled.
    pub shots: usize,
    /// End-to-end wall time of the run, seconds.
    pub wall_seconds: f64,
    /// Key metrics observed during the run (counters and gauges,
    /// flattened to f64). Empty when metric collection is off.
    pub metrics: BTreeMap<String, f64>,
}

/// A full baseline document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Every (circuit, engine) measurement, in sweep order.
    pub entries: Vec<BaselineEntry>,
}

/// Builds one backend instance by name with the sweep seed applied.
///
/// `parallel_statevector[t=N]` names the qasm simulator routed through
/// the chunked/fused parallel kernels with `N` worker threads; the plain
/// `qasm_simulator` is pinned to the serial legacy path so the
/// serial-versus-parallel comparison is immune to `QUKIT_THREADS` in the
/// measuring environment.
fn make_engine(name: &str, seed: u64) -> Box<dyn Backend> {
    use qukit::aer::parallel::ParallelConfig;
    use qukit::backend::{DdSimulatorBackend, FakeDevice, QasmSimulatorBackend, StabilizerBackend};
    if let Some((threads, simd)) = parse_parallel_engine(name) {
        let mut config = ParallelConfig::with_threads(threads);
        config.simd = simd;
        return Box::new(QasmSimulatorBackend::new().with_seed(seed).with_parallel(config));
    }
    match name {
        "qasm_simulator" => Box::new(
            QasmSimulatorBackend::new().with_seed(seed).with_parallel(ParallelConfig::serial()),
        ),
        "dd_simulator" => Box::new(DdSimulatorBackend::new().with_seed(seed)),
        "stabilizer_simulator" => Box::new(StabilizerBackend::new().with_seed(seed)),
        "ibmqx4" => Box::new(FakeDevice::ibmqx4().with_seed(seed)),
        other => unreachable!("unknown baseline engine '{other}'"),
    }
}

/// Parses `parallel_statevector[t=N]` into `Some((N, true))` and
/// `parallel_statevector[t=N,simd=off]` into `Some((N, false))`.
fn parse_parallel_engine(name: &str) -> Option<(usize, bool)> {
    let inner = name.strip_prefix("parallel_statevector[t=")?.strip_suffix(']')?;
    let (threads, simd) = match inner.strip_suffix(",simd=off") {
        Some(threads) => (threads, false),
        None => (inner, true),
    };
    threads.parse().ok().map(|t| (t, simd))
}

/// The fixed sweep: circuit × engines able to run it. The GHZ circuits
/// are Clifford (stabilizer-eligible); only the ≤5-qubit circuits fit
/// the ibmqx4 device model. The 12-qubit circuits additionally run on
/// the parallel chunked/fused engine at every requested thread count —
/// the speedup anchor for the parallel execution layer.
fn sweep(threads: &[usize], large_statevector: bool) -> Vec<(String, QuantumCircuit, Vec<String>)> {
    let bell = {
        let mut circ = QuantumCircuit::new(2);
        circ.set_name("bell");
        circ.h(0).expect("valid");
        circ.cx(0, 1).expect("valid");
        circ
    };
    let owned = |names: &[&str]| names.iter().map(|n| (*n).to_owned()).collect::<Vec<_>>();
    let mut wide_engines = owned(&["qasm_simulator"]);
    for &t in threads {
        wide_engines.push(format!("parallel_statevector[t={t}]"));
    }
    // DD last: its 12-qubit runs are allocation-heavy (unstructured
    // circuits blow the diagram up) and would pollute the caches under
    // the dense-engine timings measured right after.
    wide_engines.push("dd_simulator".to_owned());
    let mut suite = vec![
        (
            "ghz_8".to_owned(),
            crate::ghz(8),
            owned(&["qasm_simulator", "dd_simulator", "stabilizer_simulator"]),
        ),
        ("qft_6".to_owned(), crate::qft(6), owned(&["qasm_simulator", "dd_simulator"])),
        (
            "entangler_6x3".to_owned(),
            crate::entangler(6, 3),
            owned(&["qasm_simulator", "dd_simulator"]),
        ),
        (
            "random_6x40".to_owned(),
            crate::random_circuit(6, 40, 1234),
            owned(&["qasm_simulator", "dd_simulator"]),
        ),
        ("ghz_5".to_owned(), crate::ghz(5), owned(&["ibmqx4"])),
        ("bell".to_owned(), bell, owned(&["qasm_simulator", "ibmqx4"])),
        ("qft_12".to_owned(), crate::qft(12), wide_engines.clone()),
        ("random_12x200".to_owned(), crate::random_circuit(12, 200, 4242), wide_engines),
        // DD-scaling entries: structured circuits far past dense reach
        // (2^24 amplitudes would be 256 MiB; the DD stays tiny). Only the
        // DD engine runs them — the compact-representation headline of
        // the paper's Fig. 3.
        ("ghz_24".to_owned(), crate::ghz(24), owned(&["dd_simulator"])),
        ("qft_16".to_owned(), crate::qft(16), owned(&["dd_simulator"])),
    ];
    if large_statevector {
        // Dense 22–26-qubit statevector entries (64 MiB–1 GiB states),
        // SIMD against scalar kernels on the single-threaded parallel
        // engine: the speedup anchor for the SIMD lane kernels and the
        // cache-blocked traversal of high-qubit-index gates. GHZ and QFT
        // put their heaviest gates on the top qubit indices, exactly the
        // strided-access pattern the blocked traversal exists for. The
        // QFT entries are the compute-bound anchor (the controlled-phase
        // ladder keeps the lanes full); GHZ and the shallow random
        // circuit are the honest memory-bound counterpoints where the
        // walk is dominated by DRAM traffic and lanes gain less.
        let dense = owned(&["parallel_statevector[t=1]", "parallel_statevector[t=1,simd=off]"]);
        suite.push(("ghz_24".to_owned(), crate::ghz(24), dense.clone()));
        suite.push(("qft_22".to_owned(), crate::qft(22), dense.clone()));
        suite.push(("qft_24".to_owned(), crate::qft(24), dense.clone()));
        suite.push(("random_26x40".to_owned(), crate::random_circuit(26, 40, 2626), dense));
    }
    suite
}

/// Runs the full sweep and returns the baseline.
///
/// When `collect_metrics` is on, the global metrics registry is reset
/// before (and snapshot after) each run, so each entry's `metrics` map
/// reflects that run alone. The registry is left disabled afterwards.
pub fn run_baseline(config: &BaselineConfig) -> Baseline {
    let was_enabled = qukit_obs::enabled();
    let mut entries = Vec::new();
    for (circuit_name, circuit, engines) in sweep(&config.threads, config.large_statevector) {
        for engine_name in engines {
            let engine = make_engine(&engine_name, config.seed);
            let measured = prepared(&circuit);
            let mut wall_seconds = f64::INFINITY;
            let mut metrics = BTreeMap::new();
            for _ in 0..config.repeats.max(1) {
                if config.collect_metrics {
                    qukit_obs::set_enabled(true);
                    qukit_obs::reset();
                }
                let start = std::time::Instant::now();
                let counts = engine.run(&measured, config.shots).expect("baseline run");
                wall_seconds = wall_seconds.min(elapsed_seconds(start));
                assert_eq!(counts.total(), config.shots, "baseline runs sample every shot");
                if config.collect_metrics {
                    let snapshot = qukit_obs::registry().snapshot();
                    qukit_obs::set_enabled(was_enabled);
                    let mut flat: BTreeMap<String, f64> = BTreeMap::new();
                    for (name, value) in &snapshot.counters {
                        flat.insert(name.clone(), *value as f64);
                    }
                    for (name, value) in &snapshot.gauges {
                        flat.insert(name.clone(), *value);
                    }
                    metrics = flat;
                }
            }
            entries.push(BaselineEntry {
                circuit: circuit_name.clone(),
                engine: engine_name,
                qubits: circuit.num_qubits(),
                gates: circuit.num_gates(),
                shots: config.shots,
                wall_seconds,
                metrics,
            });
        }
    }
    annotate_simd_speedups(&mut entries);
    entries.extend(transpiler_entries(config));
    entries.extend(sweep_entries(config));
    qukit_obs::set_enabled(was_enabled);
    Baseline { entries }
}

/// Minimum-resolution wall clock: nanosecond ticks widened to f64
/// seconds, so sub-microsecond timings (cache hits, tiny circuits)
/// never flush to zero in the JSON document.
fn elapsed_seconds(start: std::time::Instant) -> f64 {
    start.elapsed().as_nanos() as f64 / 1e9
}

/// Stamps each SIMD parallel-engine entry with `simd_speedup`: the ratio
/// of its scalar twin's wall time to its own (same circuit, same thread
/// count, `simd=off`). This is the committed evidence for the SIMD
/// kernel claim — `BENCH_PR10.json` carries ≥2× on the large
/// high-qubit-index entries.
fn annotate_simd_speedups(entries: &mut [BaselineEntry]) {
    let scalars: Vec<(String, usize, f64)> = entries
        .iter()
        .filter_map(|e| match parse_parallel_engine(&e.engine) {
            Some((threads, false)) => Some((e.circuit.clone(), threads, e.wall_seconds)),
            _ => None,
        })
        .collect();
    for entry in entries.iter_mut() {
        let Some((threads, true)) = parse_parallel_engine(&entry.engine) else { continue };
        let Some((_, _, scalar_wall)) = scalars.iter().find(|(circuit, scalar_threads, _)| {
            *circuit == entry.circuit && *scalar_threads == threads
        }) else {
            continue;
        };
        entry
            .metrics
            .insert("simd_speedup".to_owned(), scalar_wall / entry.wall_seconds.max(1e-12));
    }
}

/// Transpiler baseline entries: both production routers on the 12-qubit
/// circuits over a 3×4 grid device, plus a cold/warm pair through the
/// transpile cache proving that a hit skips the pipeline entirely.
///
/// Engine names follow the `transpile[router]` / `transpile_cache[side]`
/// convention so `stats --compare` gates them like any other entry (the
/// warm-hit wall time sits below [`MIN_COMPARE_WALL`] by design — the
/// committed regression gate for the cache is the speedup ratio stored
/// in the warm entry's metrics and asserted by this crate's tests).
fn transpiler_entries(config: &BaselineConfig) -> Vec<BaselineEntry> {
    use qukit::terra::coupling::CouplingMap;
    use qukit::terra::transpiler::{self, MapperKind, TranspileOptions};

    let repeats = config.repeats.max(1);
    let mut entries = Vec::new();
    let suite = [
        ("qft_12".to_owned(), crate::qft(12)),
        ("random_12x200".to_owned(), crate::random_circuit(12, 200, 4242)),
    ];
    for (circuit_name, circuit) in &suite {
        for (engine_name, mapper) in
            [("transpile[sabre]", MapperKind::Sabre), ("transpile[astar]", MapperKind::AStar)]
        {
            let mut options = TranspileOptions::for_device(CouplingMap::grid(3, 4));
            options.optimization_level = 1;
            options.mapper = mapper;
            let mut wall_seconds = f64::INFINITY;
            let mut metrics = BTreeMap::new();
            for _ in 0..repeats {
                let start = std::time::Instant::now();
                let result = transpiler::transpile(circuit, &options).expect("baseline transpile");
                wall_seconds = wall_seconds.min(elapsed_seconds(start));
                if config.collect_metrics {
                    metrics.insert("swaps_inserted".to_owned(), result.num_swaps as f64);
                    metrics.insert("depth_out".to_owned(), result.circuit.depth() as f64);
                    metrics.insert("gates_out".to_owned(), result.circuit.num_gates() as f64);
                }
            }
            entries.push(BaselineEntry {
                circuit: circuit_name.clone(),
                engine: engine_name.to_owned(),
                qubits: circuit.num_qubits(),
                gates: circuit.num_gates(),
                shots: 0,
                wall_seconds,
                metrics,
            });
        }
    }

    // Cold vs warm through a private cache (not the process-global one,
    // so bench runs do not disturb live cache statistics).
    let (circuit_name, circuit) = &suite[0];
    let mut options = TranspileOptions::for_device(CouplingMap::grid(3, 4));
    options.optimization_level = 1;
    options.mapper = MapperKind::Sabre;
    let cache = transpiler::cache::TranspileCache::new(4);
    let key = transpiler::cache::TranspileCache::key(circuit, &options);
    let mut cold = f64::INFINITY;
    let mut warm = f64::INFINITY;
    for _ in 0..repeats {
        cache.clear();
        let start = std::time::Instant::now();
        let result = transpiler::transpile(circuit, &options).expect("cold transpile");
        cache.insert(key, result);
        cold = cold.min(elapsed_seconds(start));
        let start = std::time::Instant::now();
        let hit = cache.lookup(key);
        warm = warm.min(elapsed_seconds(start));
        assert!(hit.is_some(), "warm lookup must hit");
    }
    let speedup = cold / warm.max(f64::MIN_POSITIVE);
    for (engine_name, wall_seconds) in
        [("transpile_cache[cold]", cold), ("transpile_cache[warm]", warm)]
    {
        let mut metrics = BTreeMap::new();
        if config.collect_metrics {
            metrics.insert("cache_speedup".to_owned(), speedup);
        }
        entries.push(BaselineEntry {
            circuit: circuit_name.clone(),
            engine: engine_name.to_owned(),
            qubits: circuit.num_qubits(),
            gates: circuit.num_gates(),
            shots: 0,
            wall_seconds,
            metrics,
        });
    }
    entries
}

/// Parameter-sweep entries: a 2-local ansatz bound over an angle grid on
/// a (noiseless, seeded) fake device, executed once through the batched
/// sweep path (template transpiled once, one kernel pass over all
/// bindings via `Backend::run_batch`) and once as independent jobs
/// through the executor (the pre-batch traffic shape: a full device
/// transpile, validation, queueing and state allocation for every
/// binding). The process-wide transpile cache is cleared before each
/// timed repeat, because a real sweep presents fresh angles the cache
/// has never seen. Both paths run the same seeded backend, so their
/// counts are asserted identical before the timings are recorded; the
/// batch entry carries the `sweep_speedup` ratio.
fn sweep_entries(config: &BaselineConfig) -> Vec<BaselineEntry> {
    use qukit::aer::noise::NoiseModel;
    use qukit::backend::FakeDevice;
    use qukit::terra::parameter::ParameterizedCircuit;
    use qukit::{ExecutorConfig, JobExecutor, Provider};

    if config.sweep_bindings == 0 {
        return Vec::new();
    }
    // ibmqx4-sized ansatz: at optimization level 1 the transpiler copies
    // rotation angles verbatim, so the sweep's sentinel validation holds
    // and the template genuinely transpiles once.
    let num_qubits = 5;
    // A realistic estimator sweep samples each point lightly; capping the
    // per-point shots also keeps the entry sensitive to the per-job costs
    // (transpile, validation, queueing) the batch path amortizes.
    let sweep_shots = config.shots.min(256);
    let mut ansatz = ParameterizedCircuit::new(num_qubits);
    let params: Vec<_> = (0..2 * num_qubits).map(|i| ansatz.parameter(format!("t{i}"))).collect();
    for (q, &param) in params.iter().take(num_qubits).enumerate() {
        ansatz.ry(param, q).expect("valid ansatz");
    }
    for q in 0..num_qubits - 1 {
        ansatz.circuit_mut().cx(q, q + 1).expect("valid ansatz");
    }
    for (q, &param) in params.iter().skip(num_qubits).enumerate() {
        ansatz.ry(param, q).expect("valid ansatz");
    }
    let bindings: Vec<Vec<f64>> = (0..config.sweep_bindings)
        .map(|point| {
            (0..2 * num_qubits).map(|i| 0.1 + 0.37 * (point * 2 * num_qubits + i) as f64).collect()
        })
        .collect();

    let device =
        FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(config.seed).with_opt_level(1);
    let mut provider = Provider::new();
    provider.register(Box::new(device));
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig {
            workers: 1,
            queue_capacity: config.sweep_bindings + 4,
            ..Default::default()
        },
    );

    let repeats = config.repeats.max(1);
    let mut batch_wall = f64::INFINITY;
    let mut batch_counts = Vec::new();
    for _ in 0..repeats {
        qukit::terra::transpiler::cache::global().clear();
        let start = std::time::Instant::now();
        let report =
            executor.run_sweep(&ansatz, &bindings, "ibmqx4", sweep_shots).expect("sweep run");
        batch_wall = batch_wall.min(elapsed_seconds(start));
        assert!(
            report.transpiled_once,
            "sweep template must transpile once on the opt-level-1 device path"
        );
        batch_counts = report.counts;
    }

    let mut independent_wall = f64::INFINITY;
    for _ in 0..repeats {
        qukit::terra::transpiler::cache::global().clear();
        let start = std::time::Instant::now();
        let mut all_counts = Vec::with_capacity(bindings.len());
        for values in &bindings {
            let bound = ansatz.bind(values).expect("binding");
            let job = executor.submit(&bound, "ibmqx4", sweep_shots).expect("sweep submit");
            all_counts
                .push(job.result(std::time::Duration::from_secs(300)).expect("sweep job result"));
        }
        independent_wall = independent_wall.min(elapsed_seconds(start));
        assert_eq!(
            all_counts, batch_counts,
            "batched sweep must be bit-identical to independent jobs"
        );
    }

    let speedup = independent_wall / batch_wall.max(1e-12);
    let circuit_name = format!("two_local_{num_qubits}x{}", config.sweep_bindings);
    let gates = ansatz.template().num_gates();
    [("sweep[batch]", batch_wall, true), ("sweep[independent]", independent_wall, false)]
        .into_iter()
        .map(|(engine, wall_seconds, is_batch)| {
            let mut metrics = BTreeMap::new();
            if config.collect_metrics {
                metrics.insert("bindings".to_owned(), config.sweep_bindings as f64);
                if is_batch {
                    metrics.insert("sweep_speedup".to_owned(), speedup);
                }
            }
            BaselineEntry {
                circuit: circuit_name.clone(),
                engine: engine.to_owned(),
                qubits: num_qubits,
                gates,
                shots: sweep_shots,
                wall_seconds,
                metrics,
            }
        })
        .collect()
}

/// One slowdown found by [`Baseline::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Circuit name of the regressed entry.
    pub circuit: String,
    /// Engine name of the regressed entry.
    pub engine: String,
    /// Wall seconds in the old (reference) baseline.
    pub old_wall: f64,
    /// Wall seconds in the new (candidate) baseline.
    pub new_wall: f64,
    /// Noise-floored slowdown ratio (`> 1 + tolerance` to be reported).
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {}: {:.6}s -> {:.6}s ({:.2}x)",
            self.circuit, self.engine, self.old_wall, self.new_wall, self.ratio
        )
    }
}

/// Adds terminal measurements where the suite circuit has none (the
/// backends require measured circuits for sampling).
fn prepared(circuit: &QuantumCircuit) -> QuantumCircuit {
    if circuit.has_measurements() {
        circuit.clone()
    } else {
        let mut measured = circuit.clone();
        measured.measure_all();
        measured
    }
}

impl Baseline {
    /// Serializes to the `qukit-bench-baseline/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        out.push_str("  \"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"circuit\": \"{}\",", escape(&entry.circuit));
            let _ = writeln!(out, "      \"engine\": \"{}\",", escape(&entry.engine));
            let _ = writeln!(out, "      \"qubits\": {},", entry.qubits);
            let _ = writeln!(out, "      \"gates\": {},", entry.gates);
            let _ = writeln!(out, "      \"shots\": {},", entry.shots);
            let _ = writeln!(out, "      \"wall_seconds\": {},", fmt_f64(entry.wall_seconds));
            out.push_str("      \"metrics\": {");
            for (j, (name, value)) in entry.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        \"{}\": {}", escape(name), fmt_f64(*value));
            }
            if !entry.metrics.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n    }");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses and validates a baseline document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first schema violation.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing \"schema\" field".to_owned())?;
        if schema != BASELINE_SCHEMA {
            return Err(format!("schema '{schema}' is not '{BASELINE_SCHEMA}'"));
        }
        let raw_entries = value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing \"entries\" array".to_owned())?;
        let mut entries = Vec::new();
        for (i, raw) in raw_entries.iter().enumerate() {
            let field_str = |key: &str| {
                raw.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("entry {i}: missing string \"{key}\""))
            };
            let field_num = |key: &str| {
                raw.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("entry {i}: missing number \"{key}\""))
            };
            let metrics_obj = raw
                .get("metrics")
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("entry {i}: missing object \"metrics\""))?;
            let mut metrics = BTreeMap::new();
            for (name, v) in metrics_obj {
                let value = v
                    .as_f64()
                    .ok_or_else(|| format!("entry {i}: metric \"{name}\" is not a number"))?;
                metrics.insert(name.clone(), value);
            }
            entries.push(BaselineEntry {
                circuit: field_str("circuit")?,
                engine: field_str("engine")?,
                qubits: field_num("qubits")? as usize,
                gates: field_num("gates")? as usize,
                shots: field_num("shots")? as usize,
                wall_seconds: field_num("wall_seconds")?,
                metrics,
            });
        }
        Ok(Self { entries })
    }

    /// Compares `self` (the old reference) against `new`, returning every
    /// shared `(circuit, engine)` pair that slowed down by more than
    /// `tolerance` (0.25 = 25%). Pairs present in only one document are
    /// skipped — baselines are allowed to grow or shrink their sweeps.
    ///
    /// Both wall times are clamped up to `min_wall` before forming the
    /// ratio, so sub-noise-floor timings (see [`MIN_COMPARE_WALL`]) can
    /// never trip the gate.
    pub fn compare(&self, new: &Baseline, tolerance: f64, min_wall: f64) -> Vec<Regression> {
        let mut regressions = Vec::new();
        for old_entry in &self.entries {
            let Some(new_entry) = new
                .entries
                .iter()
                .find(|e| e.circuit == old_entry.circuit && e.engine == old_entry.engine)
            else {
                continue;
            };
            let old_floored = old_entry.wall_seconds.max(min_wall);
            let new_floored = new_entry.wall_seconds.max(min_wall);
            // A `min_wall` of zero (or a hand-edited baseline) can leave a
            // zero on either side; never form 0/0 or x/0.
            let ratio = if old_floored > 0.0 {
                new_floored / old_floored
            } else if new_floored > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            if ratio > 1.0 + tolerance {
                regressions.push(Regression {
                    circuit: old_entry.circuit.clone(),
                    engine: old_entry.engine.clone(),
                    old_wall: old_entry.wall_seconds,
                    new_wall: new_entry.wall_seconds,
                    ratio,
                });
            }
        }
        regressions
    }
}

/// Finite shortest-roundtrip float formatting (JSON has no NaN/Inf).
fn fmt_f64(value: f64) -> String {
    if !value.is_finite() {
        return "0".to_owned();
    }
    let text = format!("{value}");
    // `{}` on f64 already round-trips; just make integers explicit
    // floats so the field parses as a number either way.
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline runs mutate the global metrics registry; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn baseline_covers_at_least_eight_circuit_engine_pairs() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 64, ..Default::default() });
        assert!(baseline.entries.len() >= 8, "only {} entries", baseline.entries.len());
        let mut pairs: Vec<(String, String)> =
            baseline.entries.iter().map(|e| (e.circuit.clone(), e.engine.clone())).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), baseline.entries.len(), "pairs must be unique");
        assert!(baseline.entries.iter().all(|e| e.wall_seconds >= 0.0));
        assert!(!qukit_obs::enabled(), "baseline leaves metrics as it found them");
    }

    #[test]
    fn baseline_entries_embed_engine_metrics() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 32, ..Default::default() });
        let dd =
            baseline.entries.iter().find(|e| e.engine == "dd_simulator").expect("dd entries exist");
        assert!(
            dd.metrics.keys().any(|k| k.starts_with("qukit_dd_")),
            "dd entry carries dd metrics: {:?}",
            dd.metrics.keys().collect::<Vec<_>>()
        );
        let sv = baseline
            .entries
            .iter()
            .find(|e| e.engine == "qasm_simulator")
            .expect("statevector entries exist");
        assert!(sv.metrics.keys().any(|k| k.starts_with("qukit_aer_")));
    }

    #[test]
    fn baseline_covers_routing_and_cache_entries() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 16, ..Default::default() });
        for circuit in ["qft_12", "random_12x200"] {
            for engine in ["transpile[sabre]", "transpile[astar]"] {
                let entry = baseline
                    .entries
                    .iter()
                    .find(|e| e.circuit == circuit && e.engine == engine)
                    .unwrap_or_else(|| panic!("missing {circuit}/{engine}"));
                assert!(entry.metrics.contains_key("swaps_inserted"));
                assert!(entry.metrics["depth_out"] > 0.0);
            }
        }
        let cold = baseline
            .entries
            .iter()
            .find(|e| e.engine == "transpile_cache[cold]")
            .expect("cold cache entry");
        let warm = baseline
            .entries
            .iter()
            .find(|e| e.engine == "transpile_cache[warm]")
            .expect("warm cache entry");
        // The headline cache claim: a hit skips the whole pipeline, so it
        // must be at least 10× faster than the cold transpile (in
        // practice it is a hash plus a clone, thousands of times faster).
        assert!(
            warm.wall_seconds * 10.0 <= cold.wall_seconds,
            "cache hit not >=10x faster: cold {:.6}s warm {:.6}s",
            cold.wall_seconds,
            warm.wall_seconds
        );
        assert!(warm.metrics["cache_speedup"] >= 10.0);
    }

    #[test]
    fn baseline_json_round_trips() {
        let _guard = lock();
        let baseline = run_baseline(&BaselineConfig { shots: 16, ..Default::default() });
        let json = baseline.to_json();
        let parsed = Baseline::from_json(&json).expect("own output validates");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::from_json("{}").is_err());
        assert!(Baseline::from_json("{\"schema\": \"other/v9\", \"entries\": []}").is_err());
        assert!(Baseline::from_json(
            "{\"schema\": \"qukit-bench-baseline/v1\", \"entries\": [{}]}"
        )
        .is_err());
        assert!(Baseline::from_json("not json").is_err());
    }

    #[test]
    fn parallel_engine_names_parse() {
        assert_eq!(parse_parallel_engine("parallel_statevector[t=4]"), Some((4, true)));
        assert_eq!(parse_parallel_engine("parallel_statevector[t=16]"), Some((16, true)));
        assert_eq!(parse_parallel_engine("parallel_statevector[t=1,simd=off]"), Some((1, false)));
        assert_eq!(parse_parallel_engine("qasm_simulator"), None);
        assert_eq!(parse_parallel_engine("parallel_statevector[t=x]"), None);
        assert_eq!(parse_parallel_engine("parallel_statevector[t=x,simd=off]"), None);
    }

    #[test]
    fn large_suite_includes_simd_and_scalar_dense_entries() {
        for circuit in ["ghz_24", "qft_22", "qft_24", "random_26x40"] {
            for engine in ["parallel_statevector[t=1]", "parallel_statevector[t=1,simd=off]"] {
                assert!(
                    sweep(&[], true)
                        .iter()
                        .any(|(name, _, engines)| name == circuit
                            && engines.iter().any(|e| e == engine)),
                    "missing large entry ({circuit}, {engine})"
                );
            }
        }
        assert!(
            !sweep(&[], false).iter().any(|(name, _, _)| name == "qft_24"),
            "large entries must stay behind the flag"
        );
    }

    #[test]
    fn compare_survives_zero_wall_baselines() {
        // min_wall 0 with hand-edited zero timings: no NaN, no panic.
        let old = Baseline { entries: vec![entry("bell", "qasm_simulator", 0.0)] };
        let same = Baseline { entries: vec![entry("bell", "qasm_simulator", 0.0)] };
        assert!(old.compare(&same, 0.25, 0.0).is_empty());
        let slower = Baseline { entries: vec![entry("bell", "qasm_simulator", 0.01)] };
        let regressions = old.compare(&slower, 0.25, 0.0);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].ratio.is_infinite());
    }

    #[test]
    fn sweep_entries_record_batch_speedup_and_identical_results() {
        let _guard = lock();
        let config = BaselineConfig {
            shots: 64,
            repeats: 1,
            threads: Vec::new(),
            sweep_bindings: 8,
            ..Default::default()
        };
        let entries = sweep_entries(&config);
        assert_eq!(entries.len(), 2);
        let batch = entries.iter().find(|e| e.engine == "sweep[batch]").expect("batch entry");
        let independent =
            entries.iter().find(|e| e.engine == "sweep[independent]").expect("independent entry");
        assert_eq!(batch.circuit, "two_local_5x8");
        assert_eq!(batch.metrics["bindings"], 8.0);
        assert!(batch.metrics.contains_key("sweep_speedup"));
        assert!(batch.wall_seconds > 0.0 && independent.wall_seconds > 0.0);
    }

    #[test]
    fn sweep_covers_wide_circuits_at_every_thread_count() {
        let _guard = lock();
        let config =
            BaselineConfig { shots: 16, repeats: 1, threads: vec![1, 2], ..Default::default() };
        let baseline = run_baseline(&config);
        for circuit in ["qft_12", "random_12x200"] {
            for engine in
                ["qasm_simulator", "parallel_statevector[t=1]", "parallel_statevector[t=2]"]
            {
                assert!(
                    baseline.entries.iter().any(|e| e.circuit == circuit && e.engine == engine),
                    "missing ({circuit}, {engine})"
                );
            }
        }
        let parallel = baseline
            .entries
            .iter()
            .find(|e| e.circuit == "qft_12" && e.engine == "parallel_statevector[t=2]")
            .expect("parallel entry");
        assert!(
            parallel.metrics.keys().any(|k| k.starts_with("qukit_terra_fusion_")),
            "parallel entry carries fusion metrics: {:?}",
            parallel.metrics.keys().collect::<Vec<_>>()
        );
    }

    fn entry(circuit: &str, engine: &str, wall: f64) -> BaselineEntry {
        BaselineEntry {
            circuit: circuit.to_owned(),
            engine: engine.to_owned(),
            qubits: 2,
            gates: 2,
            shots: 16,
            wall_seconds: wall,
            metrics: BTreeMap::new(),
        }
    }

    #[test]
    fn compare_flags_slowdowns_beyond_tolerance() {
        let old = Baseline {
            entries: vec![entry("bell", "qasm_simulator", 0.010), entry("bell", "ibmqx4", 0.010)],
        };
        let new = Baseline {
            entries: vec![entry("bell", "qasm_simulator", 0.020), entry("bell", "ibmqx4", 0.011)],
        };
        let regressions = old.compare(&new, 0.25, MIN_COMPARE_WALL);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].engine, "qasm_simulator");
        assert!(regressions[0].ratio > 1.9 && regressions[0].ratio < 2.1);
        assert!(regressions[0].to_string().contains("qasm_simulator"));
    }

    #[test]
    fn compare_floors_sub_noise_timings_and_skips_unshared_pairs() {
        // 3 µs -> 300 µs is a 100x blowup on paper but both sit under the
        // noise floor, so it must not trip the gate.
        let old = Baseline { entries: vec![entry("bell", "qasm_simulator", 0.000_003)] };
        let new = Baseline {
            entries: vec![
                entry("bell", "qasm_simulator", 0.000_3),
                entry("qft_12", "parallel_statevector[t=4]", 5.0),
            ],
        };
        assert!(old.compare(&new, 0.25, MIN_COMPARE_WALL).is_empty());
        // A genuine slowdown above the floor is still caught.
        let slow = Baseline { entries: vec![entry("bell", "qasm_simulator", 0.01)] };
        assert_eq!(old.compare(&slow, 0.25, MIN_COMPARE_WALL).len(), 1);
    }

    #[test]
    fn metrics_can_be_disabled_for_overhead_runs() {
        let _guard = lock();
        let config = BaselineConfig { shots: 16, collect_metrics: false, ..Default::default() };
        let baseline = run_baseline(&config);
        assert!(baseline.entries.iter().all(|e| e.metrics.is_empty()));
    }
}
