//! # qukit-bench
//!
//! Shared workload generators for the benchmark harness that regenerates
//! every figure and quantitative claim of *"IBM's Qiskit Tool Chain"*
//! (DATE 2019). The bench targets live in `benches/` — one per
//! figure/claim; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results.

pub mod baseline;
pub mod load;

use qukit::terra::circuit::QuantumCircuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An n-qubit GHZ preparation circuit.
pub fn ghz(n: usize) -> QuantumCircuit {
    qukit::aqua::circuits::ghz_circuit(n)
}

/// An n-qubit QFT circuit.
pub fn qft(n: usize) -> QuantumCircuit {
    qukit::aqua::circuits::qft_circuit(n)
}

/// An n-qubit layered entangler: Ry rotations + CX ladder
/// (structured but not Clifford).
pub fn entangler(n: usize, layers: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("entangler_{n}x{layers}"));
    for layer in 0..layers {
        for q in 0..n {
            circ.ry(0.1 + 0.37 * (layer * n + q) as f64, q).expect("valid");
        }
        for q in 0..n.saturating_sub(1) {
            circ.cx(q, q + 1).expect("valid");
        }
    }
    circ
}

/// A seeded random circuit over `{H, T, Rx, CX}` — the unstructured
/// workload where dense arrays beat decision diagrams.
pub fn random_circuit(n: usize, gates: usize, seed: u64) -> QuantumCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("random_{n}x{gates}"));
    for _ in 0..gates {
        match rng.gen_range(0..4) {
            0 => {
                circ.h(rng.gen_range(0..n)).expect("valid");
            }
            1 => {
                circ.t(rng.gen_range(0..n)).expect("valid");
            }
            2 => {
                circ.rx(rng.gen::<f64>() * std::f64::consts::TAU, rng.gen_range(0..n))
                    .expect("valid");
            }
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                circ.cx(a, b).expect("valid");
            }
        }
    }
    circ
}

/// A Toffoli cascade (deep, mapping-hostile benchmark).
pub fn toffoli_cascade(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("toffoli_cascade_{n}"));
    for q in 0..n.saturating_sub(2) {
        circ.ccx(q, q + 1, q + 2).expect("valid");
    }
    circ
}

/// The named benchmark suite used by the mapping comparison
/// (name, circuit).
pub fn mapping_suite(num_qubits: usize) -> Vec<(String, QuantumCircuit)> {
    let adder_bits = (num_qubits.saturating_sub(2) / 2).clamp(1, 4);
    let adder = {
        let layout = qukit::aqua::arithmetic::AdderLayout::new(adder_bits);
        let mut circ = QuantumCircuit::new(layout.num_qubits());
        circ.set_name(format!("adder_{adder_bits}"));
        qukit::aqua::arithmetic::append_cuccaro_adder(&mut circ, layout).expect("valid");
        circ
    };
    vec![
        (format!("ghz_{num_qubits}"), ghz(num_qubits)),
        (format!("qft_{}", num_qubits.min(8)), qft(num_qubits.min(8))),
        (format!("entangler_{num_qubits}x3"), entangler(num_qubits, 3)),
        (format!("random_{num_qubits}x40"), random_circuit(num_qubits, 40, 1234)),
        (format!("toffoli_cascade_{}", num_qubits.min(8)), toffoli_cascade(num_qubits.min(8))),
        (format!("adder_{adder_bits}"), adder),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_sizes() {
        assert_eq!(ghz(5).num_qubits(), 5);
        assert_eq!(qft(4).num_qubits(), 4);
        assert_eq!(entangler(4, 3).count_ops()["cx"], 9);
        assert_eq!(random_circuit(4, 30, 1).num_gates(), 30);
        assert_eq!(toffoli_cascade(5).count_ops()["ccx"], 3);
        assert_eq!(mapping_suite(8).len(), 6);
    }

    #[test]
    fn random_circuits_are_reproducible() {
        let a = random_circuit(4, 20, 99);
        let b = random_circuit(4, 20, 99);
        assert_eq!(a.instructions(), b.instructions());
        let c = random_circuit(4, 20, 100);
        assert_ne!(a.instructions(), c.instructions());
    }
}
