//! Multi-tenant load generator for the execution service.
//!
//! Hammers a [`JobExecutor`] with concurrent mixed-size jobs across
//! simulated tenants and reports the service-level numbers the paper's
//! cloud-access story (Section II-B: queued jobs against shared IBM Q
//! devices) makes interesting: latency quantiles, throughput, shed
//! rate, and result-cache hit rate — all read back through the
//! `qukit-obs` metrics layer rather than a private side channel, so
//! the report exercises the same counters operators would scrape.
//!
//! The generator is deterministic for a given [`LoadConfig`]: payloads
//! are drawn from a fixed circuit pool with a seeded SplitMix64 stream
//! and the backend is seeded, so CI can re-run the same workload and
//! gate on the emitted [`Baseline`] with `qukit stats --compare`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qukit::job::{ExecutorConfig, Job, JobEvent, JobExecutor, JobObserver, JobStatus, ObserverSet};
use qukit::provider::Provider;
use qukit::terra::circuit::QuantumCircuit;
use qukit::{CacheConfig, Priority, QasmSimulatorBackend, RetryPolicy, TenantConfig};

use crate::baseline::{Baseline, BaselineEntry};

/// Configuration of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of simulated tenants (sessions) submitting concurrently.
    pub tenants: usize,
    /// Total jobs submitted across all tenants.
    pub jobs: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Global submission-queue capacity.
    pub queue_capacity: usize,
    /// Per-tenant pending cap (admission control); exceeding it sheds
    /// the submission with a typed `Rejected` status.
    pub max_pending: usize,
    /// Distinct circuit payloads cycled through; `jobs >> payload_pool`
    /// guarantees repeats, which is what gives the result cache hits.
    pub payload_pool: usize,
    /// Shots per job.
    pub shots: usize,
    /// Seed for payload selection, priorities, and the backend.
    pub seed: u64,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Microseconds between submissions. 0 bursts the whole workload at
    /// once (maximal shed pressure); a nonzero arrival pace lets the
    /// workers keep up, which is what CI's latency-gated run uses so
    /// the elapsed wall time is dominated by service work, not jitter.
    pub pace_micros: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            tenants: 4,
            jobs: 200,
            workers: 4,
            queue_capacity: 512,
            max_pending: 24,
            payload_pool: 6,
            shots: 128,
            seed: 7,
            cache_capacity: 64,
            pace_micros: 0,
        }
    }
}

impl LoadConfig {
    /// The small fixed-seed configuration CI's smoke job runs.
    pub fn smoke() -> Self {
        Self {
            tenants: 3,
            jobs: 60,
            workers: 3,
            max_pending: 12,
            payload_pool: 4,
            ..Self::default()
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs the generator attempted to submit.
    pub submitted: usize,
    /// Jobs that reached `Done`.
    pub completed: usize,
    /// Jobs shed by admission control (`Rejected`).
    pub shed: usize,
    /// Jobs that ended `Error`/`TimedOut`/`Cancelled`.
    pub failed: usize,
    /// Jobs left non-terminal after shutdown (must be 0).
    pub lost: usize,
    /// Completion events observed more than once for the same job id
    /// (must be 0).
    pub duplicated: usize,
    /// Completions served by re-sampling the result cache.
    pub cache_hits: usize,
    /// Wall-clock of the whole run (first submit → drained shutdown).
    pub elapsed_seconds: f64,
    /// Median job service time (queue wait + execution), from the
    /// `qukit_core_job_seconds` histogram.
    pub p50_seconds: f64,
    /// 99th-percentile job service time, same histogram.
    pub p99_seconds: f64,
    /// Mean job service time.
    pub mean_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub throughput_jobs_per_sec: f64,
    /// shed / submitted.
    pub shed_rate: f64,
    /// cache hits / (hits + misses) as counted by the executor.
    pub cache_hit_rate: f64,
    /// Per-tenant service numbers, read back from the tenant-labeled
    /// `qukit_core_tenant_*` metric series (ascending by tenant name).
    pub tenants: Vec<TenantBreakdown>,
}

/// One tenant's slice of a load run, as told by the labeled metrics.
#[derive(Debug, Clone, Default)]
pub struct TenantBreakdown {
    /// Tenant name (the `tenant` label value).
    pub tenant: String,
    /// Jobs accepted into the queue for this tenant.
    pub submitted: u64,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Median submit-to-done latency, from the tenant-labeled histogram.
    pub p50_seconds: f64,
    /// 99th-percentile submit-to-done latency.
    pub p99_seconds: f64,
}

/// Reads the per-tenant breakdown out of a metrics snapshot by parsing
/// the `{tenant="..."}` label baked into the `qukit_core_tenant_*`
/// series names.
pub fn tenant_breakdown(snapshot: &qukit_obs::Snapshot) -> Vec<TenantBreakdown> {
    fn tenant_of<'a>(name: &'a str, base: &str) -> Option<&'a str> {
        name.strip_prefix(base)
            .and_then(|rest| rest.strip_prefix("{tenant=\""))
            .and_then(|rest| rest.strip_suffix("\"}"))
    }
    fn row<'a>(
        rows: &'a mut BTreeMap<String, TenantBreakdown>,
        tenant: &str,
    ) -> &'a mut TenantBreakdown {
        rows.entry(tenant.to_owned()).or_insert_with(|| TenantBreakdown {
            tenant: tenant.to_owned(),
            ..TenantBreakdown::default()
        })
    }
    let mut rows: BTreeMap<String, TenantBreakdown> = BTreeMap::new();
    for (name, &value) in &snapshot.counters {
        if let Some(t) = tenant_of(name, "qukit_core_tenant_jobs_submitted_total") {
            row(&mut rows, t).submitted = value;
        } else if let Some(t) = tenant_of(name, "qukit_core_tenant_jobs_completed_total") {
            row(&mut rows, t).completed = value;
        } else if let Some(t) = tenant_of(name, "qukit_core_tenant_jobs_shed_total") {
            row(&mut rows, t).shed = value;
        } else if let Some(t) = tenant_of(name, "qukit_core_tenant_cache_hits_total") {
            row(&mut rows, t).cache_hits = value;
        }
    }
    for (name, hist) in &snapshot.histograms {
        if let Some(t) = tenant_of(name, "qukit_core_tenant_job_seconds") {
            let entry = row(&mut rows, t);
            entry.p50_seconds = hist.quantile(0.50);
            entry.p99_seconds = hist.quantile(0.99);
        }
    }
    rows.into_values().collect()
}

impl LoadReport {
    /// Renders the human-readable summary `qukit bench --load` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "submitted {}  completed {}  shed {}  failed {}  lost {}  duplicated {}\n",
            self.submitted, self.completed, self.shed, self.failed, self.lost, self.duplicated
        ));
        out.push_str(&format!(
            "latency p50 {:.6}s  p99 {:.6}s  mean {:.6}s\n",
            self.p50_seconds, self.p99_seconds, self.mean_seconds
        ));
        out.push_str(&format!(
            "throughput {:.1} jobs/s  shed rate {:.1}%  cache hit rate {:.1}%  ({} hits)\n",
            self.throughput_jobs_per_sec,
            100.0 * self.shed_rate,
            100.0 * self.cache_hit_rate,
            self.cache_hits
        ));
        out.push_str(&format!("elapsed {:.3}s\n", self.elapsed_seconds));
        if !self.tenants.is_empty() {
            out.push_str(&format!(
                "{:<12} {:>9} {:>9} {:>6} {:>10} {:>12} {:>12}\n",
                "tenant", "submitted", "completed", "shed", "cache-hits", "p50", "p99"
            ));
            for row in &self.tenants {
                out.push_str(&format!(
                    "{:<12} {:>9} {:>9} {:>6} {:>10} {:>11.6}s {:>11.6}s\n",
                    row.tenant,
                    row.submitted,
                    row.completed,
                    row.shed,
                    row.cache_hits,
                    row.p50_seconds,
                    row.p99_seconds
                ));
            }
        }
        out
    }

    /// Converts the report into a one-entry `qukit-bench-baseline/v1`
    /// document so `qukit stats --compare` can gate service latency the
    /// same way it gates simulator kernels.
    pub fn to_baseline(&self, config: &LoadConfig) -> Baseline {
        let mut metrics = BTreeMap::new();
        metrics.insert("service_p50_seconds".to_owned(), self.p50_seconds);
        metrics.insert("service_p99_seconds".to_owned(), self.p99_seconds);
        metrics.insert("service_mean_seconds".to_owned(), self.mean_seconds);
        metrics.insert("throughput_jobs_per_sec".to_owned(), self.throughput_jobs_per_sec);
        metrics.insert("shed_rate".to_owned(), self.shed_rate);
        metrics.insert("cache_hit_rate".to_owned(), self.cache_hit_rate);
        metrics.insert("jobs_completed".to_owned(), self.completed as f64);
        metrics.insert("jobs_shed".to_owned(), self.shed as f64);
        metrics.insert("jobs_lost".to_owned(), self.lost as f64);
        metrics.insert("jobs_duplicated".to_owned(), self.duplicated as f64);
        Baseline {
            entries: vec![BaselineEntry {
                circuit: format!("load_t{}_j{}", config.tenants, config.jobs),
                engine: format!("service[w={}]", config.workers),
                qubits: pool_max_qubits(config.payload_pool),
                gates: 0,
                shots: config.shots,
                wall_seconds: self.elapsed_seconds,
                metrics,
            }],
        }
    }
}

/// The mixed-size payload pool: small GHZ/QFT/entangler/random
/// circuits, varied enough to exercise different service times but
/// small enough that the generator is queue-bound, not compute-bound.
pub fn payload_pool(size: usize) -> Vec<QuantumCircuit> {
    (0..size.max(1))
        .map(|i| match i % 4 {
            0 => crate::ghz(2 + i % 4),
            1 => crate::qft(3 + i % 3),
            2 => crate::entangler(3 + i % 3, 2),
            _ => crate::random_circuit(3 + i % 3, 16, 1000 + i as u64),
        })
        .collect()
}

fn pool_max_qubits(size: usize) -> usize {
    payload_pool(size).iter().map(QuantumCircuit::num_qubits).max().unwrap_or(0)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Observes completion events to detect duplicated terminals — the
/// "every job terminal exactly once" service invariant, checked from
/// the outside through the public observer API.
struct CompletionLedger {
    completed_ids: Mutex<Vec<u64>>,
}

impl JobObserver for CompletionLedger {
    fn on_event(&self, event: &JobEvent) {
        if let JobEvent::Completed { job_id, .. } = event {
            self.completed_ids.lock().expect("ledger lock").push(*job_id);
        }
    }
}

/// Runs one load-generator pass and reports service-level metrics.
///
/// Metrics recording is force-enabled for the duration of the run (the
/// latency quantiles come from the `qukit_core_job_seconds` histogram)
/// and restored afterwards. The global registry is reset first, so run
/// this from a context that owns the registry (the CLI does; tests
/// serialize on a lock).
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let was_enabled = qukit_obs::enabled();
    qukit_obs::set_enabled(true);
    qukit_obs::registry().reset();

    let pool = payload_pool(config.payload_pool);
    let mut provider = Provider::new();
    provider.register(Box::new(QasmSimulatorBackend::new().with_seed(config.seed)));

    let ledger = std::sync::Arc::new(CompletionLedger { completed_ids: Mutex::new(Vec::new()) });
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            retry: RetryPolicy::none(),
            observers: ObserverSet::metrics().with(ledger.clone()),
            cache: Some(CacheConfig::default().with_capacity(config.cache_capacity.max(1))),
            ..Default::default()
        },
    );

    let tenant_config = TenantConfig::default().with_max_pending(config.max_pending.max(1));
    let sessions: Vec<_> = (0..config.tenants.max(1))
        .map(|t| {
            // Uneven weights so fair-share actually has shares to arbitrate.
            let weight = 1 + (t % 3) as u32;
            executor.session_with(&format!("tenant-{t}"), tenant_config.with_weight(weight))
        })
        .collect();

    let started = Instant::now();
    let mut rng = config.seed ^ 0xD0E1_F2A3_B4C5_9687;
    let mut handles: Vec<Job> = Vec::with_capacity(config.jobs);
    let mut submitted = 0usize;
    let mut submit_errors = 0usize;
    for i in 0..config.jobs {
        let session = &sessions[i % sessions.len()];
        let circuit = &pool[(splitmix64(&mut rng) as usize) % pool.len()];
        let priority = match splitmix64(&mut rng) % 8 {
            0 => Priority::High,
            1 | 2 => Priority::Low,
            _ => Priority::Normal,
        };
        if config.pace_micros > 0 && i > 0 {
            std::thread::sleep(Duration::from_micros(config.pace_micros));
        }
        submitted += 1;
        match session.submit_with(circuit, "qasm_simulator", config.shots, priority, None) {
            Ok(job) => handles.push(job),
            // Global-capacity rejections count as shed too; the typed
            // per-tenant path returns Ok(Rejected) and lands in handles.
            Err(_) => submit_errors += 1,
        }
    }
    executor.shutdown();
    let elapsed = started.elapsed().max(Duration::from_micros(1));

    let mut completed = 0usize;
    let mut shed = submit_errors;
    let mut failed = 0usize;
    let mut lost = 0usize;
    let mut cache_hits_handles = 0usize;
    for job in &handles {
        match job.status() {
            JobStatus::Done => {
                completed += 1;
                if job.served_from_cache() {
                    cache_hits_handles += 1;
                }
            }
            JobStatus::Rejected => shed += 1,
            JobStatus::Error | JobStatus::TimedOut | JobStatus::Cancelled => failed += 1,
            JobStatus::Queued | JobStatus::Running => lost += 1,
        }
    }

    let ids = ledger.completed_ids.lock().expect("ledger lock");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    let duplicated = sorted.windows(2).filter(|w| w[0] == w[1]).count();
    drop(ids);

    let snapshot =
        qukit_obs::histogram("qukit_core_job_seconds", &qukit_obs::DURATION_BUCKETS).snapshot();
    let hits = qukit_obs::counter("qukit_core_cache_hits_total").value();
    let misses = qukit_obs::counter("qukit_core_cache_misses_total").value();
    let probes = hits + misses;
    let tenants = tenant_breakdown(&qukit_obs::registry().snapshot());

    qukit_obs::set_enabled(was_enabled);

    LoadReport {
        submitted,
        completed,
        shed,
        failed,
        lost,
        duplicated,
        cache_hits: cache_hits_handles,
        elapsed_seconds: elapsed.as_secs_f64(),
        p50_seconds: snapshot.quantile(0.50),
        p99_seconds: snapshot.quantile(0.99),
        mean_seconds: snapshot.mean(),
        throughput_jobs_per_sec: completed as f64 / elapsed.as_secs_f64(),
        shed_rate: if submitted == 0 { 0.0 } else { shed as f64 / submitted as f64 },
        cache_hit_rate: if probes == 0 { 0.0 } else { hits as f64 / probes as f64 },
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Load runs mutate the global metrics registry; serialize them
    /// (and against baseline.rs tests via cargo's per-crate binary).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn load_run_loses_nothing_and_hits_the_cache() {
        let _guard = lock();
        let config = LoadConfig::smoke();
        let report = run_load(&config);
        assert_eq!(report.submitted, config.jobs);
        assert_eq!(report.lost, 0, "no job may be left non-terminal after shutdown");
        assert_eq!(report.duplicated, 0, "no job may complete twice");
        assert_eq!(report.completed + report.shed + report.failed, config.jobs);
        assert!(report.completed > 0);
        assert!(
            report.cache_hit_rate > 0.0,
            "repeated payloads must hit the result cache (rate {})",
            report.cache_hit_rate
        );
        assert!(report.p99_seconds >= report.p50_seconds);
        assert!(report.p50_seconds > 0.0);
        assert!(report.throughput_jobs_per_sec > 0.0);
    }

    #[test]
    fn load_report_breaks_service_numbers_down_per_tenant() {
        let _guard = lock();
        let config = LoadConfig { tenants: 3, jobs: 24, ..LoadConfig::smoke() };
        let report = run_load(&config);
        assert_eq!(report.tenants.len(), 3, "one breakdown row per tenant");
        for (i, row) in report.tenants.iter().enumerate() {
            assert_eq!(row.tenant, format!("tenant-{i}"), "rows sorted by tenant name");
        }
        let submitted: u64 = report.tenants.iter().map(|r| r.submitted).sum();
        let completed: u64 = report.tenants.iter().map(|r| r.completed).sum();
        assert_eq!(submitted + report.shed as u64, report.submitted as u64);
        assert_eq!(completed, report.completed as u64);
        let rendered = report.render();
        assert!(rendered.contains("tenant-2"), "render includes the breakdown:\n{rendered}");
    }

    #[test]
    fn load_report_round_trips_through_the_baseline_schema() {
        let _guard = lock();
        let config = LoadConfig { tenants: 2, jobs: 16, payload_pool: 2, ..LoadConfig::smoke() };
        let report = run_load(&config);
        let baseline = report.to_baseline(&config);
        let parsed = Baseline::from_json(&baseline.to_json()).expect("schema-valid");
        assert_eq!(parsed.entries.len(), 1);
        let entry = &parsed.entries[0];
        assert_eq!(entry.circuit, "load_t2_j16");
        assert_eq!(entry.engine, "service[w=3]");
        assert!(entry.metrics.contains_key("service_p99_seconds"));
        assert!(entry.metrics.contains_key("cache_hit_rate"));
        assert_eq!(entry.metrics["jobs_lost"], 0.0);
    }

    #[test]
    fn payload_pool_mixes_sizes() {
        let pool = payload_pool(6);
        assert_eq!(pool.len(), 6);
        let qubits: std::collections::BTreeSet<_> =
            pool.iter().map(QuantumCircuit::num_qubits).collect();
        assert!(qubits.len() > 1, "pool should mix circuit sizes: {qubits:?}");
    }
}
