//! Self-test of the conformance harness: plant a deliberately wrong gate
//! matrix in the reference path and require the fuzzer to (a) find it and
//! (b) shrink the witness to a handful of gates.
//!
//! This is the harness testing itself — if a future change makes the
//! differential oracle blind or the shrinker too timid, this test fails
//! before any real simulator bug slips through.

use qukit_conformance::{
    run_fuzz, DiffConfig, FuzzConfig, GateSet, GeneratorConfig, MatrixTable, OracleKind,
};
use qukit_terra::complex::Complex;
use qukit_terra::matrix::Matrix;
use std::f64::consts::PI;

/// A T gate with the wrong phase: e^{iπ/3} instead of e^{iπ/4}. Subtle
/// enough to survive Clifford-only circuits, fatal in superposition.
fn buggy_t() -> Matrix {
    let mut wrong = Matrix::identity(2);
    wrong[(1, 1)] = Complex::cis(PI / 3.0);
    wrong
}

#[test]
fn planted_t_phase_bug_is_found_and_shrunk() {
    let config = FuzzConfig {
        seed: 42,
        cases: 400,
        oracles: vec![OracleKind::Differential],
        matrices: MatrixTable::pristine().with_override("t", buggy_t()),
        generator: GeneratorConfig {
            gate_set: GateSet::CliffordT,
            min_qubits: 2,
            max_qubits: 3,
            max_depth: 10,
            ..Default::default()
        },
        diff: DiffConfig { shots: 256, ..Default::default() },
        max_failures: 1,
        shrink: true,
    };
    let report = run_fuzz(&config);
    assert!(!report.is_green(), "the planted T-phase bug must be detected");
    let failure = &report.failures[0];
    assert_eq!(failure.mismatch.oracle, "differential");
    assert!(
        failure.shrunk.num_gates() <= 5,
        "shrinker left {} gates (expected <= 5):\n{}",
        failure.shrunk.num_gates(),
        failure.reproducer.qasm
    );
    assert!(
        failure.shrunk.num_gates() < failure.original.num_gates()
            || failure.original.num_gates() <= 5,
        "shrinker made no progress on a {}-gate witness",
        failure.original.num_gates()
    );
    // The witness must actually contain the buggy gate.
    assert!(
        failure.shrunk.instructions().iter().any(|inst| matches!(inst.op.name(), "t" | "tdg")),
        "shrunk witness lost the buggy gate:\n{}",
        failure.reproducer.qasm
    );
    // And the artifacts must replay: the QASM parses back to the witness.
    let replayed = qukit_terra::qasm::parse(&failure.reproducer.qasm).unwrap();
    assert_eq!(replayed.num_gates(), failure.shrunk.num_gates());
    assert!(failure.reproducer.test_case.contains("OracleSuite"));
}

#[test]
fn pristine_matrices_keep_the_same_campaign_green() {
    // Identical campaign without the override: must be green, proving the
    // failure above is caused by the planted bug and nothing else.
    let config = FuzzConfig {
        seed: 42,
        cases: 100,
        oracles: vec![OracleKind::Differential],
        generator: GeneratorConfig {
            gate_set: GateSet::CliffordT,
            min_qubits: 2,
            max_qubits: 3,
            max_depth: 10,
            ..Default::default()
        },
        diff: DiffConfig { shots: 256, ..Default::default() },
        ..Default::default()
    };
    let report = run_fuzz(&config);
    assert!(report.is_green(), "pristine campaign failed: {:?}", report.failures);
}
