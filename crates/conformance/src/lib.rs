//! Differential conformance harness for the qukit simulator family.
//!
//! The toolchain ships four independent executions of the same quantum
//! semantics — statevector, density matrix, stabilizer tableau and
//! decision diagrams — plus a transpiler that rewrites circuits onto
//! device topologies. Any two of them disagreeing is a bug by
//! construction, so the cheapest oracle is each other.
//!
//! This crate wires that observation into a fuzzing loop:
//!
//! 1. [`generator::CircuitGenerator`] emits seeded random circuits;
//! 2. [`oracle::OracleSuite`] checks each circuit differentially across
//!    all simulators and via metamorphic properties (inverse ≡ identity,
//!    QASM roundtrip, transpiled ≡ original under permuted layouts);
//! 3. on failure, [`shrink::shrink`] minimizes the circuit greedily and
//!    [`repro::Reproducer`] renders a `.qasm` artifact plus a
//!    ready-to-paste `#[test]`.
//!
//! The CLI front end is `qukit fuzz`; library users call [`run_fuzz`].

pub mod generator;
pub mod oracle;
pub mod repro;
pub mod runner;
pub mod shrink;

pub use generator::{CircuitGenerator, GateSet, GeneratorConfig};
pub use oracle::{OracleKind, OracleOutcome, OracleSuite};
pub use repro::Reproducer;
pub use runner::{DiffConfig, DifferentialRunner, MatrixTable, Mismatch};
pub use shrink::{shrink, ShrinkOutcome};

use qukit_terra::circuit::QuantumCircuit;
use std::collections::BTreeMap;

/// Everything a fuzzing campaign needs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case `i` is circuit `i` of the seeded stream.
    pub seed: u64,
    /// Number of random circuits to generate and check.
    pub cases: usize,
    /// Shape of the generated circuits.
    pub generator: GeneratorConfig,
    /// Which oracles to run on every circuit.
    pub oracles: Vec<OracleKind>,
    /// Tolerances for the differential comparison.
    pub diff: DiffConfig,
    /// Reference-path gate matrices (overridable for self-tests).
    pub matrices: MatrixTable,
    /// Minimize failing circuits before reporting them.
    pub shrink: bool,
    /// Stop the campaign after this many failures (0 = unlimited).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            cases: 200,
            generator: GeneratorConfig::default(),
            oracles: OracleKind::ALL.to_vec(),
            diff: DiffConfig::default(),
            matrices: MatrixTable::pristine(),
            shrink: true,
            max_failures: 5,
        }
    }
}

/// One failing case, minimized and packaged for replay.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the case in the seeded stream (replay with the same seed).
    pub case_index: usize,
    /// The circuit as generated.
    pub original: QuantumCircuit,
    /// The circuit after shrinking (equals `original` when shrinking is
    /// disabled).
    pub shrunk: QuantumCircuit,
    /// The violation observed on the shrunk circuit.
    pub mismatch: Mismatch,
    /// Replay artifacts (QASM + test snippet).
    pub reproducer: Reproducer,
}

/// Aggregate statistics of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Circuits generated and checked.
    pub cases: usize,
    /// Oracle name → number of passing checks.
    pub checks: BTreeMap<String, usize>,
    /// Oracle name → number of skipped (inapplicable) checks.
    pub skips: BTreeMap<String, usize>,
    /// Oracle name → total wall time spent inside that oracle, seconds
    /// (skips included — skip detection costs time too).
    pub oracle_seconds: BTreeMap<String, f64>,
    /// Campaign wall time, seconds.
    pub elapsed_seconds: f64,
    /// Every failure found, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the campaign finished without violations.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }

    /// Campaign throughput in cases per second (0 for an instant run).
    pub fn cases_per_sec(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.cases as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// Oracles ranked by total time spent, slowest first.
    pub fn slowest_oracles(&self) -> Vec<(&str, f64)> {
        let mut ranked: Vec<(&str, f64)> =
            self.oracle_seconds.iter().map(|(name, secs)| (name.as_str(), *secs)).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }
}

/// Runs a fuzzing campaign and returns its report.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let runner =
        DifferentialRunner::new(config.diff.clone()).with_matrices(config.matrices.clone());
    let suite = OracleSuite::new(config.oracles.clone(), runner);
    let mut generator = CircuitGenerator::new(config.seed, config.generator.clone());
    let mut report = FuzzReport::default();
    let campaign_start = std::time::Instant::now();
    let _campaign_span =
        qukit_obs::span!("fuzz.campaign", seed = config.seed, cases = config.cases);
    for case_index in 0..config.cases {
        let circuit = generator.next_circuit();
        report.cases += 1;
        qukit_obs::counter_inc("qukit_conformance_cases_total");
        let mut failed: Option<(OracleKind, Mismatch)> = None;
        for &kind in suite.kinds() {
            let check_start = std::time::Instant::now();
            let outcome = suite.check_kind(kind, &circuit);
            let elapsed = check_start.elapsed();
            *report.oracle_seconds.entry(kind.name().to_owned()).or_default() +=
                elapsed.as_secs_f64();
            if qukit_obs::enabled() {
                qukit_obs::observe_duration(
                    &format!("qukit_conformance_oracle_seconds{{oracle=\"{}\"}}", kind.name()),
                    elapsed,
                );
            }
            match outcome {
                OracleOutcome::Pass => {
                    *report.checks.entry(kind.name().to_owned()).or_default() += 1;
                }
                OracleOutcome::Skip(_) => {
                    *report.skips.entry(kind.name().to_owned()).or_default() += 1;
                }
                OracleOutcome::Fail(mismatch) => {
                    failed = Some((kind, mismatch));
                    break;
                }
            }
        }
        if let Some((kind, mismatch)) = failed {
            qukit_obs::counter_inc("qukit_conformance_failures_total");
            let failure = package_failure(&suite, kind, case_index, circuit, mismatch, config);
            report.failures.push(failure);
            if config.max_failures != 0 && report.failures.len() >= config.max_failures {
                break;
            }
        }
    }
    report.elapsed_seconds = campaign_start.elapsed().as_secs_f64();
    report
}

fn package_failure(
    suite: &OracleSuite,
    kind: OracleKind,
    case_index: usize,
    original: QuantumCircuit,
    mismatch: Mismatch,
    config: &FuzzConfig,
) -> FuzzFailure {
    let (shrunk, mismatch) = if config.shrink {
        let check = |candidate: &QuantumCircuit| match suite.check_kind(kind, candidate) {
            OracleOutcome::Fail(m) => Some(m),
            _ => None,
        };
        let outcome = shrink::shrink(&original, mismatch, check);
        (outcome.circuit, outcome.mismatch)
    } else {
        (original.clone(), mismatch)
    };
    let reproducer = Reproducer::new(&shrunk, &mismatch);
    FuzzFailure { case_index, original, shrunk, mismatch, reproducer }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_campaign_is_green() {
        let config = FuzzConfig {
            cases: 25,
            generator: GeneratorConfig { max_qubits: 3, max_depth: 8, ..Default::default() },
            diff: DiffConfig { shots: 256, ..Default::default() },
            ..Default::default()
        };
        let report = run_fuzz(&config);
        assert!(report.is_green(), "failures: {:?}", report.failures);
        assert_eq!(report.cases, 25);
        // Every case exercises at least the differential oracle.
        assert!(report.checks["differential"] >= 25);
        // Per-oracle timing is collected even with metrics disabled.
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.cases_per_sec() > 0.0);
        assert!(report.oracle_seconds.contains_key("differential"));
        let slowest = report.slowest_oracles();
        assert_eq!(slowest.len(), report.oracle_seconds.len());
        assert!(slowest.windows(2).all(|w| w[0].1 >= w[1].1), "ranked slowest-first");
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = FuzzConfig {
            cases: 10,
            generator: GeneratorConfig { max_qubits: 3, max_depth: 6, ..Default::default() },
            diff: DiffConfig { shots: 128, ..Default::default() },
            ..Default::default()
        };
        let a = run_fuzz(&config);
        let b = run_fuzz(&config);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.skips, b.skips);
    }

    #[test]
    fn max_failures_bounds_the_campaign() {
        // An always-wrong X matrix fails essentially every circuit.
        let mut wrong = qukit_terra::matrix::Matrix::identity(2);
        wrong[(0, 0)] = qukit_terra::complex::Complex::new(0.5, 0.0);
        let config = FuzzConfig {
            cases: 100,
            max_failures: 2,
            shrink: false,
            oracles: vec![OracleKind::Differential],
            matrices: MatrixTable::pristine().with_override("h", wrong),
            generator: GeneratorConfig { max_qubits: 2, max_depth: 6, ..Default::default() },
            diff: DiffConfig { shots: 128, ..Default::default() },
            ..Default::default()
        };
        let report = run_fuzz(&config);
        assert_eq!(report.failures.len(), 2);
        assert!(report.cases < 100, "campaign must stop early");
    }
}
