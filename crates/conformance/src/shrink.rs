//! Greedy circuit minimization.
//!
//! Once an oracle fails, the raw random circuit is rarely the story — the
//! bug usually lives in two or three gates. The shrinker repeatedly
//! applies three reductions, keeping any candidate on which the failing
//! oracle *still* fails:
//!
//! 1. **drop gates** — delta-debugging style chunk removal (halves, then
//!    quarters, … down to single instructions);
//! 2. **simplify angles** — replace rotation parameters with the nearest
//!    "nice" values (0, ±π/2, π, π/4);
//! 3. **narrow registers** — delete untouched qubits and classical bits,
//!    compacting operand indices.
//!
//! The loop runs to a fixpoint, so the result is 1-minimal with respect
//! to single-chunk removal: dropping any single remaining instruction
//! makes the failure disappear.

use crate::runner::Mismatch;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::gate::Gate;
use qukit_terra::instruction::Instruction;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// A minimized failing circuit plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest circuit found that still fails the oracle.
    pub circuit: QuantumCircuit,
    /// The mismatch reported on the minimized circuit.
    pub mismatch: Mismatch,
    /// How many candidate circuits were evaluated.
    pub attempts: usize,
}

/// Minimizes `original`, which must currently fail `check`.
///
/// `check` returns `Some(mismatch)` while the failure reproduces. The
/// returned circuit is the last candidate for which it did.
pub fn shrink<F>(original: &QuantumCircuit, mismatch: Mismatch, check: F) -> ShrinkOutcome
where
    F: Fn(&QuantumCircuit) -> Option<Mismatch>,
{
    let mut current = original.clone();
    let mut mismatch = mismatch;
    let mut attempts = 0usize;
    loop {
        let mut progressed = false;

        // Pass 1: chunked instruction removal.
        let mut chunk = (current.size() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.size() {
                let len = chunk.min(current.size() - start);
                let candidate = without_range(&current, start, len);
                attempts += 1;
                if let Some(m) = check(&candidate) {
                    current = candidate;
                    mismatch = m;
                    progressed = true;
                    // Same start now addresses the next instructions.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Pass 2: snap rotation angles to simple values. NICE is a strict
        // preference order and an angle may only move to a strictly nicer
        // one — that monotonicity is what makes the fixpoint loop
        // terminate even when the oracle fails for *any* angle.
        const NICE: [f64; 5] = [0.0, FRAC_PI_2, PI, -FRAC_PI_2, FRAC_PI_4];
        let rank = |v: f64| NICE.iter().position(|&n| (v - n).abs() < 1e-12).unwrap_or(NICE.len());
        for idx in 0..current.size() {
            let arity = current.instructions()[idx].as_gate().map_or(0, |g| g.params().len());
            for pos in 0..arity {
                // Re-read the gate: an earlier position may have changed it.
                let gate = *current.instructions()[idx].as_gate().expect("still a gate");
                let params = gate.params();
                for (nice_rank, &nice) in NICE.iter().enumerate() {
                    if nice_rank >= rank(params[pos]) {
                        break;
                    }
                    let mut replaced = params.clone();
                    replaced[pos] = nice;
                    let Some(simpler) = Gate::from_name(gate.name(), &replaced) else { continue };
                    let candidate = with_replaced_gate(&current, idx, simpler);
                    attempts += 1;
                    if let Some(m) = check(&candidate) {
                        current = candidate;
                        mismatch = m;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // Pass 3: drop idle qubits/clbits.
        if let Some(candidate) = narrowed(&current) {
            attempts += 1;
            if let Some(m) = check(&candidate) {
                current = candidate;
                mismatch = m;
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }
    ShrinkOutcome { circuit: current, mismatch, attempts }
}

/// Clone of `circ` without instructions `[start, start + len)`.
fn without_range(circ: &QuantumCircuit, start: usize, len: usize) -> QuantumCircuit {
    rebuild(
        circ,
        |idx, inst| {
            if idx >= start && idx < start + len {
                None
            } else {
                Some(inst.clone())
            }
        },
    )
}

/// Clone of `circ` with the gate of instruction `idx` replaced.
fn with_replaced_gate(circ: &QuantumCircuit, idx: usize, gate: Gate) -> QuantumCircuit {
    rebuild(circ, |i, inst| {
        if i == idx {
            let mut replaced = inst.clone();
            replaced.op = qukit_terra::instruction::Operation::Gate(gate);
            Some(replaced)
        } else {
            Some(inst.clone())
        }
    })
}

fn rebuild<F>(circ: &QuantumCircuit, mut f: F) -> QuantumCircuit
where
    F: FnMut(usize, &Instruction) -> Option<Instruction>,
{
    let mut out = circ.clone();
    out.clear();
    out.add_global_phase(circ.global_phase());
    for (idx, inst) in circ.instructions().iter().enumerate() {
        if let Some(inst) = f(idx, inst) {
            out.push(inst).expect("rebuilt instruction stays in range");
        }
    }
    out
}

/// Rewrites the circuit onto only the qubits and clbits it touches.
/// Returns `None` when nothing can be dropped.
fn narrowed(circ: &QuantumCircuit) -> Option<QuantumCircuit> {
    let mut qubit_used = vec![false; circ.num_qubits()];
    let mut clbit_used = vec![false; circ.num_clbits()];
    for inst in circ.instructions() {
        for &q in &inst.qubits {
            qubit_used[q] = true;
        }
        for &c in &inst.clbits {
            clbit_used[c] = true;
        }
        if let Some(cond) = &inst.condition {
            for &c in &cond.clbits {
                clbit_used[c] = true;
            }
        }
    }
    let keep_q: Vec<usize> = (0..circ.num_qubits()).filter(|&q| qubit_used[q]).collect();
    let keep_c: Vec<usize> = (0..circ.num_clbits()).filter(|&c| clbit_used[c]).collect();
    if keep_q.len() == circ.num_qubits() && keep_c.len() == circ.num_clbits() {
        return None;
    }
    let qubit_rank = |q: usize| keep_q.iter().position(|&k| k == q).expect("kept qubit");
    let clbit_rank = |c: usize| keep_c.iter().position(|&k| k == c).expect("kept clbit");
    let mut out = QuantumCircuit::with_size(keep_q.len().max(1), keep_c.len());
    out.add_global_phase(circ.global_phase());
    for inst in circ.instructions() {
        let mut remapped = inst.clone();
        remapped.qubits = inst.qubits.iter().map(|&q| qubit_rank(q)).collect();
        remapped.clbits = inst.clbits.iter().map(|&c| clbit_rank(c)).collect();
        if let Some(cond) = &mut remapped.condition {
            cond.clbits = cond.clbits.iter().map(|&c| clbit_rank(c)).collect();
        }
        out.push(remapped).expect("narrowed instruction stays in range");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failing_if_contains_t(circ: &QuantumCircuit) -> Option<Mismatch> {
        let has_t = circ.instructions().iter().any(|i| i.op.name() == "t");
        // The "bug" also needs superposition to manifest, mirroring real
        // phase bugs: require an H somewhere before the T.
        let h_before_t = circ
            .instructions()
            .iter()
            .position(|i| i.op.name() == "t")
            .map(|t_pos| circ.instructions()[..t_pos].iter().any(|i| i.op.name() == "h"))
            .unwrap_or(false);
        if has_t && h_before_t {
            Some(Mismatch { oracle: "differential".to_owned(), detail: "t disagrees".into() })
        } else {
            None
        }
    }

    #[test]
    fn shrinks_to_the_minimal_witness() {
        let mut circ = QuantumCircuit::new(4);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.append(Gate::Rz(1.234), &[2]).unwrap();
        circ.h(2).unwrap();
        circ.t(0).unwrap();
        circ.swap(1, 3).unwrap();
        circ.append(Gate::Ry(0.77), &[3]).unwrap();
        circ.t(2).unwrap();
        let mismatch = failing_if_contains_t(&circ).unwrap();
        let outcome = shrink(&circ, mismatch, failing_if_contains_t);
        assert!(outcome.circuit.num_gates() <= 2, "got {} gates", outcome.circuit.num_gates());
        assert_eq!(outcome.circuit.num_qubits(), 1, "idle qubits must be dropped");
        assert!(failing_if_contains_t(&outcome.circuit).is_some(), "must still fail");
    }

    #[test]
    fn angle_simplification_snaps_parameters() {
        let failing_if_rotation = |circ: &QuantumCircuit| {
            circ.instructions()
                .iter()
                .any(|i| i.as_gate().is_some_and(|g| !g.params().is_empty()))
                .then(|| Mismatch {
                    oracle: "differential".to_owned(),
                    detail: "rotation disagrees".into(),
                })
        };
        let mut circ = QuantumCircuit::new(1);
        circ.append(Gate::Rx(1.23456789), &[0]).unwrap();
        let mismatch = failing_if_rotation(&circ).unwrap();
        let outcome = shrink(&circ, mismatch, failing_if_rotation);
        assert_eq!(outcome.circuit.num_gates(), 1);
        let gate = outcome.circuit.instructions()[0].as_gate().unwrap();
        assert_eq!(gate.params(), vec![0.0], "angle must snap to the first nice value");
    }

    #[test]
    fn shrink_keeps_a_passing_reduction_out() {
        // If the failure needs *both* gates, neither may be dropped.
        let needs_both = |circ: &QuantumCircuit| {
            let names: Vec<&str> = circ.instructions().iter().map(|i| i.op.name()).collect();
            (names.contains(&"x") && names.contains(&"z")).then(|| Mismatch {
                oracle: "differential".to_owned(),
                detail: "pair disagrees".into(),
            })
        };
        let mut circ = QuantumCircuit::new(2);
        circ.x(0).unwrap();
        circ.h(1).unwrap();
        circ.z(0).unwrap();
        let outcome = shrink(&circ, needs_both(&circ).unwrap(), needs_both);
        assert_eq!(outcome.circuit.num_gates(), 2);
        assert_eq!(outcome.circuit.num_qubits(), 1);
    }
}
