//! Reproducer emission.
//!
//! A shrunk failing circuit is only useful if a developer can replay it
//! without the fuzzer. For every failure the harness produces two
//! artifacts: the minimized circuit serialized as OpenQASM 2.0 (suitable
//! for checking into `tests/repros/`), and a ready-to-paste `#[test]`
//! function that parses the QASM and re-runs the full oracle suite.

use crate::runner::Mismatch;
use qukit_terra::circuit::QuantumCircuit;

/// A self-contained description of one shrunk failure.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Stable, filesystem-safe identifier (`<oracle>_<hash>`).
    pub slug: String,
    /// The minimized circuit as OpenQASM 2.0.
    pub qasm: String,
    /// A ready-to-paste Rust test replaying the failure.
    pub test_case: String,
}

impl Reproducer {
    /// Builds the reproducer artifacts for a shrunk failing circuit.
    pub fn new(circuit: &QuantumCircuit, mismatch: &Mismatch) -> Self {
        let qasm = qukit_terra::qasm::emit(circuit);
        let slug = format!("{}_{:08x}", mismatch.oracle, fnv1a(qasm.as_bytes()) as u32);
        let test_case = render_test(&slug, &qasm, mismatch);
        Self { slug, qasm, test_case }
    }

    /// Suggested file name for the QASM artifact.
    pub fn file_name(&self) -> String {
        format!("{}.qasm", self.slug)
    }
}

/// FNV-1a, used for slug stability: the same shrunk circuit always maps
/// to the same file name, so repeated fuzz runs dedupe naturally.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn render_test(slug: &str, qasm: &str, mismatch: &Mismatch) -> String {
    let mut out = String::new();
    out.push_str("#[test]\n");
    out.push_str(&format!("fn repro_{slug}() {{\n"));
    out.push_str(&format!("    // Shrunk by the conformance harness: {mismatch}\n"));
    out.push_str("    let qasm = concat!(\n");
    for line in qasm.lines() {
        out.push_str(&format!("        \"{}\\n\",\n", line.replace('"', "\\\"")));
    }
    out.push_str("    );\n");
    out.push_str("    let circuit = qukit_terra::qasm::parse(qasm).unwrap();\n");
    out.push_str("    let suite = qukit_conformance::OracleSuite::all_with_defaults();\n");
    out.push_str("    suite.check(&circuit).expect(\"reproducer must pass once fixed\");\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (QuantumCircuit, Mismatch) {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let mismatch =
            Mismatch { oracle: "differential".to_owned(), detail: "dd disagrees".to_owned() };
        (circ, mismatch)
    }

    #[test]
    fn slug_is_stable_and_oracle_tagged() {
        let (circ, mismatch) = sample();
        let a = Reproducer::new(&circ, &mismatch);
        let b = Reproducer::new(&circ, &mismatch);
        assert_eq!(a.slug, b.slug);
        assert!(a.slug.starts_with("differential_"));
        assert!(a.file_name().ends_with(".qasm"));
    }

    #[test]
    fn qasm_artifact_parses_back() {
        let (circ, mismatch) = sample();
        let repro = Reproducer::new(&circ, &mismatch);
        let parsed = qukit_terra::qasm::parse(&repro.qasm).unwrap();
        assert_eq!(parsed.num_qubits(), 2);
        assert_eq!(parsed.num_gates(), 2);
    }

    #[test]
    fn test_snippet_mentions_the_harness_entry_points() {
        let (circ, mismatch) = sample();
        let repro = Reproducer::new(&circ, &mismatch);
        assert!(repro.test_case.contains(&format!("fn repro_{}()", repro.slug)));
        assert!(repro.test_case.contains("qukit_conformance::OracleSuite"));
        assert!(repro.test_case.contains("qukit_terra::qasm::parse"));
    }
}
