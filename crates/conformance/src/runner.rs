//! The differential runner: one circuit, every simulator, one verdict.
//!
//! For unitary circuits the runner computes its own reference state (a
//! deliberately naive gate-by-gate matrix application) and compares it
//! against the statevector simulator, the parallel chunked/fused
//! statevector engine (threads forced on, fusion enabled), the
//! decision-diagram simulator, the density-matrix simulator (diagonal),
//! and — when the circuit is Clifford — a sampled run on the stabilizer
//! tableau. For circuits with
//! measurements/reset/conditionals it cross-checks the shot-based engines
//! statistically.
//!
//! The reference path looks gate matrices up through a [`MatrixTable`]
//! instead of calling [`Gate::matrix`] directly. That indirection exists
//! for the harness's own conformance: tests plant a deliberately wrong
//! matrix in the table and assert the differential oracle catches and
//! shrinks it (see `tests/planted_bug.rs`).

use qukit_aer::density::DensityMatrixSimulator;
use qukit_aer::parallel::{ParallelConfig, ParallelStatevectorSimulator};
use qukit_aer::simulator::{QasmSimulator, StatevectorSimulator};
use qukit_aer::stabilizer::{StabilizerSimulator, StabilizerState};
use qukit_dd::simulator::DdSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::gate::Gate;
use qukit_terra::instruction::Operation;
use qukit_terra::matrix::Matrix;
use std::fmt;

/// Maximum width the density-matrix engine accepts (ρ is `4^n` complex).
const DENSITY_MAX_QUBITS: usize = 12;

/// A conformance violation: which oracle tripped and a human-readable
/// description precise enough to triage without re-running.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Oracle name (`differential`, `inverse`, `roundtrip`, `transpile`).
    pub oracle: String,
    /// What disagreed, where, and by how much.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Gate-name → matrix lookup used by the reference executor.
///
/// `pristine()` defers to [`Gate::matrix`]; overrides replace the matrix
/// for every gate with the given OpenQASM name (parameterized gates are
/// overridden wholesale — good enough for planting bugs in tests).
#[derive(Debug, Clone, Default)]
pub struct MatrixTable {
    overrides: Vec<(String, Matrix)>,
}

impl MatrixTable {
    /// The faithful table: every lookup returns `Gate::matrix()`.
    pub fn pristine() -> Self {
        Self::default()
    }

    /// Replaces the matrix of every gate named `name` (builder style).
    pub fn with_override(mut self, name: &str, matrix: Matrix) -> Self {
        self.overrides.push((name.to_owned(), matrix));
        self
    }

    /// Resolves the matrix for a gate.
    pub fn matrix(&self, gate: &Gate) -> Matrix {
        let name = gate.name();
        for (n, m) in &self.overrides {
            if n == name {
                return m.clone();
            }
        }
        gate.matrix()
    }

    /// Whether any override is installed.
    pub fn is_pristine(&self) -> bool {
        self.overrides.is_empty()
    }
}

/// Tolerances and sampling parameters of the differential comparison.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Shots for the sampled engines (qasm, stabilizer).
    pub shots: usize,
    /// Seed for the sampled engines.
    pub seed: u64,
    /// Per-amplitude absolute tolerance for exact engines.
    pub amp_tolerance: f64,
    /// Minimum Hellinger fidelity between a sampled histogram and the
    /// exact distribution (or between two sampled histograms).
    pub min_sample_fidelity: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self { shots: 2048, seed: 7, amp_tolerance: 1e-6, min_sample_fidelity: 0.97 }
    }
}

/// Executes circuits on all applicable simulators and compares results.
#[derive(Debug, Clone, Default)]
pub struct DifferentialRunner {
    /// Comparison parameters.
    pub config: DiffConfig,
    /// Reference-path gate matrices (see [`MatrixTable`]).
    pub matrices: MatrixTable,
}

impl DifferentialRunner {
    /// Creates a runner with the given comparison parameters.
    pub fn new(config: DiffConfig) -> Self {
        Self { config, matrices: MatrixTable::pristine() }
    }

    /// Installs a matrix table (builder style).
    pub fn with_matrices(mut self, matrices: MatrixTable) -> Self {
        self.matrices = matrices;
        self
    }

    /// Runs the differential comparison; `None` means every engine agreed.
    pub fn check(&self, circuit: &QuantumCircuit) -> Option<Mismatch> {
        if is_unitary_circuit(circuit) {
            self.check_unitary(circuit)
        } else {
            self.check_sampled(circuit)
        }
    }

    /// Reference statevector via the (possibly overridden) matrix table.
    fn reference_state(&self, circuit: &QuantumCircuit) -> Vec<Complex> {
        let mut state = vec![Complex::ZERO; 1 << circuit.num_qubits()];
        state[0] = Complex::ONE;
        for inst in circuit.instructions() {
            if let Operation::Gate(g) = &inst.op {
                let matrix = self.matrices.matrix(g);
                qukit_terra::reference::apply_gate(&mut state, &matrix, &inst.qubits);
            }
        }
        if circuit.global_phase() != 0.0 {
            let phase = Complex::cis(circuit.global_phase());
            for amp in &mut state {
                *amp *= phase;
            }
        }
        state
    }

    fn check_unitary(&self, circuit: &QuantumCircuit) -> Option<Mismatch> {
        let reference = self.reference_state(circuit);

        let sv = match StatevectorSimulator::new().run(circuit) {
            Ok(sv) => sv,
            Err(e) => return Some(engine_error("statevector", &e)),
        };
        if let Some(m) = self.compare_amplitudes("statevector", &reference, sv.amplitudes()) {
            return Some(m);
        }

        // The parallel engine runs with threading forced on (tiny chunks so
        // even fuzz-sized circuits split across workers) and fusion enabled,
        // so the chunked kernels and the fusion pre-pass are both exercised
        // against the naive reference on every fuzz case. Both kernel
        // flavours run — SIMD and scalar — and beyond matching the
        // reference to tolerance, they must match each other bit for bit.
        let parallel = ParallelConfig { threads: 2, chunk_qubits: 2, fusion: true, simd: true };
        let psv = match ParallelStatevectorSimulator::with_config(parallel).run(circuit) {
            Ok(sv) => sv,
            Err(e) => return Some(engine_error("parallel_statevector", &e)),
        };
        if let Some(m) =
            self.compare_amplitudes("parallel_statevector", &reference, psv.amplitudes())
        {
            return Some(m);
        }

        let scalar_config =
            ParallelConfig { threads: 2, chunk_qubits: 2, fusion: true, simd: false };
        let scalar = match ParallelStatevectorSimulator::with_config(scalar_config).run(circuit) {
            Ok(sv) => sv,
            Err(e) => return Some(engine_error("parallel_statevector_scalar", &e)),
        };
        if scalar.amplitudes() != psv.amplitudes() {
            let idx = scalar
                .amplitudes()
                .iter()
                .zip(psv.amplitudes())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Some(Mismatch {
                oracle: "differential".to_owned(),
                detail: format!(
                    "parallel_statevector SIMD kernels diverge bitwise from scalar \
                     kernels at amplitude {idx}: {} vs {}",
                    psv.amplitudes()[idx],
                    scalar.amplitudes()[idx]
                ),
            });
        }

        let dd = match DdSimulator::new().run(circuit) {
            Ok(state) => state,
            Err(e) => return Some(engine_error("dd", &e)),
        };
        if let Some(m) = self.compare_amplitudes("dd", &reference, &dd.to_statevector()) {
            return Some(m);
        }

        if circuit.num_qubits() <= DENSITY_MAX_QUBITS {
            let rho = match DensityMatrixSimulator::new().run(circuit) {
                Ok(rho) => rho,
                Err(e) => return Some(engine_error("density", &e)),
            };
            let probabilities = rho.probabilities();
            for (idx, (p, amp)) in probabilities.iter().zip(&reference).enumerate() {
                if (p - amp.norm_sqr()).abs() > self.config.amp_tolerance.max(1e-9) {
                    return Some(Mismatch {
                        oracle: "differential".to_owned(),
                        detail: format!(
                            "density probability diverges at basis state {idx}: \
                             {p} vs |{amp}|² = {}",
                            amp.norm_sqr()
                        ),
                    });
                }
            }
        }

        if is_clifford_circuit(circuit) {
            if let Some(m) = self.check_stabilizer_sampling(circuit, &reference) {
                return Some(m);
            }
        }
        None
    }

    /// Samples a Clifford circuit on the tableau and compares the empirical
    /// distribution against the exact one via the Hellinger fidelity.
    fn check_stabilizer_sampling(
        &self,
        circuit: &QuantumCircuit,
        reference: &[Complex],
    ) -> Option<Mismatch> {
        let mut measured = circuit.clone();
        measured.measure_all();
        let counts = match StabilizerSimulator::new()
            .with_seed(self.config.seed)
            .run(&measured, self.config.shots)
        {
            Ok(counts) => counts,
            Err(e) => return Some(engine_error("stabilizer", &e)),
        };
        if counts.total() != self.config.shots {
            return Some(Mismatch {
                oracle: "differential".to_owned(),
                detail: format!(
                    "stabilizer counts sum to {} instead of {} shots",
                    counts.total(),
                    self.config.shots
                ),
            });
        }
        let mut fidelity = 0.0;
        for (outcome, n) in counts.iter() {
            let empirical = n as f64 / self.config.shots as f64;
            let exact = reference[outcome as usize].norm_sqr();
            fidelity += (empirical * exact).sqrt();
        }
        let fidelity = fidelity * fidelity;
        if fidelity < self.config.min_sample_fidelity {
            return Some(Mismatch {
                oracle: "differential".to_owned(),
                detail: format!(
                    "stabilizer sampling fidelity {fidelity:.4} below threshold {} \
                     ({} shots)",
                    self.config.min_sample_fidelity, self.config.shots
                ),
            });
        }
        None
    }

    /// Differential check for circuits with measurements, resets or
    /// conditionals: the shot-based engines must agree statistically and
    /// conserve probability mass.
    fn check_sampled(&self, circuit: &QuantumCircuit) -> Option<Mismatch> {
        let counts = match QasmSimulator::new()
            .with_seed(self.config.seed)
            .run(circuit, self.config.shots)
        {
            Ok(counts) => counts,
            Err(e) => return Some(engine_error("qasm", &e)),
        };
        if counts.total() != self.config.shots {
            return Some(Mismatch {
                oracle: "differential".to_owned(),
                detail: format!(
                    "qasm counts sum to {} instead of {} shots",
                    counts.total(),
                    self.config.shots
                ),
            });
        }
        if is_clifford_circuit(circuit) {
            let stab = match StabilizerSimulator::new()
                .with_seed(self.config.seed.wrapping_add(1))
                .run(circuit, self.config.shots)
            {
                Ok(counts) => counts,
                Err(e) => return Some(engine_error("stabilizer", &e)),
            };
            let fidelity = counts.hellinger_fidelity(&stab);
            if fidelity < self.config.min_sample_fidelity {
                return Some(Mismatch {
                    oracle: "differential".to_owned(),
                    detail: format!(
                        "qasm vs stabilizer histogram fidelity {fidelity:.4} below \
                         threshold {}",
                        self.config.min_sample_fidelity
                    ),
                });
            }
        }
        None
    }

    fn compare_amplitudes(
        &self,
        engine: &str,
        reference: &[Complex],
        actual: &[Complex],
    ) -> Option<Mismatch> {
        if reference.len() != actual.len() {
            return Some(Mismatch {
                oracle: "differential".to_owned(),
                detail: format!(
                    "{engine} returned {} amplitudes, reference has {}",
                    actual.len(),
                    reference.len()
                ),
            });
        }
        for (idx, (r, a)) in reference.iter().zip(actual).enumerate() {
            let err = (*r - *a).norm();
            if err > self.config.amp_tolerance {
                return Some(Mismatch {
                    oracle: "differential".to_owned(),
                    detail: format!(
                        "{engine} amplitude diverges at basis state {idx}: \
                         reference {r}, {engine} {a} (|Δ| = {err:.3e})"
                    ),
                });
            }
        }
        None
    }
}

fn engine_error(engine: &str, error: &dyn fmt::Display) -> Mismatch {
    Mismatch {
        oracle: "differential".to_owned(),
        detail: format!("{engine} engine refused the circuit: {error}"),
    }
}

/// Only gates and barriers, no conditions — every exact engine applies.
pub fn is_unitary_circuit(circuit: &QuantumCircuit) -> bool {
    circuit.instructions().iter().all(|inst| {
        inst.condition.is_none() && matches!(inst.op, Operation::Gate(_) | Operation::Barrier)
    })
}

/// Whether every gate stays inside the stabilizer formalism.
pub fn is_clifford_circuit(circuit: &QuantumCircuit) -> bool {
    let mut tableau = StabilizerState::new(circuit.num_qubits());
    circuit.instructions().iter().all(|inst| match &inst.op {
        Operation::Gate(g) => tableau.apply_gate(*g, &inst.qubits).is_ok(),
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> QuantumCircuit {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ
    }

    #[test]
    fn agreeing_engines_pass() {
        let runner = DifferentialRunner::default();
        assert!(runner.check(&bell()).is_none());
        let mut parameterized = QuantumCircuit::new(3);
        parameterized.h(0).unwrap();
        parameterized.rx(0.3, 1).unwrap();
        parameterized.ccx(0, 1, 2).unwrap();
        parameterized.append(Gate::Rzz(0.7), &[0, 2]).unwrap();
        assert!(runner.check(&parameterized).is_none());
    }

    #[test]
    fn planted_matrix_bug_is_detected() {
        // Sign-flipped Hadamard in the reference path only.
        let mut wrong = Matrix::hadamard();
        wrong[(1, 0)] = -wrong[(1, 0)];
        wrong[(1, 1)] = -wrong[(1, 1)];
        let runner = DifferentialRunner::default()
            .with_matrices(MatrixTable::pristine().with_override("h", wrong));
        let mismatch = runner.check(&bell()).expect("bug must be caught");
        assert_eq!(mismatch.oracle, "differential");
        assert!(mismatch.detail.contains("statevector"), "{}", mismatch.detail);
    }

    #[test]
    fn sampled_circuits_conserve_shots() {
        let runner = DifferentialRunner::default();
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        assert!(runner.check(&circ).is_none());
    }

    #[test]
    fn conditional_circuits_use_the_sampled_path() {
        let runner = DifferentialRunner::default();
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.append_conditional(qukit_terra::gate::Gate::X, &[1], "c", 1).unwrap();
        circ.measure(1, 1).unwrap();
        assert!(!is_unitary_circuit(&circ));
        assert!(runner.check(&circ).is_none());
    }

    #[test]
    fn clifford_detection() {
        assert!(is_clifford_circuit(&bell()));
        let mut t = QuantumCircuit::new(1);
        t.t(0).unwrap();
        assert!(!is_clifford_circuit(&t));
    }
}
