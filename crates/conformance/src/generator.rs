//! Seeded random-circuit generation.
//!
//! The generator is the front end of the conformance harness: every
//! circuit it emits is fed to the differential runner and the metamorphic
//! oracles. Determinism is a hard requirement — the same seed must yield
//! the same circuit sequence on every platform, so a failing case found in
//! CI can be replayed locally with nothing but the seed.

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::gate::Gate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Which gate alphabet the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateSet {
    /// Every gate the toolchain knows, including parameterized rotations
    /// and three-qubit gates.
    Full,
    /// Clifford gates only — circuits the stabilizer simulator can run.
    Clifford,
    /// Clifford + T/T†: universal, still cheap to verify on DDs.
    CliffordT,
}

impl GateSet {
    /// Parses a CLI-style name (`full`, `clifford`, `clifford+t`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "full" => Some(Self::Full),
            "clifford" => Some(Self::Clifford),
            "clifford+t" | "clifford-t" => Some(Self::CliffordT),
            _ => None,
        }
    }
}

/// Shape of the circuits to generate.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Gate alphabet.
    pub gate_set: GateSet,
    /// Minimum register width (inclusive).
    pub min_qubits: usize,
    /// Maximum register width (inclusive).
    pub max_qubits: usize,
    /// Maximum number of gates per circuit.
    pub max_depth: usize,
    /// Append a terminal measurement of every qubit.
    pub with_measurements: bool,
    /// Insert a mid-circuit measurement followed by a classically
    /// conditioned gate (implies a classical register).
    pub with_conditionals: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            gate_set: GateSet::Full,
            min_qubits: 1,
            max_qubits: 5,
            max_depth: 16,
            with_measurements: false,
            with_conditionals: false,
        }
    }
}

/// A deterministic stream of random circuits.
#[derive(Debug)]
pub struct CircuitGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

const CLIFFORD_1Q: &[Gate] =
    &[Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::S, Gate::Sdg, Gate::Sx, Gate::Sxdg];
const CLIFFORD_2Q: &[Gate] = &[Gate::CX, Gate::CY, Gate::CZ, Gate::Swap];
const FIXED_1Q: &[Gate] = &[
    Gate::I,
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::Sdg,
    Gate::T,
    Gate::Tdg,
    Gate::Sx,
    Gate::Sxdg,
];
const FIXED_2Q: &[Gate] = &[Gate::CX, Gate::CY, Gate::CZ, Gate::CH, Gate::Swap];
const FIXED_3Q: &[Gate] = &[Gate::Ccx, Gate::Ccz, Gate::Cswap];

impl CircuitGenerator {
    /// Creates a generator for the given seed and configuration.
    ///
    /// # Panics
    ///
    /// Panics when the width bounds are empty or zero.
    pub fn new(seed: u64, config: GeneratorConfig) -> Self {
        assert!(config.min_qubits >= 1, "circuits need at least one qubit");
        assert!(config.min_qubits <= config.max_qubits, "empty width range");
        assert!(config.max_depth >= 1, "max_depth must be positive");
        Self { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// Produces the next circuit in the deterministic stream.
    pub fn next_circuit(&mut self) -> QuantumCircuit {
        let n = self.rng.gen_range(self.config.min_qubits..=self.config.max_qubits);
        let gates = self.rng.gen_range(1..=self.config.max_depth);
        let classical = self.config.with_measurements || self.config.with_conditionals;
        let mut circ =
            if classical { QuantumCircuit::with_size(n, n) } else { QuantumCircuit::new(n) };
        for _ in 0..gates {
            self.append_random_gate(&mut circ);
        }
        if self.config.with_conditionals {
            let q = self.rng.gen_range(0..n);
            circ.measure(q, q).expect("generated operands are in range");
            let target = self.rng.gen_range(0..n);
            let value = self.rng.gen_range(0..2u64.pow(n.min(8) as u32));
            let gate = self.pick_1q();
            circ.append_conditional(gate, &[target], "c", value)
                .expect("generated conditional is well-formed");
        }
        if self.config.with_measurements {
            for q in 0..n {
                circ.measure(q, q).expect("generated operands are in range");
            }
        }
        circ
    }

    fn append_random_gate(&mut self, circ: &mut QuantumCircuit) {
        let n = circ.num_qubits();
        let arity = self.pick_arity(n);
        let gate = match arity {
            1 => self.pick_1q(),
            2 => self.pick_2q(),
            _ => FIXED_3Q[self.rng.gen_range(0..FIXED_3Q.len())],
        };
        let qubits = self.distinct_qubits(n, arity);
        circ.append(gate, &qubits).expect("generated operands are distinct and in range");
    }

    fn pick_arity(&mut self, n: usize) -> usize {
        let three_q = n >= 3 && self.config.gate_set == GateSet::Full;
        // Weights 5:4:1 — enough entanglers to stress the mappers without
        // drowning the single-qubit algebra.
        let roll = self.rng.gen_range(0..10);
        if n >= 2 && roll >= 9 && three_q {
            3
        } else if n >= 2 && roll >= 5 {
            2
        } else {
            1
        }
    }

    fn pick_1q(&mut self) -> Gate {
        match self.config.gate_set {
            GateSet::Clifford => CLIFFORD_1Q[self.rng.gen_range(0..CLIFFORD_1Q.len())],
            GateSet::CliffordT => {
                let extended = CLIFFORD_1Q.len() + 2;
                match self.rng.gen_range(0..extended) {
                    i if i < CLIFFORD_1Q.len() => CLIFFORD_1Q[i],
                    i if i == CLIFFORD_1Q.len() => Gate::T,
                    _ => Gate::Tdg,
                }
            }
            GateSet::Full => {
                if self.rng.gen_bool(0.4) {
                    match self.rng.gen_range(0..5) {
                        0 => Gate::Rx(self.random_angle()),
                        1 => Gate::Ry(self.random_angle()),
                        2 => Gate::Rz(self.random_angle()),
                        3 => Gate::Phase(self.random_angle()),
                        _ => Gate::U(self.random_angle(), self.random_angle(), self.random_angle()),
                    }
                } else {
                    FIXED_1Q[self.rng.gen_range(0..FIXED_1Q.len())]
                }
            }
        }
    }

    fn pick_2q(&mut self) -> Gate {
        match self.config.gate_set {
            GateSet::Clifford | GateSet::CliffordT => {
                CLIFFORD_2Q[self.rng.gen_range(0..CLIFFORD_2Q.len())]
            }
            GateSet::Full => {
                if self.rng.gen_bool(0.3) {
                    match self.rng.gen_range(0..6) {
                        0 => Gate::Crx(self.random_angle()),
                        1 => Gate::Cry(self.random_angle()),
                        2 => Gate::Crz(self.random_angle()),
                        3 => Gate::Cp(self.random_angle()),
                        4 => Gate::Rxx(self.random_angle()),
                        _ => Gate::Rzz(self.random_angle()),
                    }
                } else {
                    FIXED_2Q[self.rng.gen_range(0..FIXED_2Q.len())]
                }
            }
        }
    }

    /// Half the angles are π fractions (they stress the emitter's pretty
    /// printer and the optimizer's special cases), half are arbitrary.
    fn random_angle(&mut self) -> f64 {
        const FRACTIONS: &[f64] =
            &[PI, -PI, PI / 2.0, -PI / 2.0, PI / 4.0, -PI / 4.0, PI / 8.0, 3.0 * PI / 4.0];
        if self.rng.gen_bool(0.5) {
            FRACTIONS[self.rng.gen_range(0..FRACTIONS.len())]
        } else {
            self.rng.gen_range(-PI..PI)
        }
    }

    fn distinct_qubits(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        let mut picked = Vec::with_capacity(k);
        while picked.len() < k {
            let q = self.rng.gen_range(0..n);
            if !picked.contains(&q) {
                picked.push(q);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let config = GeneratorConfig::default();
        let mut a = CircuitGenerator::new(99, config.clone());
        let mut b = CircuitGenerator::new(99, config);
        for _ in 0..20 {
            let ca = a.next_circuit();
            let cb = b.next_circuit();
            assert_eq!(qukit_terra::qasm::emit(&ca), qukit_terra::qasm::emit(&cb));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let config = GeneratorConfig::default();
        let mut a = CircuitGenerator::new(1, config.clone());
        let mut b = CircuitGenerator::new(2, config);
        let diverged = (0..10).any(|_| {
            qukit_terra::qasm::emit(&a.next_circuit()) != qukit_terra::qasm::emit(&b.next_circuit())
        });
        assert!(diverged, "distinct seeds must produce distinct streams");
    }

    #[test]
    fn respects_width_and_depth_bounds() {
        let config = GeneratorConfig {
            min_qubits: 2,
            max_qubits: 4,
            max_depth: 6,
            ..GeneratorConfig::default()
        };
        let mut generator = CircuitGenerator::new(5, config);
        for _ in 0..50 {
            let circ = generator.next_circuit();
            assert!((2..=4).contains(&circ.num_qubits()));
            assert!(circ.num_gates() >= 1 && circ.num_gates() <= 6);
            assert!(!circ.has_measurements());
        }
    }

    #[test]
    fn clifford_set_is_stabilizer_compatible() {
        let config = GeneratorConfig {
            gate_set: GateSet::Clifford,
            max_qubits: 4,
            ..GeneratorConfig::default()
        };
        let mut generator = CircuitGenerator::new(11, config);
        for _ in 0..30 {
            let circ = generator.next_circuit();
            let mut tableau = qukit_aer::stabilizer::StabilizerState::new(circ.num_qubits());
            for inst in circ.instructions() {
                if let Some(g) = inst.as_gate() {
                    tableau
                        .apply_gate(*g, &inst.qubits)
                        .expect("clifford set must stay inside the tableau formalism");
                }
            }
        }
    }

    #[test]
    fn measurement_toggle_adds_classical_register() {
        let config = GeneratorConfig {
            with_measurements: true,
            with_conditionals: true,
            max_qubits: 3,
            ..GeneratorConfig::default()
        };
        let mut generator = CircuitGenerator::new(3, config);
        let circ = generator.next_circuit();
        assert!(circ.has_measurements());
        assert_eq!(circ.num_clbits(), circ.num_qubits());
        assert!(circ.instructions().iter().any(|i| i.condition.is_some()));
    }

    #[test]
    fn gate_set_parsing() {
        assert_eq!(GateSet::parse("full"), Some(GateSet::Full));
        assert_eq!(GateSet::parse("clifford"), Some(GateSet::Clifford));
        assert_eq!(GateSet::parse("clifford+t"), Some(GateSet::CliffordT));
        assert_eq!(GateSet::parse("bogus"), None);
    }

    /// Hash-consing canonicality, property-tested over generated circuits:
    /// building the same circuit twice in one package must return the
    /// *identical* root edge (same node id, same weight id) because every
    /// intermediate structure is interned — and the final diagram must be
    /// the same size whether or not the lossy compute tables were on.
    #[test]
    fn dd_hash_consing_is_canonical_across_rebuilds() {
        use qukit_dd::package::DdPackage;
        use qukit_terra::instruction::Operation;

        let config = GeneratorConfig { max_qubits: 5, max_depth: 16, ..GeneratorConfig::default() };
        let mut generator = CircuitGenerator::new(42, config);
        for case in 0..25 {
            let circ = generator.next_circuit();
            let build = |package: &mut DdPackage| {
                let mut root = package.zero_state();
                for inst in circ.instructions() {
                    if let Operation::Gate(g) = &inst.op {
                        let m = package.gate_matrix(&g.matrix(), &inst.qubits);
                        root = package.multiply_mv(m, root);
                    }
                }
                root
            };
            let mut package = DdPackage::new(circ.num_qubits());
            let first = build(&mut package);
            let second = build(&mut package);
            assert_eq!(
                first, second,
                "case {case}: same circuit in one package must hit the same interned edge"
            );
            let cached_nodes = package.vector_nodes(first);

            let mut uncached = DdPackage::new(circ.num_qubits());
            uncached.set_cache_enabled(false);
            let raw = build(&mut uncached);
            assert_eq!(
                uncached.vector_nodes(raw),
                cached_nodes,
                "case {case}: compute-table caching must not change the canonical diagram"
            );
        }
    }
}
