//! Metamorphic oracles.
//!
//! Each oracle states a property that must hold for *every* circuit, so
//! no golden outputs are needed:
//!
//! * **differential** — all simulators agree on the circuit itself;
//! * **inverse** — `C · C⁻¹` is the identity (checked on decision
//!   diagrams, exactly);
//! * **roundtrip** — exporting to OpenQASM and re-parsing reproduces the
//!   instruction stream;
//! * **transpile** — the mapped circuit produced by the transpiler is
//!   equivalent to the original under its permuted layouts (checked with
//!   [`qukit_dd::verify::check_equivalence_mapped`]) at every
//!   optimization level 0–3 with both production routers (SABRE and A*).

use crate::runner::{is_unitary_circuit, DifferentialRunner, Mismatch};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::transpiler::{satisfies_coupling, transpile, MapperKind, TranspileOptions};

/// The oracles the harness knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Cross-simulator agreement.
    Differential,
    /// `C · C⁻¹ ≡ I`.
    Inverse,
    /// QASM export → parse fixpoint.
    Roundtrip,
    /// Transpiled circuit ≡ original modulo layout permutation.
    Transpile,
}

impl OracleKind {
    /// Every oracle, in execution order.
    pub const ALL: [OracleKind; 4] = [
        OracleKind::Differential,
        OracleKind::Inverse,
        OracleKind::Roundtrip,
        OracleKind::Transpile,
    ];

    /// Stable name used in reports, reproducer slugs and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Differential => "differential",
            OracleKind::Inverse => "inverse",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::Transpile => "transpile",
        }
    }

    /// Parses a CLI argument: `all` or a comma-separated subset.
    pub fn parse_list(spec: &str) -> Option<Vec<OracleKind>> {
        if spec == "all" {
            return Some(Self::ALL.to_vec());
        }
        let mut kinds = Vec::new();
        for part in spec.split(',') {
            let kind = match part.trim() {
                "differential" => OracleKind::Differential,
                "inverse" => OracleKind::Inverse,
                "roundtrip" => OracleKind::Roundtrip,
                "transpile" => OracleKind::Transpile,
                _ => return None,
            };
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        if kinds.is_empty() {
            None
        } else {
            Some(kinds)
        }
    }
}

/// Result of running one oracle on one circuit.
#[derive(Debug, Clone)]
pub enum OracleOutcome {
    /// The property held.
    Pass,
    /// The oracle does not apply to this circuit (reason attached).
    Skip(&'static str),
    /// The property was violated.
    Fail(Mismatch),
}

/// A configured set of oracles sharing one differential runner.
#[derive(Debug, Clone, Default)]
pub struct OracleSuite {
    kinds: Vec<OracleKind>,
    /// The differential runner (public so harness embedders can tweak
    /// tolerances after construction).
    pub runner: DifferentialRunner,
}

impl OracleSuite {
    /// Creates a suite running the given oracles.
    pub fn new(kinds: Vec<OracleKind>, runner: DifferentialRunner) -> Self {
        Self { kinds, runner }
    }

    /// All four oracles with default tolerances — what reproducer test
    /// snippets call.
    pub fn all_with_defaults() -> Self {
        Self::new(OracleKind::ALL.to_vec(), DifferentialRunner::default())
    }

    /// The configured oracle kinds.
    pub fn kinds(&self) -> &[OracleKind] {
        &self.kinds
    }

    /// Runs every configured oracle; returns the first violation.
    pub fn check(&self, circuit: &QuantumCircuit) -> Option<Mismatch> {
        for &kind in &self.kinds {
            if let OracleOutcome::Fail(m) = self.check_kind(kind, circuit) {
                return Some(m);
            }
        }
        None
    }

    /// Runs a single oracle.
    pub fn check_kind(&self, kind: OracleKind, circuit: &QuantumCircuit) -> OracleOutcome {
        match kind {
            OracleKind::Differential => match self.runner.check(circuit) {
                Some(m) => OracleOutcome::Fail(m),
                None => OracleOutcome::Pass,
            },
            OracleKind::Inverse => self.check_inverse(circuit),
            OracleKind::Roundtrip => self.check_roundtrip(circuit),
            OracleKind::Transpile => self.check_transpile(circuit),
        }
    }

    fn check_inverse(&self, circuit: &QuantumCircuit) -> OracleOutcome {
        if !is_unitary_circuit(circuit) {
            return OracleOutcome::Skip("non-unitary circuit has no inverse");
        }
        let inverse = match circuit.inverse() {
            Ok(inv) => inv,
            Err(e) => {
                return OracleOutcome::Fail(Mismatch {
                    oracle: "inverse".to_owned(),
                    detail: format!("unitary circuit failed to invert: {e}"),
                })
            }
        };
        let mut composed = circuit.clone();
        if let Err(e) = composed.compose(&inverse) {
            return OracleOutcome::Fail(Mismatch {
                oracle: "inverse".to_owned(),
                detail: format!("compose with inverse failed: {e}"),
            });
        }
        let identity = QuantumCircuit::new(circuit.num_qubits());
        match qukit_dd::verify::check_equivalence(&composed, &identity) {
            Ok(verdict) if verdict.is_equivalent() => OracleOutcome::Pass,
            Ok(verdict) => OracleOutcome::Fail(Mismatch {
                oracle: "inverse".to_owned(),
                detail: format!("C·C⁻¹ is not the identity (DD verdict: {verdict:?})"),
            }),
            Err(e) => OracleOutcome::Fail(Mismatch {
                oracle: "inverse".to_owned(),
                detail: format!("DD equivalence check refused C·C⁻¹: {e}"),
            }),
        }
    }

    fn check_roundtrip(&self, circuit: &QuantumCircuit) -> OracleOutcome {
        let text = qukit_terra::qasm::emit(circuit);
        let parsed = match qukit_terra::qasm::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => {
                return OracleOutcome::Fail(Mismatch {
                    oracle: "roundtrip".to_owned(),
                    detail: format!("emitted QASM failed to parse: {e}"),
                })
            }
        };
        if let Some(detail) = instruction_streams_differ(circuit, &parsed) {
            return OracleOutcome::Fail(Mismatch { oracle: "roundtrip".to_owned(), detail });
        }
        OracleOutcome::Pass
    }

    fn check_transpile(&self, circuit: &QuantumCircuit) -> OracleOutcome {
        if !is_unitary_circuit(circuit) {
            return OracleOutcome::Skip("mapped-equivalence check needs a unitary circuit");
        }
        let n = circuit.num_qubits();
        let coupling = if n <= 5 { CouplingMap::ibm_qx4() } else { CouplingMap::line(n) };
        // Sweep the full pipeline matrix: every optimization level with
        // both production routers. Each combination exercises a different
        // pass sequence (decompose / resynthesis / fixpoint optimization)
        // and routing heuristic, and each result must still be exactly
        // equivalent to the input under its layout permutation.
        for level in 0..=3u8 {
            for mapper in [MapperKind::Sabre, MapperKind::AStar] {
                let mut options = TranspileOptions::for_device(coupling.clone());
                options.optimization_level = level;
                options.mapper = mapper;
                let tag = format!("opt {level}, {mapper:?}");
                let result = match transpile(circuit, &options) {
                    Ok(result) => result,
                    Err(e) => {
                        return OracleOutcome::Fail(Mismatch {
                            oracle: "transpile".to_owned(),
                            detail: format!("transpilation failed ({tag}): {e}"),
                        })
                    }
                };
                if !satisfies_coupling(&result.circuit, &coupling) {
                    return OracleOutcome::Fail(Mismatch {
                        oracle: "transpile".to_owned(),
                        detail: format!("mapped circuit violates the coupling map ({tag})"),
                    });
                }
                match qukit_dd::verify::check_equivalence_mapped(
                    circuit,
                    &result.circuit,
                    &result.initial_layout,
                    &result.final_layout,
                ) {
                    Ok(verdict) if verdict.is_equivalent() => {}
                    Ok(verdict) => {
                        return OracleOutcome::Fail(Mismatch {
                            oracle: "transpile".to_owned(),
                            detail: format!(
                                "mapped circuit is not equivalent to the original \
                                 ({tag}; DD verdict: {verdict:?}, {} swaps, layouts {:?} → {:?})",
                                result.num_swaps, result.initial_layout, result.final_layout
                            ),
                        })
                    }
                    Err(e) => {
                        return OracleOutcome::Fail(Mismatch {
                            oracle: "transpile".to_owned(),
                            detail: format!(
                                "DD equivalence check refused the mapped circuit ({tag}): {e}"
                            ),
                        })
                    }
                }
            }
        }
        OracleOutcome::Pass
    }
}

/// Compares two circuits instruction by instruction; `Some(description)`
/// when they differ.
fn instruction_streams_differ(a: &QuantumCircuit, b: &QuantumCircuit) -> Option<String> {
    if a.num_qubits() != b.num_qubits() {
        return Some(format!("width changed: {} vs {} qubits", a.num_qubits(), b.num_qubits()));
    }
    if a.num_clbits() != b.num_clbits() {
        return Some(format!("clbits changed: {} vs {}", a.num_clbits(), b.num_clbits()));
    }
    if a.size() != b.size() {
        return Some(format!("instruction count changed: {} vs {}", a.size(), b.size()));
    }
    for (idx, (ia, ib)) in a.instructions().iter().zip(b.instructions()).enumerate() {
        if ia.op.name() != ib.op.name() {
            return Some(format!(
                "instruction {idx} changed op: {} vs {}",
                ia.op.name(),
                ib.op.name()
            ));
        }
        if ia.qubits != ib.qubits || ia.clbits != ib.clbits {
            return Some(format!("instruction {idx} ({}) changed operands", ia.op.name()));
        }
        if ia.condition != ib.condition {
            return Some(format!("instruction {idx} ({}) changed condition", ia.op.name()));
        }
        if let (Some(ga), Some(gb)) = (ia.as_gate(), ib.as_gate()) {
            let pa = ga.params();
            let pb = gb.params();
            if pa.len() != pb.len() || pa.iter().zip(&pb).any(|(x, y)| (x - y).abs() > 1e-12) {
                return Some(format!(
                    "instruction {idx} ({}) changed parameters: {pa:?} vs {pb:?}",
                    ia.op.name()
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::gate::Gate;

    fn suite() -> OracleSuite {
        OracleSuite::all_with_defaults()
    }

    #[test]
    fn healthy_circuit_passes_all_oracles() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 2).unwrap();
        circ.append(Gate::Rz(0.37), &[1]).unwrap();
        circ.append(Gate::Ccx, &[2, 1, 0]).unwrap();
        assert!(suite().check(&circ).is_none());
    }

    #[test]
    fn oracle_list_parsing() {
        assert_eq!(OracleKind::parse_list("all").unwrap().len(), 4);
        assert_eq!(
            OracleKind::parse_list("inverse,roundtrip").unwrap(),
            vec![OracleKind::Inverse, OracleKind::Roundtrip]
        );
        assert!(OracleKind::parse_list("bogus").is_none());
        assert!(OracleKind::parse_list("").is_none());
    }

    #[test]
    fn non_unitary_circuits_skip_inverse_and_transpile() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        assert!(matches!(suite().check_kind(OracleKind::Inverse, &circ), OracleOutcome::Skip(_)));
        assert!(matches!(suite().check_kind(OracleKind::Transpile, &circ), OracleOutcome::Skip(_)));
        // Roundtrip still applies.
        assert!(matches!(suite().check_kind(OracleKind::Roundtrip, &circ), OracleOutcome::Pass));
    }

    #[test]
    fn transpile_oracle_handles_wide_circuits() {
        let mut circ = QuantumCircuit::new(7);
        circ.h(0).unwrap();
        for q in 1..7 {
            circ.cx(0, q).unwrap();
        }
        assert!(matches!(suite().check_kind(OracleKind::Transpile, &circ), OracleOutcome::Pass));
    }

    #[test]
    fn roundtrip_oracle_accepts_conditionals() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.append_conditional(Gate::X, &[1], "c", 1).unwrap();
        assert!(matches!(suite().check_kind(OracleKind::Roundtrip, &circ), OracleOutcome::Pass));
    }
}
