//! Quantum and classical registers.
//!
//! A circuit owns a flat array of qubits and classical bits; registers are
//! named, contiguous windows into those arrays — exactly the model OpenQASM
//! 2.0 exposes with `qreg q[4];` / `creg c[4];`.

use std::fmt;

/// The kind of a register: quantum or classical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterKind {
    /// Holds qubits (`qreg`).
    Quantum,
    /// Holds classical bits (`creg`).
    Classical,
}

/// A named, contiguous window of bits inside a circuit.
///
/// # Examples
///
/// ```
/// use qukit_terra::register::{Register, RegisterKind};
///
/// let q = Register::new(RegisterKind::Quantum, "q", 0, 4);
/// assert_eq!(q.len(), 4);
/// assert_eq!(q.bit(2), Some(2));
/// assert_eq!(q.bit(4), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Register {
    kind: RegisterKind,
    name: String,
    start: usize,
    size: usize,
}

impl Register {
    /// Creates a register covering `size` bits starting at flat index
    /// `start`.
    pub fn new(kind: RegisterKind, name: impl Into<String>, start: usize, size: usize) -> Self {
        Self { kind, name: name.into(), start, size }
    }

    /// The register kind.
    pub fn kind(&self) -> RegisterKind {
        self.kind
    }

    /// The register name as written in OpenQASM.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First flat index covered by this register.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of bits in the register.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` for a zero-width register.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Flat index of the `offset`-th bit, or `None` if out of range.
    pub fn bit(&self, offset: usize) -> Option<usize> {
        if offset < self.size {
            Some(self.start + offset)
        } else {
            None
        }
    }

    /// Returns `true` when the flat index `bit` belongs to this register.
    pub fn contains(&self, bit: usize) -> bool {
        bit >= self.start && bit < self.start + self.size
    }

    /// Iterates over the flat indices covered by this register.
    pub fn bits(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.size
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.kind {
            RegisterKind::Quantum => "qreg",
            RegisterKind::Classical => "creg",
        };
        write!(f, "{kw} {}[{}]", self.name, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowing() {
        let r = Register::new(RegisterKind::Quantum, "a", 3, 2);
        assert_eq!(r.bit(0), Some(3));
        assert_eq!(r.bit(1), Some(4));
        assert_eq!(r.bit(2), None);
        assert!(r.contains(3));
        assert!(r.contains(4));
        assert!(!r.contains(5));
        assert_eq!(r.bits().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn empty_register() {
        let r = Register::new(RegisterKind::Classical, "c", 0, 0);
        assert!(r.is_empty());
        assert_eq!(r.bit(0), None);
    }

    #[test]
    fn display_is_qasm() {
        let q = Register::new(RegisterKind::Quantum, "q", 0, 4);
        assert_eq!(q.to_string(), "qreg q[4]");
        let c = Register::new(RegisterKind::Classical, "c", 0, 2);
        assert_eq!(c.to_string(), "creg c[2]");
    }
}
