//! Reference statevector semantics for circuits.
//!
//! A deliberately simple, obviously-correct executor used as the ground
//! truth for everything else in the toolchain: transpiler equivalence
//! checks, decision-diagram validation in `qukit-dd`, and the optimized
//! simulator in `qukit-aer` are all tested against this module.
//!
//! It only handles *unitary* circuits (no measurement/reset); the full
//! stochastic simulators live in `qukit-aer`.

use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::error::{Result, TerraError};
use crate::instruction::Operation;
use crate::matrix::Matrix;

/// Applies a k-qubit gate matrix to a statevector in place.
///
/// `qubits[j]` is the circuit qubit corresponding to bit `j` of the matrix
/// index (little-endian, matching [`crate::gate::Gate::matrix`]).
///
/// # Panics
///
/// Panics if the state length is not a power of two covering all operand
/// indices, or the matrix dimension does not match `qubits.len()`.
pub fn apply_gate(state: &mut [Complex], matrix: &Matrix, qubits: &[usize]) {
    let n = state.len().trailing_zeros() as usize;
    assert_eq!(state.len(), 1 << n, "state length must be a power of two");
    let k = qubits.len();
    assert_eq!(matrix.rows(), 1 << k, "matrix dimension mismatch");
    for &q in qubits {
        assert!(q < n, "operand qubit {q} out of range for {n}-qubit state");
    }

    let dim = 1usize << k;
    // Enumerate all base indices with zeros in the operand bit positions by
    // spreading the bits of `b` around them.
    let mut sorted = qubits.to_vec();
    sorted.sort_unstable();
    let mut scratch_in = vec![Complex::ZERO; dim];

    for b in 0..(1usize << (n - k)) {
        // Spread b into the non-operand positions.
        let mut base = b;
        for &q in &sorted {
            let low = base & ((1 << q) - 1);
            let high = (base >> q) << (q + 1);
            base = high | low;
        }
        // Gather, multiply, scatter.
        #[allow(clippy::needless_range_loop)] // j is decomposed into target-qubit bits
        for j in 0..dim {
            let mut idx = base;
            for (t, &q) in qubits.iter().enumerate() {
                if (j >> t) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            scratch_in[j] = state[idx];
        }
        for j in 0..dim {
            let mut acc = Complex::ZERO;
            for (jp, &amp) in scratch_in.iter().enumerate() {
                acc += matrix[(j, jp)] * amp;
            }
            let mut idx = base;
            for (t, &q) in qubits.iter().enumerate() {
                if (j >> t) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            state[idx] = acc;
        }
    }
}

/// Runs a unitary circuit on an initial state, returning the final state.
///
/// # Errors
///
/// Returns [`TerraError::NotInvertible`] (the closest semantic error) when
/// the circuit contains non-unitary instructions; barriers are skipped.
///
/// # Panics
///
/// Panics if `initial.len() != 2^circuit.num_qubits()`.
pub fn evolve(circuit: &QuantumCircuit, initial: &[Complex]) -> Result<Vec<Complex>> {
    assert_eq!(initial.len(), 1usize << circuit.num_qubits(), "initial state dimension mismatch");
    let mut state = initial.to_vec();
    for inst in circuit.instructions() {
        match &inst.op {
            Operation::Gate(g) if inst.condition.is_none() => {
                apply_gate(&mut state, &g.matrix(), &inst.qubits);
            }
            Operation::Barrier => {}
            other => {
                return Err(TerraError::NotInvertible { instruction: other.name().to_owned() })
            }
        }
    }
    if circuit.global_phase() != 0.0 {
        let phase = Complex::cis(circuit.global_phase());
        for z in &mut state {
            *z *= phase;
        }
    }
    Ok(state)
}

/// Runs a unitary circuit starting from `|0…0⟩`.
///
/// # Errors
///
/// Same conditions as [`evolve`].
pub fn statevector(circuit: &QuantumCircuit) -> Result<Vec<Complex>> {
    let mut initial = vec![Complex::ZERO; 1 << circuit.num_qubits()];
    initial[0] = Complex::ONE;
    evolve(circuit, &initial)
}

/// Computes the full unitary matrix of a circuit (column `c` is the image
/// of basis state `|c⟩`).
///
/// Exponential in qubit count — intended for verification on small
/// circuits (the paper's Fig. 3/4 reproductions use up to 5 qubits).
///
/// # Errors
///
/// Same conditions as [`evolve`].
pub fn unitary(circuit: &QuantumCircuit) -> Result<Matrix> {
    let dim = 1usize << circuit.num_qubits();
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let mut basis = vec![Complex::ZERO; dim];
        basis[col] = Complex::ONE;
        let final_state = evolve(circuit, &basis)?;
        for (row, amp) in final_state.into_iter().enumerate() {
            out[(row, col)] = amp;
        }
    }
    Ok(out)
}

/// Embeds an `n`-qubit state into an `m`-qubit register (`m >= n`), placing
/// logical qubit `i` at physical position `positions[i]` and all other
/// physical qubits in `|0⟩`.
///
/// Used to verify mapped circuits: a transpiled circuit on the device is
/// equivalent to the original iff it maps the embedding under the initial
/// layout to the embedding under the final layout.
///
/// # Panics
///
/// Panics on inconsistent dimensions or duplicate positions.
pub fn embed_state(state: &[Complex], positions: &[usize], num_physical: usize) -> Vec<Complex> {
    let n = positions.len();
    assert_eq!(state.len(), 1 << n, "state dimension mismatch");
    assert!(n <= num_physical, "too many logical qubits");
    let mut out = vec![Complex::ZERO; 1 << num_physical];
    for (idx, &amp) in state.iter().enumerate() {
        let mut phys = 0usize;
        for (l, &p) in positions.iter().enumerate() {
            assert!(p < num_physical, "position out of range");
            if (idx >> l) & 1 == 1 {
                phys |= 1 << p;
            }
        }
        out[phys] = amp;
    }
    out
}

/// Generates a Haar-ish random normalized state using the given RNG — for
/// randomized equivalence testing.
pub fn random_state(num_qubits: usize, rng: &mut impl rand::Rng) -> Vec<Complex> {
    let dim = 1usize << num_qubits;
    let mut state: Vec<Complex> =
        (0..dim).map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)).collect();
    crate::matrix::normalize(&mut state);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::gate::Gate;
    use crate::matrix::state_fidelity;

    #[test]
    fn single_x_flips_bit() {
        let mut circ = QuantumCircuit::new(2);
        circ.x(1).unwrap();
        let state = statevector(&circ).unwrap();
        assert!(state[0b10].is_approx_one());
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let state = statevector(&circ).unwrap();
        assert!(state[0b00].approx_eq(Complex::FRAC_1_SQRT_2));
        assert!(state[0b11].approx_eq(Complex::FRAC_1_SQRT_2));
        assert!(state[0b01].is_approx_zero());
        assert!(state[0b10].is_approx_zero());
    }

    #[test]
    fn cx_operand_order_matters() {
        // |q0=1, q1=0>: cx(0,1) flips q1; cx(1,0) does nothing.
        let mut a = QuantumCircuit::new(2);
        a.x(0).unwrap();
        a.cx(0, 1).unwrap();
        assert!(statevector(&a).unwrap()[0b11].is_approx_one());

        let mut b = QuantumCircuit::new(2);
        b.x(0).unwrap();
        b.cx(1, 0).unwrap();
        assert!(statevector(&b).unwrap()[0b01].is_approx_one());
    }

    #[test]
    fn ghz_on_nonadjacent_qubits() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(2, 1).unwrap();
        let state = statevector(&circ).unwrap();
        assert!(state[0b000].approx_eq(Complex::FRAC_1_SQRT_2));
        assert!(state[0b111].approx_eq(Complex::FRAC_1_SQRT_2));
    }

    #[test]
    fn unitary_of_fig1_is_unitary_and_matches_composition() {
        let u = unitary(&fig1_circuit()).unwrap();
        assert_eq!(u.rows(), 16);
        assert!(u.is_unitary());
        // Circuit followed by its inverse is the identity.
        let mut both = fig1_circuit();
        both.compose(&fig1_circuit().inverse().unwrap()).unwrap();
        let id = unitary(&both).unwrap();
        assert!(id.phase_equal_to(&Matrix::identity(16)).is_some());
    }

    #[test]
    fn evolve_rejects_measurement() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        assert!(statevector(&circ).is_err());
    }

    #[test]
    fn barriers_are_skipped() {
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.barrier_all();
        circ.h(0).unwrap();
        let state = statevector(&circ).unwrap();
        assert!(state[0].is_approx_one());
    }

    #[test]
    fn global_phase_is_applied() {
        let mut circ = QuantumCircuit::new(1);
        circ.add_global_phase(std::f64::consts::PI);
        let state = statevector(&circ).unwrap();
        assert!(state[0].approx_eq(Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn three_qubit_gates_in_reference() {
        let mut circ = QuantumCircuit::new(3);
        circ.x(0).unwrap();
        circ.x(1).unwrap();
        circ.ccx(0, 1, 2).unwrap();
        let state = statevector(&circ).unwrap();
        assert!(state[0b111].is_approx_one());
    }

    #[test]
    fn apply_gate_on_middle_qubit() {
        let mut state = vec![Complex::ZERO; 8];
        state[0] = Complex::ONE;
        apply_gate(&mut state, &Gate::X.matrix(), &[1]);
        assert!(state[0b010].is_approx_one());
    }

    #[test]
    fn embed_state_places_bits() {
        // 1-qubit |1> at physical position 2 of a 3-qubit register.
        let one = vec![Complex::ZERO, Complex::ONE];
        let embedded = embed_state(&one, &[2], 3);
        assert!(embedded[0b100].is_approx_one());
    }

    #[test]
    fn embed_preserves_superpositions() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        let state = statevector(&bell).unwrap();
        // Place logical (0,1) at physical (3,1) of 4 qubits.
        let embedded = embed_state(&state, &[3, 1], 4);
        assert!(embedded[0].approx_eq(Complex::FRAC_1_SQRT_2));
        assert!(embedded[0b1010].approx_eq(Complex::FRAC_1_SQRT_2));
    }

    #[test]
    fn random_state_is_normalized() {
        let mut rng = rand::thread_rng();
        let state = random_state(4, &mut rng);
        let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        assert!((state_fidelity(&state, &state) - 1.0).abs() < 1e-12);
    }
}
