//! Dependency-graph view of a circuit.
//!
//! [`DagCircuit`] arranges a circuit's instructions as a directed acyclic
//! graph whose edges follow qubit/clbit wires — the representation the
//! transpiler's optimization passes operate on (predecessor/successor
//! queries, topological layers, local rewrites).

use crate::circuit::QuantumCircuit;
use crate::instruction::{Instruction, Operation};

/// Index of a node in a [`DagCircuit`].
pub type NodeIndex = usize;

/// One operation node in the DAG.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// The instruction at this node.
    pub instruction: Instruction,
    /// Per-wire predecessor node, parallel to `instruction` wires.
    pub predecessors: Vec<Option<NodeIndex>>,
    /// Per-wire successor node, parallel to `instruction` wires.
    pub successors: Vec<Option<NodeIndex>>,
    /// Tombstone marker used by rewriting passes.
    pub removed: bool,
}

impl DagNode {
    fn wires(inst: &Instruction, num_qubits: usize) -> Vec<usize> {
        let mut wires = inst.qubits.clone();
        for &c in &inst.clbits {
            wires.push(num_qubits + c);
        }
        if let Some(cond) = &inst.condition {
            for &c in &cond.clbits {
                wires.push(num_qubits + c);
            }
        }
        wires
    }
}

/// A circuit as a wire-dependency DAG.
///
/// # Examples
///
/// ```
/// use qukit_terra::circuit::QuantumCircuit;
/// use qukit_terra::dag::DagCircuit;
///
/// # fn main() -> Result<(), qukit_terra::error::TerraError> {
/// let mut circ = QuantumCircuit::new(2);
/// circ.h(0)?;
/// circ.cx(0, 1)?;
/// let dag = DagCircuit::from_circuit(&circ);
/// assert_eq!(dag.layers().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DagCircuit {
    num_qubits: usize,
    num_clbits: usize,
    nodes: Vec<DagNode>,
    global_phase: f64,
}

impl DagCircuit {
    /// Builds the DAG of a circuit.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Self {
        let num_qubits = circuit.num_qubits();
        let num_clbits = circuit.num_clbits();
        let num_wires = num_qubits + num_clbits;
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.size());
        // Last node seen on each wire.
        let mut frontier: Vec<Option<NodeIndex>> = vec![None; num_wires];
        for inst in circuit.instructions() {
            let wires = DagNode::wires(inst, num_qubits);
            let idx = nodes.len();
            let mut predecessors = Vec::with_capacity(wires.len());
            for &w in &wires {
                predecessors.push(frontier[w]);
                if let Some(p) = frontier[w] {
                    // Record successor slot on the predecessor for wire w.
                    let pw = DagNode::wires(&nodes[p].instruction, num_qubits);
                    for (slot, &pwire) in pw.iter().enumerate() {
                        if pwire == w {
                            nodes[p].successors[slot] = Some(idx);
                        }
                    }
                }
                frontier[w] = Some(idx);
            }
            let successors = vec![None; wires.len()];
            nodes.push(DagNode {
                instruction: inst.clone(),
                predecessors,
                successors,
                removed: false,
            });
        }
        Self { num_qubits, num_clbits, nodes, global_phase: circuit.global_phase() }
    }

    /// Number of (live) operation nodes.
    pub fn num_ops(&self) -> usize {
        self.nodes.iter().filter(|n| !n.removed).count()
    }

    /// Borrow a node.
    pub fn node(&self, idx: NodeIndex) -> &DagNode {
        &self.nodes[idx]
    }

    /// Iterate over live node indices in topological (insertion) order.
    pub fn topological_order(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.nodes.len()).filter(move |&i| !self.nodes[i].removed)
    }

    /// Marks a node removed (used by cancellation passes).
    pub fn remove_node(&mut self, idx: NodeIndex) {
        self.nodes[idx].removed = true;
    }

    /// The live predecessor of `idx` on the wire occupied by qubit `q`,
    /// skipping removed nodes.
    pub fn predecessor_on_qubit(&self, idx: NodeIndex, q: usize) -> Option<NodeIndex> {
        let node = &self.nodes[idx];
        let slot = node.instruction.qubits.iter().position(|&w| w == q)?;
        let mut cur = node.predecessors[slot];
        while let Some(p) = cur {
            if !self.nodes[p].removed {
                return Some(p);
            }
            // Skip the removed node: follow its predecessor on the same wire.
            let pnode = &self.nodes[p];
            let pslot = pnode.instruction.qubits.iter().position(|&w| w == q)?;
            cur = pnode.predecessors[pslot];
        }
        None
    }

    /// Groups live nodes into parallel layers (each layer's instructions act
    /// on disjoint wires). This matches the layered view drawers and
    /// greedy mappers use.
    pub fn layers(&self) -> Vec<Vec<NodeIndex>> {
        let num_wires = self.num_qubits + self.num_clbits;
        let mut wire_level = vec![0usize; num_wires];
        let mut layers: Vec<Vec<NodeIndex>> = Vec::new();
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].removed {
                continue;
            }
            let wires = DagNode::wires(&self.nodes[idx].instruction, self.num_qubits);
            let level = wires.iter().map(|&w| wire_level[w]).max().unwrap_or(0);
            if level >= layers.len() {
                layers.resize_with(level + 1, Vec::new);
            }
            layers[level].push(idx);
            for &w in &wires {
                wire_level[w] = level + 1;
            }
        }
        layers
    }

    /// Rebuilds a circuit from the live nodes, preserving registers of the
    /// provided template (which must have the same widths).
    ///
    /// # Panics
    ///
    /// Panics if `template` widths differ from the DAG's.
    pub fn to_circuit(&self, template: &QuantumCircuit) -> QuantumCircuit {
        assert_eq!(template.num_qubits(), self.num_qubits, "qubit width mismatch");
        assert_eq!(template.num_clbits(), self.num_clbits, "clbit width mismatch");
        let mut out = template.clone();
        out.clear();
        out.add_global_phase(self.global_phase);
        for idx in self.topological_order() {
            out.push(self.nodes[idx].instruction.clone()).expect("valid by construction");
        }
        out
    }

    /// Iterates over live two-qubit gate nodes — the mapper's work list.
    pub fn two_qubit_gates(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        self.topological_order().filter(move |&i| {
            let inst = &self.nodes[i].instruction;
            matches!(inst.op, Operation::Gate(_)) && inst.qubits.len() == 2
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> QuantumCircuit {
        let mut circ = QuantumCircuit::with_size(3, 1);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.x(2).unwrap();
        circ.cx(1, 2).unwrap();
        circ.measure(2, 0).unwrap();
        circ
    }

    #[test]
    fn construction_links_wires() {
        let dag = DagCircuit::from_circuit(&sample());
        assert_eq!(dag.num_ops(), 5);
        // cx(0,1) is node 1; its predecessor on qubit 0 is h (node 0).
        assert_eq!(dag.predecessor_on_qubit(1, 0), Some(0));
        assert_eq!(dag.predecessor_on_qubit(1, 1), None);
        // cx(1,2) is node 3; predecessor on qubit 2 is x (node 2).
        assert_eq!(dag.predecessor_on_qubit(3, 2), Some(2));
        assert_eq!(dag.predecessor_on_qubit(3, 1), Some(1));
    }

    #[test]
    fn layers_respect_dependencies() {
        let dag = DagCircuit::from_circuit(&sample());
        let layers = dag.layers();
        // Layer 0: h(0) and x(2) in parallel. Layer 1: cx(0,1).
        // Layer 2: cx(1,2). Layer 3: measure.
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].len(), 2);
        assert_eq!(layers[1].len(), 1);
    }

    #[test]
    fn removal_skips_nodes() {
        let mut dag = DagCircuit::from_circuit(&sample());
        dag.remove_node(2); // remove x(2)
        assert_eq!(dag.num_ops(), 4);
        // cx(1,2)'s predecessor on wire 2 now skips to nothing.
        assert_eq!(dag.predecessor_on_qubit(3, 2), None);
    }

    #[test]
    fn round_trip_to_circuit() {
        let circ = sample();
        let dag = DagCircuit::from_circuit(&circ);
        let rebuilt = dag.to_circuit(&circ);
        assert_eq!(rebuilt.instructions(), circ.instructions());
    }

    #[test]
    fn two_qubit_gate_listing() {
        let dag = DagCircuit::from_circuit(&sample());
        let twoq: Vec<_> = dag.two_qubit_gates().collect();
        assert_eq!(twoq.len(), 2);
        assert_eq!(dag.node(twoq[0]).instruction.as_gate(), Some(&Gate::CX));
    }

    #[test]
    fn conditioned_gates_depend_on_clbits() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.measure(0, 0).unwrap();
        circ.append_conditional(Gate::X, &[1], "c", 1).unwrap();
        let dag = DagCircuit::from_circuit(&circ);
        let layers = dag.layers();
        assert_eq!(layers.len(), 2, "conditional gate must wait for the measurement");
    }
}
