//! Complex number arithmetic for quantum amplitudes.
//!
//! The toolchain is self-contained: rather than depending on an external
//! numerics crate, this module provides [`Complex`], a minimal but complete
//! double-precision complex type tailored to quantum computation
//! (amplitudes, gate-matrix entries, edge weights of decision diagrams).
//!
//! # Examples
//!
//! ```
//! use qukit_terra::complex::Complex;
//!
//! let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
//! assert!((h * h.conj()).re - 0.5 < 1e-12);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Tolerance used by the `approx_eq` family of comparisons throughout the
/// toolchain. Chosen so that products of a few hundred elementary gates stay
/// comfortably within tolerance while genuine mismatches are caught.
pub const EPSILON: f64 = 1e-10;

/// A double-precision complex number `re + i*im`.
///
/// Implements the full set of arithmetic operators as well as the helpers
/// needed for quantum computation: conjugation, modulus, argument and the
/// complex exponential `e^{iθ}`.
///
/// # Examples
///
/// ```
/// use qukit_terra::complex::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z.conj(), Complex::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for a [`Complex`] value.
///
/// # Examples
///
/// ```
/// use qukit_terra::complex::{c64, Complex};
/// assert_eq!(c64(1.0, -1.0), Complex::new(1.0, -1.0));
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex = c64(0.0, 1.0);
    /// `1/sqrt(2)`, the ubiquitous Hadamard amplitude.
    pub const FRAC_1_SQRT_2: Complex = c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// This is the workhorse for building gate matrices with phase
    /// parameters.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared modulus `|z|^2`.
    ///
    /// For a normalized amplitude this is a measurement probability.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is (numerically) zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempt to invert a zero complex number");
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Returns the principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// Compares two complex numbers for approximate equality within
    /// [`EPSILON`] in both components.
    #[inline]
    pub fn approx_eq(self, other: Self) -> bool {
        self.approx_eq_eps(other, EPSILON)
    }

    /// Compares for approximate equality with a caller-supplied tolerance.
    #[inline]
    pub fn approx_eq_eps(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Returns `true` when both components are within [`EPSILON`] of zero.
    #[inline]
    pub fn is_approx_zero(self) -> bool {
        self.re.abs() <= EPSILON && self.im.abs() <= EPSILON
    }

    /// Returns `true` when within [`EPSILON`] of the real number `1`.
    #[inline]
    pub fn is_approx_one(self) -> bool {
        (self.re - 1.0).abs() <= EPSILON && self.im.abs() <= EPSILON
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl std::iter::Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex::ONE, c64(1.0, 0.0));
        assert_eq!(Complex::I, c64(0.0, 1.0));
        assert_eq!(Complex::from_real(2.5), c64(2.5, 0.0));
        assert_eq!(Complex::from(3.0), c64(3.0, 0.0));
        assert_eq!(Complex::default(), Complex::ZERO);
    }

    #[test]
    fn arithmetic_operators() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        assert_eq!(a + b, c64(4.0, 1.0));
        assert_eq!(a - b, c64(-2.0, 3.0));
        assert_eq!(a * b, c64(5.0, 5.0));
        assert!((a / b * b).approx_eq(a));
        assert_eq!(-a, c64(-1.0, -2.0));
        assert_eq!(a * 2.0, c64(2.0, 4.0));
        assert_eq!(2.0 * a, c64(2.0, 4.0));
    }

    #[test]
    fn assign_operators() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert_eq!(z, c64(0.0, 2.0));
        z /= c64(0.0, 2.0);
        assert!(z.approx_eq(Complex::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(c64(-1.0, 0.0)));
    }

    #[test]
    fn conj_norm_arg() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((Complex::I.arg() - FRAC_PI_2).abs() < 1e-15);
        assert!((c64(-1.0, 0.0).arg() - PI).abs() < 1e-15);
    }

    #[test]
    fn cis_and_polar() {
        let z = Complex::cis(PI / 3.0);
        assert!((z.norm() - 1.0).abs() < 1e-15);
        assert!((z.arg() - PI / 3.0).abs() < 1e-15);
        let w = Complex::from_polar(2.0, -PI / 4.0);
        assert!((w.norm() - 2.0).abs() < 1e-15);
        assert!((w.arg() + PI / 4.0).abs() < 1e-15);
    }

    #[test]
    fn recip_and_sqrt() {
        let z = c64(1.0, 2.0);
        assert!((z * z.recip()).approx_eq(Complex::ONE));
        let r = c64(-4.0, 0.0).sqrt();
        assert!(r.approx_eq(c64(0.0, 2.0)));
        let s = c64(0.0, 2.0).sqrt();
        assert!((s * s).approx_eq(c64(0.0, 2.0)));
    }

    #[test]
    fn approx_comparisons() {
        assert!(c64(1.0, 0.0).is_approx_one());
        assert!(c64(1e-12, -1e-12).is_approx_zero());
        assert!(!c64(1e-3, 0.0).is_approx_zero());
        assert!(c64(1.0, 0.0).approx_eq_eps(c64(1.0 + 1e-8, 0.0), 1e-6));
        assert!(!c64(1.0, 0.0).approx_eq(c64(1.0 + 1e-6, 0.0)));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::cis(PI * k as f64 / 2.0)).sum();
        // 1 + i - 1 - i = 0
        assert!(total.is_approx_zero());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }
}
