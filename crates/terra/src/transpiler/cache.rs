//! The transpile cache: repeated service traffic skips the pipeline.
//!
//! Transpilation is by far the most expensive step for small repeated
//! circuits (the PR 6 multi-tenant workload resubmits identical payloads
//! constantly), and it is fully deterministic: the same circuit, coupling
//! map, routing options, optimization level and basis produce the same
//! output. [`transpile_cached`] therefore keys results by a dual-FNV
//! 128-bit content hash of `(circuit, coupling map, mapper, initial
//! layout, opt level, basis)` and returns a **clone of the cached
//! [`TranspileResult`]** on a hit — bit-identical to a fresh transpile,
//! because [`super::transpile`] itself is deterministic.
//!
//! Hits and misses are observable through
//! `qukit_terra_transpile_cache_{hits,misses,inserts,evictions}_total`
//! and the `qukit_terra_transpile_cache_entries` gauge; `qukit bench
//! --transpile` uses the same path to prove the ≥10× hit/cold speedup.

use super::{transpile, TranspileOptions, TranspileResult};
use crate::circuit::QuantumCircuit;
use crate::error::Result;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

/// Counters describing cache behaviour, as observed by tests and the
/// bench harness (the obs counters carry the same values globally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored result.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    result: TranspileResult,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<u128, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded LRU cache of transpile results.
pub struct TranspileCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl TranspileCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Content hash of a transpile request. Every input that can change
    /// the output is folded in: the full instruction stream (operations,
    /// operands, conditions, global phase, register shape), the coupling
    /// map (name, size and exact edge set), and all routing/optimization
    /// options. Two different opt levels, coupling maps or basis settings
    /// therefore never share a key.
    pub fn key(circuit: &QuantumCircuit, options: &TranspileOptions) -> u128 {
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x5bd1_e995_9d02_9c4f;
        let mut feed = |bytes: &[u8]| {
            for &byte in bytes {
                lo = fnv_step(lo, byte);
                hi = fnv_step(hi, byte.wrapping_add(0x33));
            }
            // Separator so adjacent fields cannot alias.
            lo = fnv_step(lo, 0xff);
            hi = fnv_step(hi, 0xff);
        };

        feed(&(circuit.num_qubits() as u64).to_le_bytes());
        feed(&(circuit.num_clbits() as u64).to_le_bytes());
        feed(&circuit.global_phase().to_bits().to_le_bytes());
        for inst in circuit.instructions() {
            feed(format!("{inst:?}").as_bytes());
        }

        match &options.coupling_map {
            Some(map) => {
                feed(b"coupled");
                feed(map.name().as_bytes());
                feed(&(map.num_qubits() as u64).to_le_bytes());
                for (a, b) in map.edges() {
                    feed(&(a as u64).to_le_bytes());
                    feed(&(b as u64).to_le_bytes());
                }
            }
            None => feed(b"all-to-all"),
        }
        feed(format!("{:?}", options.mapper).as_bytes());
        feed(format!("{:?}", options.initial_layout).as_bytes());
        feed(&[options.optimization_level, u8::from(options.basis_u)]);

        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// Looks a result up, updating LRU recency and hit/miss counters.
    pub fn lookup(&self, key: u128) -> Option<TranspileResult> {
        let mut state = self.state.lock().expect("transpile cache lock");
        state.tick += 1;
        let tick = state.tick;
        match state.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let result = entry.result.clone();
                state.stats.hits += 1;
                qukit_obs::counter_inc("qukit_terra_transpile_cache_hits_total");
                Some(result)
            }
            None => {
                state.stats.misses += 1;
                qukit_obs::counter_inc("qukit_terra_transpile_cache_misses_total");
                None
            }
        }
    }

    /// Stores a result, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: u128, result: TranspileResult) {
        let mut state = self.state.lock().expect("transpile cache lock");
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            if let Some(&victim) =
                state.entries.iter().min_by_key(|(_, entry)| entry.last_used).map(|(key, _)| key)
            {
                state.entries.remove(&victim);
                state.stats.evictions += 1;
                qukit_obs::counter_inc("qukit_terra_transpile_cache_evictions_total");
            }
        }
        state.entries.insert(key, Entry { result, last_used: tick });
        state.stats.inserts += 1;
        state.stats.entries = state.entries.len();
        qukit_obs::counter_inc("qukit_terra_transpile_cache_inserts_total");
        qukit_obs::gauge_set("qukit_terra_transpile_cache_entries", state.entries.len() as f64);
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("transpile cache lock");
        let mut stats = state.stats;
        stats.entries = state.entries.len();
        stats
    }

    /// Empties the cache and resets the stats (tests and benchmarks).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("transpile cache lock");
        state.entries.clear();
        state.stats = CacheStats::default();
        qukit_obs::gauge_set("qukit_terra_transpile_cache_entries", 0.0);
    }
}

/// The process-wide transpile cache used by [`transpile_cached`].
pub fn global() -> &'static TranspileCache {
    static CACHE: OnceLock<TranspileCache> = OnceLock::new();
    CACHE.get_or_init(|| TranspileCache::new(256))
}

/// [`transpile`] through the process-wide cache: a hit returns a clone of
/// the stored result (bit-identical to a fresh transpile), a miss runs
/// the pipeline and stores the outcome.
///
/// # Errors
///
/// Same failure modes as [`transpile`] (errors are not cached).
pub fn transpile_cached(
    circuit: &QuantumCircuit,
    options: &TranspileOptions,
) -> Result<TranspileResult> {
    let key = TranspileCache::key(circuit, options);
    if let Some(result) = global().lookup(key) {
        return Ok(result);
    }
    let result = transpile(circuit, options)?;
    global().insert(key, result.clone());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::coupling::CouplingMap;
    use crate::transpiler::MapperKind;

    #[test]
    fn keys_separate_every_option_dimension() {
        let circ = fig1_circuit();
        let base_opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
        let base = TranspileCache::key(&circ, &base_opts);
        assert_eq!(base, TranspileCache::key(&circ, &base_opts), "key is deterministic");

        let mut level = base_opts.clone();
        level.optimization_level = 3;
        assert_ne!(base, TranspileCache::key(&circ, &level));

        let mut mapper = base_opts.clone();
        mapper.mapper = MapperKind::AStar;
        assert_ne!(base, TranspileCache::key(&circ, &mapper));

        let mut basis = base_opts.clone();
        basis.basis_u = true;
        assert_ne!(base, TranspileCache::key(&circ, &basis));

        let line = TranspileOptions::for_device(CouplingMap::line(5));
        assert_ne!(base, TranspileCache::key(&circ, &line));

        let mut other_circ = circ.clone();
        other_circ.h(0).unwrap();
        assert_ne!(base, TranspileCache::key(&other_circ, &base_opts));
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let cache = TranspileCache::new(2);
        let circ = fig1_circuit();
        let opts = TranspileOptions::for_simulator(1);
        let result = transpile(&circ, &opts).unwrap();
        cache.insert(1, result.clone());
        cache.insert(2, result.clone());
        assert!(cache.lookup(1).is_some(), "refresh key 1");
        cache.insert(3, result);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(2).is_none(), "key 2 was least recently used");
        assert!(cache.lookup(1).is_some() && cache.lookup(3).is_some());
        assert_eq!(cache.stats().entries, 2);
    }
}
