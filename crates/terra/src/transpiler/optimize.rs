//! Gate-level optimization passes.
//!
//! The paper motivates transpiler optimization as "minimizing occurrences
//! of CNOT gates" and cleaning up the H/SWAP overhead introduced by
//! mapping. Two passes are provided:
//!
//! * [`cancel_inverse_pairs`] — removes adjacent gate/inverse pairs
//!   (`H·H`, `CX·CX`, `T·T†`, …) to a fixpoint;
//! * [`merge_single_qubit_runs`] — multiplies out maximal runs of
//!   single-qubit gates per wire and resynthesizes each as one `U(θ,φ,λ)`
//!   via ZYZ Euler decomposition, dropping runs that are the identity.

use super::decompose::zyz_decompose;
use crate::circuit::QuantumCircuit;
use crate::complex::EPSILON;
use crate::error::Result;
use crate::gate::Gate;
use crate::instruction::Instruction;

/// Removes adjacent inverse pairs of plain (unconditioned) gates until no
/// more cancellations are possible. Returns the optimized circuit and the
/// number of gates removed.
pub fn cancel_inverse_pairs(circuit: &QuantumCircuit) -> (QuantumCircuit, usize) {
    let insts = circuit.instructions();
    let num_wires = circuit.num_qubits() + circuit.num_clbits();
    let mut alive: Vec<bool> = vec![true; insts.len()];
    let mut removed = 0usize;
    // Iterate to fixpoint: each sweep tracks, per wire, the previous alive
    // instruction; a gate cancels its predecessor when the predecessor is
    // the same instruction on *all* of its wires and is the exact inverse
    // with identical operand order.
    loop {
        let mut changed = false;
        let mut last_on_wire: Vec<Option<usize>> = vec![None; num_wires];
        for i in 0..insts.len() {
            if !alive[i] {
                continue;
            }
            let inst = &insts[i];
            let wires = wires_of(inst, circuit.num_qubits());
            if inst.is_plain_gate() {
                let gate = *inst.as_gate().expect("plain gate");
                // Predecessor must be identical on every wire.
                let pred = wires.iter().map(|&w| last_on_wire[w]).collect::<Vec<_>>();
                if let Some(&Some(p)) = pred.first() {
                    let same_on_all = pred.iter().all(|&x| x == Some(p));
                    if same_on_all && alive[p] {
                        let prev = &insts[p];
                        if prev.is_plain_gate()
                            && prev.qubits == inst.qubits
                            && prev.as_gate() == Some(&gate.inverse())
                        {
                            alive[i] = false;
                            alive[p] = false;
                            removed += 2;
                            changed = true;
                            // The wires' earlier frontier is rediscovered on
                            // the next sweep.
                        }
                    }
                }
            }
            if alive[i] {
                for &w in &wires {
                    last_on_wire[w] = Some(i);
                }
            } else {
                // Clear the frontier on these wires so the next gate does
                // not cancel against something separated by the removed
                // pair's former position (handled next sweep).
                for &w in &wires {
                    last_on_wire[w] = None;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    for (i, inst) in insts.iter().enumerate() {
        if alive[i] {
            out.push(inst.clone()).expect("operands already validated");
        }
    }
    (out, removed)
}

fn wires_of(inst: &Instruction, num_qubits: usize) -> Vec<usize> {
    let mut wires = inst.qubits.clone();
    for &c in &inst.clbits {
        wires.push(num_qubits + c);
    }
    if let Some(cond) = &inst.condition {
        for &c in &cond.clbits {
            wires.push(num_qubits + c);
        }
    }
    wires
}

/// Merges maximal runs of consecutive plain single-qubit gates on each wire
/// into a single [`Gate::U`]. Runs whose product is the identity (up to
/// global phase) are dropped entirely, with the phase folded into the
/// circuit's global phase. Returns the circuit and the number of
/// instructions eliminated (merged away or dropped).
pub fn merge_single_qubit_runs(circuit: &QuantumCircuit) -> (QuantumCircuit, usize) {
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    // Pending 1q product per qubit (matrix, source gate count).
    let mut pending: Vec<Option<(crate::matrix::Matrix, usize)>> = vec![None; circuit.num_qubits()];
    let mut eliminated = 0usize;

    let flush = |q: usize,
                 pending: &mut Vec<Option<(crate::matrix::Matrix, usize)>>,
                 out: &mut QuantumCircuit,
                 eliminated: &mut usize| {
        if let Some((matrix, count)) = pending[q].take() {
            // Identity up to phase?
            if let Some(phase) = matrix.phase_equal_to(&crate::matrix::Matrix::identity(2)) {
                out.add_global_phase(phase);
                *eliminated += count;
                return;
            }
            let (theta, phi, lam, alpha) = zyz_decompose(&matrix);
            // Prefer emitting the simpler original gate for length-1 runs
            // is handled by the caller; here we always emit U.
            out.add_global_phase(alpha);
            out.append(Gate::U(theta, phi, lam), &[q]).expect("valid qubit");
            *eliminated += count - 1;
        }
    };

    for inst in circuit.instructions() {
        let is_plain_1q = inst.is_plain_gate() && inst.qubits.len() == 1;
        if is_plain_1q {
            let q = inst.qubits[0];
            let g = inst.as_gate().expect("plain gate");
            let m = g.matrix();
            pending[q] = Some(match pending[q].take() {
                // Later gates multiply on the left.
                Some((acc, count)) => (m.matmul(&acc), count + 1),
                None => (m, 1),
            });
        } else {
            // Any other instruction flushes the wires it touches.
            for &q in &inst.qubits {
                flush(q, &mut pending, &mut out, &mut eliminated);
            }
            if let Some(cond) = &inst.condition {
                let _ = cond; // classical wires carry no pending 1q product
            }
            out.push(inst.clone()).expect("operands already validated");
        }
    }
    for q in 0..circuit.num_qubits() {
        flush(q, &mut pending, &mut out, &mut eliminated);
    }
    (out, eliminated)
}

/// Drops `U` gates that are numerically the identity and explicit
/// [`Gate::I`] gates. Returns circuit and count removed.
pub fn drop_identities(circuit: &QuantumCircuit) -> (QuantumCircuit, usize) {
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    let mut removed = 0usize;
    for inst in circuit.instructions() {
        let is_identity = match inst.as_gate() {
            Some(Gate::I) => inst.condition.is_none(),
            Some(Gate::U(t, p, l)) if inst.condition.is_none() => {
                t.abs() < EPSILON && (p + l).abs() < EPSILON
            }
            Some(Gate::Rz(t)) | Some(Gate::Phase(t)) | Some(Gate::Rx(t)) | Some(Gate::Ry(t))
                if inst.condition.is_none() =>
            {
                t.abs() < EPSILON
            }
            _ => false,
        };
        if is_identity {
            removed += 1;
        } else {
            out.push(inst.clone()).expect("operands already validated");
        }
    }
    (out, removed)
}

/// Runs the full optimization pipeline (cancellation → 1q merge →
/// identity drop) repeatedly until the gate count stops improving.
///
/// # Errors
///
/// Infallible today; `Result` keeps the pass signature uniform.
pub fn optimize_to_fixpoint(circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
    let mut current = circuit.clone();
    loop {
        let before = current.size();
        let (c1, _) = cancel_inverse_pairs(&current);
        let (c2, _) = cancel_commuting_cx_pairs(&c1);
        let (c3, _) = merge_single_qubit_runs(&c2);
        let (c4, _) = drop_identities(&c3);
        current = c4;
        if current.size() >= before {
            return Ok(current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference;

    fn assert_equiv(a: &QuantumCircuit, b: &QuantumCircuit) {
        let ua = reference::unitary(a).unwrap();
        let ub = reference::unitary(b).unwrap();
        assert!(ua.approx_eq_eps(&ub, 1e-8), "circuits not exactly equivalent");
    }

    #[test]
    fn hh_cancels() {
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.h(0).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 2);
        assert_eq!(opt.size(), 0);
    }

    #[test]
    fn t_tdg_cancels() {
        let mut circ = QuantumCircuit::new(1);
        circ.t(0).unwrap();
        circ.tdg(0).unwrap();
        let (opt, _) = cancel_inverse_pairs(&circ);
        assert_eq!(opt.size(), 0);
    }

    #[test]
    fn cx_pair_cancels_only_with_same_orientation() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, _) = cancel_inverse_pairs(&circ);
        assert_eq!(opt.size(), 0);

        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.cx(1, 0).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.size(), 2);
    }

    #[test]
    fn cancellation_cascades_to_fixpoint() {
        // X H H X: inner pair cancels, exposing the outer pair.
        let mut circ = QuantumCircuit::new(1);
        circ.x(0).unwrap();
        circ.h(0).unwrap();
        circ.h(0).unwrap();
        circ.x(0).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 4);
        assert_eq!(opt.size(), 0);
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.h(0).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.size(), 3);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.h(0).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.size(), 3);
    }

    #[test]
    fn conditioned_gates_never_cancel() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.append_conditional(Gate::X, &[0], "c", 1).unwrap();
        circ.append_conditional(Gate::X, &[0], "c", 1).unwrap();
        let (opt, removed) = cancel_inverse_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.size(), 2);
    }

    #[test]
    fn merge_collapses_run_to_single_u() {
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.t(0).unwrap();
        circ.s(0).unwrap();
        circ.rx(0.3, 0).unwrap();
        let (opt, eliminated) = merge_single_qubit_runs(&circ);
        assert_eq!(opt.size(), 1);
        assert_eq!(eliminated, 3);
        assert!(matches!(opt.instructions()[0].as_gate(), Some(Gate::U(..))));
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn merge_drops_identity_runs_and_tracks_phase() {
        let mut circ = QuantumCircuit::new(1);
        circ.s(0).unwrap();
        circ.s(0).unwrap();
        circ.z(0).unwrap(); // S·S·Z = Z·Z = I
        let (opt, _) = merge_single_qubit_runs(&circ);
        assert_eq!(opt.num_gates(), 0);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn merge_respects_cx_boundaries() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.t(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.s(0).unwrap();
        circ.h(1).unwrap();
        let (opt, _) = merge_single_qubit_runs(&circ);
        // h,t merge into one U; s and h stay single (each becomes one U).
        assert_eq!(opt.num_gates(), 4);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn merge_keeps_measurement_order() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        let (opt, _) = merge_single_qubit_runs(&circ);
        assert_eq!(opt.instructions()[0].op.name(), "u");
        assert_eq!(opt.instructions()[1].op.name(), "measure");
    }

    #[test]
    fn drop_identities_removes_trivial_gates() {
        let mut circ = QuantumCircuit::new(1);
        circ.id(0).unwrap();
        circ.u(0.0, 0.5, -0.5, 0).unwrap(); // U(0, φ, -φ) == I
        circ.rz(0.0, 0).unwrap();
        circ.x(0).unwrap();
        let (opt, removed) = drop_identities(&circ);
        assert_eq!(removed, 3);
        assert_eq!(opt.size(), 1);
    }

    #[test]
    fn fixpoint_optimization_is_equivalent_and_smaller() {
        // Mapped-style circuit: many H pairs around CXs.
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.h(1).unwrap();
        circ.cx(1, 0).unwrap();
        circ.h(0).unwrap();
        circ.h(1).unwrap();
        circ.h(0).unwrap();
        circ.h(1).unwrap();
        circ.cx(1, 0).unwrap();
        circ.h(0).unwrap();
        circ.h(1).unwrap();
        let opt = optimize_to_fixpoint(&circ).unwrap();
        assert!(opt.size() < circ.size());
        assert_equiv(&circ, &opt);
        // The H-pairs cancel leaving CX·CX which cancels too: empty circuit.
        assert_eq!(opt.num_gates(), 0);
    }

    #[test]
    fn optimization_preserves_global_phase_exactly() {
        let mut circ = QuantumCircuit::new(1);
        circ.z(0).unwrap();
        circ.x(0).unwrap();
        circ.z(0).unwrap();
        circ.x(0).unwrap(); // Z X Z X = -I
        let opt = optimize_to_fixpoint(&circ).unwrap();
        assert_eq!(opt.num_gates(), 0);
        let state = reference::statevector(&opt).unwrap();
        assert!(state[0].approx_eq(crate::complex::c64(-1.0, 0.0)));
    }

    #[test]
    fn sanity_unitary_identity() {
        assert!(Matrix::identity(4).is_unitary());
    }
}

/// Cancels CX pairs separated only by gates that *commute* with the CX on
/// the wires they share: diagonal gates (and other CXs sharing the same
/// control) on the control wire; `X`/`Rx` (and other CXs sharing the same
/// target) on the target wire. This catches the cancellations plain
/// adjacency misses, e.g. `CX(0,1) · T(0) · CX(0,1) = T(0)`.
///
/// Returns the optimized circuit and the number of gates removed.
pub fn cancel_commuting_cx_pairs(circuit: &QuantumCircuit) -> (QuantumCircuit, usize) {
    let insts = circuit.instructions();
    let mut alive = vec![true; insts.len()];
    let mut removed = 0usize;

    let commutes_on_control = |inst: &Instruction, control: usize| -> bool {
        if !inst.is_plain_gate() {
            return false;
        }
        match inst.as_gate() {
            Some(Gate::CX) => inst.qubits[0] == control,
            Some(g) if g.num_qubits() == 1 => g.is_diagonal(),
            _ => false,
        }
    };
    let commutes_on_target = |inst: &Instruction, target: usize| -> bool {
        if !inst.is_plain_gate() {
            return false;
        }
        match inst.as_gate() {
            Some(Gate::CX) => inst.qubits[1] == target,
            Some(Gate::X) | Some(Gate::Rx(_)) | Some(Gate::Sx) | Some(Gate::Sxdg) => {
                inst.qubits[0] == target
            }
            _ => false,
        }
    };

    loop {
        let mut changed = false;
        'outer: for i in 0..insts.len() {
            if !alive[i] || !insts[i].is_plain_gate() || insts[i].as_gate() != Some(&Gate::CX) {
                continue;
            }
            let (c, t) = (insts[i].qubits[0], insts[i].qubits[1]);
            // Find the next alive CX with the same operands such that every
            // alive instruction between them commutes appropriately.
            for j in i + 1..insts.len() {
                if !alive[j] {
                    continue;
                }
                let touches_c = insts[j].acts_on(c);
                let touches_t = insts[j].acts_on(t);
                if !touches_c && !touches_t {
                    continue;
                }
                if insts[j].is_plain_gate()
                    && insts[j].as_gate() == Some(&Gate::CX)
                    && insts[j].qubits == vec![c, t]
                {
                    alive[i] = false;
                    alive[j] = false;
                    removed += 2;
                    changed = true;
                    continue 'outer;
                }
                let ok = (!touches_c || commutes_on_control(&insts[j], c))
                    && (!touches_t || commutes_on_target(&insts[j], t));
                if !ok {
                    continue 'outer;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    for (i, inst) in insts.iter().enumerate() {
        if alive[i] {
            out.push(inst.clone()).expect("operands already validated");
        }
    }
    (out, removed)
}

#[cfg(test)]
mod commutation_tests {
    use super::*;
    use crate::reference;

    fn assert_equiv(a: &QuantumCircuit, b: &QuantumCircuit) {
        let ua = reference::unitary(a).unwrap();
        let ub = reference::unitary(b).unwrap();
        assert!(ua.approx_eq_eps(&ub, 1e-8), "commutation pass changed semantics");
    }

    #[test]
    fn cancels_through_diagonal_on_control() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.t(0).unwrap();
        circ.rz(0.4, 0).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 2);
        assert_eq!(opt.num_gates(), 2);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn cancels_through_x_on_target() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.x(1).unwrap();
        circ.rx(0.9, 1).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 2);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn cancels_through_shared_control_cx() {
        let mut circ = QuantumCircuit::new(3);
        circ.cx(0, 1).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 2);
        assert_eq!(opt.num_gates(), 1);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn cancels_through_shared_target_cx() {
        let mut circ = QuantumCircuit::new(3);
        circ.cx(0, 1).unwrap();
        circ.cx(2, 1).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 2);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn blocked_by_hadamard_on_control() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.num_gates(), 3);
    }

    #[test]
    fn blocked_by_diagonal_on_target() {
        // T on the *target* does not commute with CX.
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.t(1).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.num_gates(), 3);
        assert_equiv(&circ, &opt);
    }

    #[test]
    fn blocked_by_reversed_cx() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        circ.cx(1, 0).unwrap();
        circ.cx(0, 1).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 0);
        assert_eq!(opt.num_gates(), 3);
    }

    #[test]
    fn blocked_by_measurement() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.cx(0, 1).unwrap();
        let (_, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 0);
    }

    #[test]
    fn cascade_of_commuting_cancellations() {
        // cx t cx | cx x cx -> t | x on a 3-qubit circuit.
        let mut circ = QuantumCircuit::new(3);
        circ.cx(0, 1).unwrap();
        circ.t(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.cx(1, 2).unwrap();
        circ.x(2).unwrap();
        circ.cx(1, 2).unwrap();
        let (opt, removed) = cancel_commuting_cx_pairs(&circ);
        assert_eq!(removed, 4);
        assert_eq!(opt.num_gates(), 2);
        assert_equiv(&circ, &opt);
    }
}
