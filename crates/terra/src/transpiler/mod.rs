//! The transpiler: decomposition, mapping, and optimization.
//!
//! This module is qukit's analogue of the `compile` step the paper walks
//! through in Section IV (and improves on in Section V-B): it takes an
//! abstract circuit and produces one that satisfies a device's elementary
//! gate set (`{U(θ,φ,λ), CX}`) and CNOT-constraints.
//!
//! Since the pass-manager rebuild, [`transpile`] is a thin driver: it asks
//! [`pass::pipeline_for`] for the staged [`pass::PassManager`] matching the
//! requested options and runs it with a fresh
//! [`property_set::PropertySet`]. The default device pipeline:
//!
//! 1. **Decompose** every multi-qubit gate to `{1q, CX}`
//!    ([`decompose::decompose_to_cx_basis`]);
//! 2. **Place & route** onto the coupling map with the selected
//!    [`MapperKind`] ([`mapping::map_circuit`]);
//! 3. **Fix directions** — decompose inserted SWAPs and conjugate reversed
//!    CNOTs with Hadamards ([`mapping::fix_directions`]);
//! 4. **Optimize** — cancel inverse pairs and merge single-qubit runs into
//!    `U` gates ([`optimize`]), per the requested [`TranspileOptions::optimization_level`].
//!
//! Repeated transpiles of the same (circuit, options) pair can skip the
//! pipeline entirely via [`cache::transpile_cached`].
//!
//! # Examples
//!
//! Reproducing the paper's Fig. 4 (mapping Fig. 1 to IBM QX4):
//!
//! ```
//! use qukit_terra::circuit::fig1_circuit;
//! use qukit_terra::coupling::CouplingMap;
//! use qukit_terra::transpiler::{transpile, MapperKind, TranspileOptions};
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let mut naive = TranspileOptions::for_device(CouplingMap::ibm_qx4());
//! naive.mapper = MapperKind::Basic;
//! naive.optimization_level = 0;
//! let fig4a = transpile(&fig1_circuit(), &naive)?;
//!
//! let mut smart = TranspileOptions::for_device(CouplingMap::ibm_qx4());
//! smart.mapper = MapperKind::AStar;
//! smart.optimization_level = 2;
//! let fig4b = transpile(&fig1_circuit(), &smart)?;
//!
//! assert!(fig4b.circuit.num_gates() <= fig4a.circuit.num_gates());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod decompose;
pub mod mapping;
pub mod optimize;
pub mod pass;
pub mod property_set;
pub mod synthesis;

pub use cache::{transpile_cached, CacheStats};
pub use mapping::{
    choose_initial_layout, fix_directions, map_circuit, satisfies_coupling, InitialLayout,
    MapperKind, MappingResult,
};
pub use pass::{Pass, PassManager, PassState};
pub use property_set::PropertySet;

use crate::circuit::QuantumCircuit;
use crate::coupling::CouplingMap;
use crate::error::Result;

/// Options controlling [`transpile`].
#[derive(Debug, Clone, Default)]
pub struct TranspileOptions {
    /// Target coupling map; `None` transpiles for an all-to-all simulator.
    pub coupling_map: Option<CouplingMap>,
    /// Initial placement strategy.
    pub initial_layout: InitialLayout,
    /// Routing algorithm.
    pub mapper: MapperKind,
    /// 0 = decompose+map only; 1 = + inverse-pair cancellation;
    /// 2 = + single-qubit resynthesis; 3 = iterate all passes to fixpoint.
    pub optimization_level: u8,
    /// Rewrite all remaining single-qubit gates into `U(θ,φ,λ)` so the
    /// output uses only the hardware-elementary basis.
    pub basis_u: bool,
}

impl TranspileOptions {
    /// Default options targeting a specific device: lookahead mapper,
    /// optimization level 1.
    pub fn for_device(map: CouplingMap) -> Self {
        Self {
            coupling_map: Some(map),
            initial_layout: InitialLayout::Trivial,
            mapper: MapperKind::Lookahead,
            optimization_level: 1,
            basis_u: false,
        }
    }

    /// Options for simulator targets (no coupling constraints) at the given
    /// optimization level.
    pub fn for_simulator(optimization_level: u8) -> Self {
        Self { optimization_level, ..Self::default() }
    }
}

/// The output of [`transpile`].
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The transpiled circuit. When a coupling map was given, its qubits
    /// are *physical* device qubits.
    pub circuit: QuantumCircuit,
    /// Logical→physical placement at circuit start (identity when no
    /// coupling map was given).
    pub initial_layout: Vec<usize>,
    /// Logical→physical placement at circuit end.
    pub final_layout: Vec<usize>,
    /// Number of SWAPs the router inserted.
    pub num_swaps: usize,
}

/// Transpiles `circuit` according to `options`.
///
/// Builds the staged pipeline via [`pass::pipeline_for`] and runs it with
/// a fresh [`PropertySet`]. When [`qukit_obs`] recording is enabled, each
/// pass reports its wall time (`qukit_terra_pass_seconds{pass=...}`) and
/// gate counts, and the run as a whole reports gates/depth before and
/// after plus the number of SWAPs the router inserted.
///
/// # Errors
///
/// Returns an error when the device is too small or disconnected, or any
/// pass fails validation.
pub fn transpile(circuit: &QuantumCircuit, options: &TranspileOptions) -> Result<TranspileResult> {
    transpile_with_properties(circuit, options).map(|(result, _)| result)
}

/// [`transpile`], also returning the pipeline's final [`PropertySet`]
/// (analysis snapshots, per-pass removal counts, router name).
///
/// # Errors
///
/// Same failure modes as [`transpile`].
pub fn transpile_with_properties(
    circuit: &QuantumCircuit,
    options: &TranspileOptions,
) -> Result<(TranspileResult, PropertySet)> {
    let _span =
        qukit_obs::span!("transpile", qubits = circuit.num_qubits(), gates = circuit.num_gates());
    if qukit_obs::enabled() {
        qukit_obs::counter_inc("qukit_terra_transpile_runs_total");
        qukit_obs::counter_add("qukit_terra_gates_in_total", circuit.num_gates() as u64);
        qukit_obs::counter_add("qukit_terra_depth_in_total", circuit.depth() as u64);
    }

    let manager = pass::pipeline_for(options);
    let mut props = PropertySet::new(options.coupling_map.clone());
    let out = manager.run(circuit, &mut props)?;

    let identity: Vec<usize> = (0..circuit.num_qubits()).collect();
    let initial_layout = props.initial_layout.clone().unwrap_or_else(|| identity.clone());
    let final_layout = props.final_layout.clone().unwrap_or(identity);
    let num_swaps = props.num_swaps;

    if qukit_obs::enabled() {
        qukit_obs::counter_add("qukit_terra_gates_out_total", out.num_gates() as u64);
        qukit_obs::counter_add("qukit_terra_depth_out_total", out.depth() as u64);
    }

    Ok((TranspileResult { circuit: out, initial_layout, final_layout, num_swaps }, props))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::gate::Gate;
    use crate::matrix::state_fidelity;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_device_equivalent(
        original: &QuantumCircuit,
        result: &TranspileResult,
        map: &CouplingMap,
    ) {
        let mut rng = StdRng::seed_from_u64(11);
        let input = reference::random_state(original.num_qubits(), &mut rng);
        let expected = reference::evolve(original, &input).unwrap();
        let phys_in = reference::embed_state(&input, &result.initial_layout, map.num_qubits());
        let phys_out = reference::evolve(&result.circuit, &phys_in).unwrap();
        let expected_phys =
            reference::embed_state(&expected, &result.final_layout, map.num_qubits());
        let f = state_fidelity(&phys_out, &expected_phys);
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn full_pipeline_on_fig1_for_qx4() {
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();
        for level in 0..=3 {
            for mapper in [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar] {
                let mut opts = TranspileOptions::for_device(qx4.clone());
                opts.mapper = mapper;
                opts.optimization_level = level;
                let result = transpile(&circ, &opts).unwrap();
                assert!(
                    satisfies_coupling(&result.circuit, &qx4),
                    "level {level} {mapper:?} violates coupling"
                );
                assert_device_equivalent(&circ, &result, &qx4);
            }
        }
    }

    #[test]
    fn optimization_levels_monotonically_shrink_fig1() {
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();
        let mut sizes = Vec::new();
        for level in 0..=3 {
            let mut opts = TranspileOptions::for_device(qx4.clone());
            opts.mapper = MapperKind::Basic;
            opts.optimization_level = level;
            sizes.push(transpile(&circ, &opts).unwrap().circuit.num_gates());
        }
        assert!(sizes[1] <= sizes[0]);
        assert!(sizes[2] <= sizes[1]);
        assert!(sizes[3] <= sizes[2]);
    }

    #[test]
    fn improved_mapping_beats_naive_on_fig1() {
        // The paper's Fig. 4 story: the optimized flow produces a smaller
        // circuit than the naive compile.
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();

        let mut naive = TranspileOptions::for_device(qx4.clone());
        naive.mapper = MapperKind::Basic;
        naive.optimization_level = 0;
        let fig4a = transpile(&circ, &naive).unwrap();

        let mut smart = TranspileOptions::for_device(qx4.clone());
        smart.mapper = MapperKind::AStar;
        smart.optimization_level = 3;
        let fig4b = transpile(&circ, &smart).unwrap();

        assert!(
            fig4b.circuit.num_gates() < fig4a.circuit.num_gates(),
            "optimized {} !< naive {}",
            fig4b.circuit.num_gates(),
            fig4a.circuit.num_gates()
        );
    }

    #[test]
    fn simulator_target_skips_mapping() {
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        let result = transpile(&circ, &TranspileOptions::for_simulator(1)).unwrap();
        assert_eq!(result.num_swaps, 0);
        assert_eq!(result.initial_layout, vec![0, 1, 2]);
        // Toffoli got decomposed.
        assert_eq!(result.circuit.count_ops()["cx"], 6);
        let u1 = reference::unitary(&circ).unwrap();
        let u2 = reference::unitary(&result.circuit).unwrap();
        assert!(u2.phase_equal_to(&u1).is_some());
    }

    #[test]
    fn basis_u_leaves_only_u_and_cx() {
        let circ = fig1_circuit();
        let mut opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
        opts.optimization_level = 2;
        opts.basis_u = true;
        let result = transpile(&circ, &opts).unwrap();
        for inst in result.circuit.instructions() {
            if let Some(g) = inst.as_gate() {
                assert!(matches!(g, Gate::U(..) | Gate::CX), "unexpected {g:?}");
            }
        }
    }

    #[test]
    fn measured_circuits_transpile() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
        let result = transpile(&circ, &opts).unwrap();
        assert_eq!(result.circuit.count_ops()["measure"], 2);
        assert_eq!(result.circuit.num_clbits(), 2);
    }

    #[test]
    fn dense_layout_reduces_swaps_on_star_circuit() {
        // q0 talks to q1..q3: trivial layout on QX4 puts q0 at Q0 (degree 2),
        // dense layout puts it at Q2 (degree 4).
        let mut circ = QuantumCircuit::new(4);
        circ.cx(0, 1).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(0, 3).unwrap();
        circ.cx(0, 1).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(0, 3).unwrap();
        let qx4 = CouplingMap::ibm_qx4();
        let mut trivial = TranspileOptions::for_device(qx4.clone());
        trivial.mapper = MapperKind::AStar;
        let mut dense = trivial.clone();
        dense.initial_layout = InitialLayout::Dense;
        let swaps_trivial = transpile(&circ, &trivial).unwrap().num_swaps;
        let swaps_dense = transpile(&circ, &dense).unwrap().num_swaps;
        assert!(swaps_dense <= swaps_trivial, "dense {swaps_dense} > trivial {swaps_trivial}");
    }
}
