//! Coupling-constrained mapping (qubit routing).
//!
//! This module reproduces the paper's Section V-B: a given circuit must be
//! made to satisfy the CNOT-constraints of a QX architecture by (a) placing
//! logical qubits on physical ones, (b) inserting SWAPs when interacting
//! qubits drift apart, and (c) fixing CNOT directions with Hadamard
//! conjugation. Minimizing the inserted gates is NP-hard [Botea et al.,
//! SoCS'18], so three strategies of increasing quality are provided:
//!
//! * [`MapperKind::Basic`] — the naive strategy of early Qiskit `compile`:
//!   route every CNOT independently along a shortest path (Fig. 4a);
//! * [`MapperKind::Lookahead`] — greedy SWAP selection scored over the
//!   current front layer plus a lookahead window (SABRE-style);
//! * [`MapperKind::AStar`] — per-layer A* search for a minimal SWAP
//!   sequence, after Zulehner-Paler-Wille (TCAD'18) — the "improved
//!   mapping" of Fig. 4b.

use crate::circuit::QuantumCircuit;
use crate::coupling::CouplingMap;
use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::instruction::Instruction;
use crate::layout::Layout;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// The mapping strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapperKind {
    /// Naive shortest-path routing of each CNOT independently.
    Basic,
    /// Greedy front-layer + lookahead-window swap selection.
    #[default]
    Lookahead,
    /// Per-layer A* search for minimal swap sequences.
    AStar,
    /// SABRE (Li-Ding-Xie, ASPLOS'19): decay-weighted front + extended-set
    /// swap scoring, with bidirectional forward/reverse traversals that
    /// refine the initial layout before the final routing pass.
    Sabre,
}

/// Result of mapping a circuit onto a device.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// The mapped circuit over *physical* qubits (width = device size).
    /// Contains [`Gate::Swap`] instructions that still need decomposition
    /// and direction fixing (see [`fix_directions`]).
    pub circuit: QuantumCircuit,
    /// Initial placement: `initial_layout[l]` is the physical home of
    /// logical qubit `l` at circuit start.
    pub initial_layout: Vec<usize>,
    /// Final placement after all inserted SWAPs.
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub num_swaps: usize,
}

/// Initial-placement strategies.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum InitialLayout {
    /// Logical `i` on physical `i`.
    #[default]
    Trivial,
    /// Interaction-degree heuristic: the most-connected logical qubit goes
    /// to the highest-degree physical qubit, its partners to neighbours.
    Dense,
    /// Caller-provided logical→physical table.
    Custom(Vec<usize>),
    /// Calibration-driven placement: prefers physical locations whose
    /// connecting edges (and readout) have the highest fidelity, weighted
    /// by how often each logical pair interacts — the noise-adaptive
    /// layout used with real-device calibration data.
    NoiseAware {
        /// Per-undirected-edge fidelity `((a, b), f)`; missing edges
        /// default to 0.99.
        edge_fidelity: Vec<((usize, usize), f64)>,
        /// Per-qubit readout fidelity; missing entries default to 1.0.
        qubit_fidelity: Vec<f64>,
    },
}

/// Picks an initial layout for `circuit` on `map`.
///
/// # Errors
///
/// Returns an error if the circuit needs more qubits than the device has or
/// a custom layout is invalid.
pub fn choose_initial_layout(
    circuit: &QuantumCircuit,
    map: &CouplingMap,
    strategy: &InitialLayout,
) -> Result<Layout> {
    let n = circuit.num_qubits();
    let m = map.num_qubits();
    if n > m {
        return Err(TerraError::CouplingMap {
            msg: format!("circuit needs {n} qubits but device has only {m}"),
        });
    }
    match strategy {
        InitialLayout::Trivial => Ok(Layout::trivial(n, m)),
        InitialLayout::Custom(table) => {
            if table.len() != n {
                return Err(TerraError::CouplingMap {
                    msg: format!(
                        "custom layout has {} entries, circuit has {n} qubits",
                        table.len()
                    ),
                });
            }
            Layout::from_mapping(table, m)
        }
        InitialLayout::NoiseAware { edge_fidelity, qubit_fidelity } => {
            choose_noise_aware_layout(circuit, map, edge_fidelity, qubit_fidelity)
        }
        InitialLayout::Dense => {
            // Interaction graph: logical-qubit pair weights.
            let mut weight: HashMap<(usize, usize), usize> = HashMap::new();
            let mut degree = vec![0usize; n];
            for inst in circuit.instructions() {
                if inst.op.is_gate() && inst.qubits.len() == 2 {
                    let (a, b) =
                        (inst.qubits[0].min(inst.qubits[1]), inst.qubits[0].max(inst.qubits[1]));
                    *weight.entry((a, b)).or_insert(0) += 1;
                    degree[inst.qubits[0]] += 1;
                    degree[inst.qubits[1]] += 1;
                }
            }
            // Order logical qubits by interaction degree (desc).
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&l| Reverse(degree[l]));
            // Physical qubits by connectivity degree (desc).
            let mut taken = vec![false; m];
            let mut table = vec![usize::MAX; n];
            let phys_degree: Vec<usize> = (0..m).map(|p| map.neighbors(p).len()).collect();
            for &l in &order {
                // Prefer a free neighbour of an already-placed partner.
                let mut best: Option<usize> = None;
                let mut best_score = (usize::MAX, Reverse(0usize));
                for p in 0..m {
                    if taken[p] {
                        continue;
                    }
                    // Sum of distances to already-placed partners, weighted.
                    let mut dist_cost = 0usize;
                    for (&(a, b), &w) in &weight {
                        let partner = if a == l {
                            b
                        } else if b == l {
                            a
                        } else {
                            continue;
                        };
                        if table[partner] != usize::MAX {
                            let d = map.distance(p, table[partner]);
                            if d == usize::MAX {
                                dist_cost = usize::MAX;
                                break;
                            }
                            dist_cost = dist_cost.saturating_add(w * d);
                        }
                    }
                    let score = (dist_cost, Reverse(phys_degree[p]));
                    if score < best_score {
                        best_score = score;
                        best = Some(p);
                    }
                }
                let p = best.ok_or_else(|| TerraError::CouplingMap {
                    msg: "no free physical qubit".to_owned(),
                })?;
                table[l] = p;
                taken[p] = true;
            }
            Layout::from_mapping(&table, m)
        }
    }
}

/// Calibration-driven greedy placement: interaction-weighted sum of
/// negative-log path fidelities, readout fidelity as the tie-breaker.
fn choose_noise_aware_layout(
    circuit: &QuantumCircuit,
    map: &CouplingMap,
    edge_fidelity: &[((usize, usize), f64)],
    qubit_fidelity: &[f64],
) -> Result<Layout> {
    let n = circuit.num_qubits();
    let m = map.num_qubits();
    // Edge costs: -ln(fidelity), defaulting to 0.99.
    let mut edge_cost: HashMap<(usize, usize), f64> = HashMap::new();
    let lookup = |a: usize, b: usize| -> f64 {
        let key = (a.min(b), a.max(b));
        edge_fidelity
            .iter()
            .find(|((x, y), _)| (*x.min(y), *x.max(y)) == key)
            .map(|&(_, f)| f)
            .unwrap_or(0.99)
            .clamp(1e-6, 1.0)
    };
    for (a, b) in map.edges() {
        let key = (a.min(b), a.max(b));
        edge_cost.entry(key).or_insert_with(|| -lookup(a, b).ln());
    }
    // All-pairs min-cost over the undirected graph (Floyd-Warshall; device
    // sizes are small).
    let mut cost = vec![vec![f64::INFINITY; m]; m];
    for (p, row) in cost.iter_mut().enumerate() {
        row[p] = 0.0;
    }
    for (&(a, b), &c) in &edge_cost {
        if c < cost[a][b] {
            cost[a][b] = c;
            cost[b][a] = c;
        }
    }
    for k in 0..m {
        for i in 0..m {
            for j in 0..m {
                let via = cost[i][k] + cost[k][j];
                if via < cost[i][j] {
                    cost[i][j] = via;
                }
            }
        }
    }
    // Interaction weights.
    let mut weight: HashMap<(usize, usize), usize> = HashMap::new();
    let mut degree = vec![0usize; n];
    for inst in circuit.instructions() {
        if inst.op.is_gate() && inst.qubits.len() == 2 {
            let (a, b) = (inst.qubits[0].min(inst.qubits[1]), inst.qubits[0].max(inst.qubits[1]));
            *weight.entry((a, b)).or_insert(0) += 1;
            degree[inst.qubits[0]] += 1;
            degree[inst.qubits[1]] += 1;
        }
    }
    let readout = |p: usize| qubit_fidelity.get(p).copied().unwrap_or(1.0);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&l| Reverse(degree[l]));
    let mut taken = vec![false; m];
    let mut table = vec![usize::MAX; n];
    for &l in &order {
        let mut best: Option<(f64, usize)> = None;
        for p in 0..m {
            if taken[p] {
                continue;
            }
            let mut placement_cost = 0.0f64;
            for (&(a, b), &w) in &weight {
                let partner = if a == l {
                    b
                } else if b == l {
                    a
                } else {
                    continue;
                };
                if table[partner] != usize::MAX {
                    placement_cost += w as f64 * cost[p][table[partner]];
                }
            }
            // Readout quality as a small additive preference.
            placement_cost += -readout(p).clamp(1e-6, 1.0).ln();
            if best.is_none_or(|(c, _)| placement_cost < c) {
                best = Some((placement_cost, p));
            }
        }
        let (_, p) = best
            .ok_or_else(|| TerraError::CouplingMap { msg: "no free physical qubit".to_owned() })?;
        table[l] = p;
        taken[p] = true;
    }
    Layout::from_mapping(&table, m)
}

/// Maps `circuit` (already decomposed to `{1q, CX}` plus measures/resets/
/// barriers) onto the device described by `map`.
///
/// # Errors
///
/// Returns an error when the device is too small, disconnected for the
/// required interactions, or a multi-qubit gate other than CX/SWAP remains.
pub fn map_circuit(
    circuit: &QuantumCircuit,
    map: &CouplingMap,
    kind: MapperKind,
    initial: &InitialLayout,
) -> Result<MappingResult> {
    let mut layout = choose_initial_layout(circuit, map, initial)?;
    if kind == MapperKind::Sabre && matches!(initial, InitialLayout::Trivial | InitialLayout::Dense)
    {
        // Bidirectional refinement only when the caller did not pin the
        // placement (custom and noise-aware layouts are authoritative).
        layout = sabre_refine_layout(circuit, map, layout)?;
    }
    let initial_layout = layout.to_physical_vec();
    let mut ctx = MappingContext::new(circuit, map, layout)?;
    match kind {
        MapperKind::Basic => ctx.run_basic()?,
        MapperKind::Lookahead => ctx.run_lookahead()?,
        MapperKind::AStar => ctx.run_astar()?,
        MapperKind::Sabre => ctx.run_sabre()?,
    }
    Ok(MappingResult {
        final_layout: ctx.layout.to_physical_vec(),
        circuit: ctx.out,
        initial_layout,
        num_swaps: ctx.num_swaps,
    })
}

/// SABRE's bidirectional layout search: route the circuit forward, then
/// route its reverse starting from the forward pass's final layout, and
/// repeat. Each traversal drags the placement towards where the *other*
/// end of the circuit wants its qubits, so after a few rounds the initial
/// layout suits the whole circuit rather than just its first layer. The
/// layout whose forward traversal needed the fewest swaps wins.
fn sabre_refine_layout(
    circuit: &QuantumCircuit,
    map: &CouplingMap,
    seed_layout: Layout,
) -> Result<Layout> {
    const ROUNDS: usize = 3;
    // Reversed gate sequence (measurement/reset/barrier order is irrelevant
    // for placement, so only gates are kept).
    let mut reversed = circuit.clone();
    reversed.clear();
    for inst in circuit.instructions().iter().rev() {
        if inst.op.is_gate() {
            reversed.push(inst.clone())?;
        }
    }

    let route = |source: &QuantumCircuit, layout: Layout| -> Result<(usize, Layout)> {
        let mut ctx = MappingContext::new(source, map, layout)?;
        ctx.run_sabre()?;
        Ok((ctx.num_swaps, ctx.layout))
    };

    let mut layout = seed_layout;
    let mut best: Option<(usize, Layout)> = None;
    for _ in 0..ROUNDS {
        let (cost, after_forward) = route(circuit, layout.clone())?;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, layout.clone()));
        }
        // The reverse traversal's end state becomes the next trial layout.
        let (_, after_reverse) = route(&reversed, after_forward)?;
        layout = after_reverse;
    }
    Ok(best.expect("at least one round ran").1)
}

/// Shared state of the mapping algorithms.
struct MappingContext<'a> {
    source: &'a QuantumCircuit,
    map: &'a CouplingMap,
    dist: Vec<Vec<usize>>,
    layout: Layout,
    out: QuantumCircuit,
    num_swaps: usize,
}

impl<'a> MappingContext<'a> {
    fn new(source: &'a QuantumCircuit, map: &'a CouplingMap, layout: Layout) -> Result<Self> {
        for inst in source.instructions() {
            if inst.op.is_gate() && inst.qubits.len() > 2 {
                return Err(TerraError::Transpile {
                    msg: format!(
                        "mapping requires a decomposed circuit, found {}-qubit gate '{}'",
                        inst.qubits.len(),
                        inst.op.name()
                    ),
                });
            }
        }
        if !map.is_connected() {
            return Err(TerraError::CouplingMap { msg: "coupling map is disconnected".to_owned() });
        }
        // Device-wide quantum register, mirroring the source's clbits.
        let mut out = QuantumCircuit::empty();
        out.add_qreg("q", map.num_qubits())?;
        for creg in source.cregs() {
            out.add_creg(creg.name(), creg.len())?;
        }
        out.set_name(format!("{}_mapped", source.name()));
        Ok(Self { source, map, dist: map.distance_matrix(), layout, out, num_swaps: 0 })
    }

    /// Emits an instruction with logical operands relabeled to physical.
    fn emit_relabel(&mut self, inst: &Instruction) -> Result<()> {
        let mut relabeled = inst.clone();
        for q in &mut relabeled.qubits {
            *q = self.layout.physical(*q).expect("complete layout");
        }
        self.out.push(relabeled)?;
        Ok(())
    }

    /// Emits a SWAP on two physical qubits and updates the layout.
    fn emit_swap(&mut self, p1: usize, p2: usize) -> Result<()> {
        self.out.append(Gate::Swap, &[p1, p2])?;
        self.layout.swap_physical(p1, p2);
        self.num_swaps += 1;
        Ok(())
    }

    fn physical_pair(&self, inst: &Instruction) -> (usize, usize) {
        (
            self.layout.physical(inst.qubits[0]).expect("complete layout"),
            self.layout.physical(inst.qubits[1]).expect("complete layout"),
        )
    }

    fn is_executable(&self, inst: &Instruction) -> bool {
        if inst.qubits.len() < 2 {
            return true;
        }
        let (pc, pt) = self.physical_pair(inst);
        self.map.connected(pc, pt)
    }

    // --- Basic mapper ----------------------------------------------------

    /// Routes every two-qubit gate independently along a shortest path,
    /// moving the control towards the target.
    fn run_basic(&mut self) -> Result<()> {
        for inst in self.source.instructions() {
            if inst.op.is_gate() && inst.qubits.len() == 2 {
                let (pc, pt) = self.physical_pair(inst);
                if !self.map.connected(pc, pt) {
                    let path = self.map.shortest_path(pc, pt).ok_or_else(|| {
                        TerraError::CouplingMap { msg: format!("no path between Q{pc} and Q{pt}") }
                    })?;
                    // Swap the control along the path until adjacent.
                    for w in path.windows(2).take(path.len().saturating_sub(2)) {
                        self.emit_swap(w[0], w[1])?;
                    }
                }
            }
            self.emit_relabel(inst)?;
        }
        Ok(())
    }

    // --- Dependency tracking shared by lookahead and A* -------------------

    /// Builds, per instruction, the count of unexecuted same-wire
    /// predecessors, and the ready queue.
    fn dependency_state(&self) -> DependencyState {
        let insts = self.source.instructions();
        let num_wires = self.source.num_qubits() + self.source.num_clbits();
        let mut last_on_wire: Vec<Option<usize>> = vec![None; num_wires];
        let mut preds: Vec<usize> = vec![0; insts.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); insts.len()];
        for (i, inst) in insts.iter().enumerate() {
            let mut wires: Vec<usize> = inst.qubits.clone();
            for &c in &inst.clbits {
                wires.push(self.source.num_qubits() + c);
            }
            if let Some(cond) = &inst.condition {
                for &c in &cond.clbits {
                    wires.push(self.source.num_qubits() + c);
                }
            }
            wires.sort_unstable();
            wires.dedup();
            for &w in &wires {
                if let Some(p) = last_on_wire[w] {
                    if !succs[p].contains(&i) {
                        succs[p].push(i);
                        preds[i] += 1;
                    }
                }
                last_on_wire[w] = Some(i);
            }
        }
        let ready: VecDeque<usize> = (0..insts.len()).filter(|&i| preds[i] == 0).collect();
        DependencyState { preds, succs, ready, done: vec![false; insts.len()] }
    }

    /// Marks `i` executed, promoting any successors that become ready.
    fn complete(&self, dep: &mut DependencyState, i: usize) {
        dep.done[i] = true;
        for &s in &dep.succs[i].clone() {
            dep.preds[s] -= 1;
            if dep.preds[s] == 0 {
                dep.ready.push_back(s);
            }
        }
    }

    /// Distance cost of a two-qubit gate under an arbitrary layout table.
    fn gate_distance(&self, l2p: &[usize], inst: &Instruction) -> usize {
        let pc = l2p[inst.qubits[0]];
        let pt = l2p[inst.qubits[1]];
        self.dist[pc][pt]
    }

    // --- Lookahead mapper -------------------------------------------------

    fn run_lookahead(&mut self) -> Result<()> {
        const LOOKAHEAD_WINDOW: usize = 20;
        const LOOKAHEAD_WEIGHT: f64 = 0.5;
        let insts = self.source.instructions();
        let mut dep = self.dependency_state();
        let mut last_swap: Option<(usize, usize)> = None;
        let mut stall_counter = 0usize;
        let stall_limit = 4 * self.map.num_qubits() * self.map.num_qubits() + 16;

        loop {
            // Execute everything executable in the ready queue.
            let mut progressed = true;
            while progressed {
                progressed = false;
                let snapshot: Vec<usize> = dep.ready.iter().copied().collect();
                for i in snapshot {
                    if dep.done[i] {
                        continue;
                    }
                    let inst = &insts[i];
                    let executable =
                        !inst.op.is_gate() || inst.qubits.len() < 2 || self.is_executable(inst);
                    if executable {
                        dep.ready.retain(|&x| x != i);
                        self.emit_relabel(inst)?;
                        self.complete(&mut dep, i);
                        progressed = true;
                        last_swap = None;
                        stall_counter = 0;
                    }
                }
            }
            // Collect the blocked front layer.
            let front: Vec<usize> = dep.ready.iter().copied().collect();
            if front.is_empty() {
                break;
            }
            // Lookahead window: next 2q gates in program order not yet done.
            let window: Vec<usize> = (0..insts.len())
                .filter(|&i| {
                    !dep.done[i]
                        && !front.contains(&i)
                        && insts[i].op.is_gate()
                        && insts[i].qubits.len() == 2
                })
                .take(LOOKAHEAD_WINDOW)
                .collect();

            // Candidate swaps: edges touching the physical homes of front
            // gate operands.
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for &i in &front {
                for &l in &insts[i].qubits {
                    let p = self.layout.physical(l).expect("complete layout");
                    for nb in self.map.neighbors(p) {
                        let e = (p.min(nb), p.max(nb));
                        if !candidates.contains(&e) {
                            candidates.push(e);
                        }
                    }
                }
            }
            let l2p = self.layout.to_physical_vec();
            let mut best: Option<((usize, usize), f64)> = None;
            for &(p1, p2) in &candidates {
                if last_swap == Some((p1, p2)) && candidates.len() > 1 {
                    continue; // forbid immediately undoing the last swap
                }
                // Layout after the candidate swap.
                let mut trial = l2p.clone();
                for v in trial.iter_mut() {
                    if *v == p1 {
                        *v = p2;
                    } else if *v == p2 {
                        *v = p1;
                    }
                }
                let front_cost: usize =
                    front.iter().map(|&i| self.gate_distance(&trial, &insts[i])).sum();
                let window_cost: usize =
                    window.iter().map(|&i| self.gate_distance(&trial, &insts[i])).sum();
                let score = front_cost as f64
                    + if window.is_empty() {
                        0.0
                    } else {
                        LOOKAHEAD_WEIGHT * window_cost as f64 / window.len() as f64
                    };
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some(((p1, p2), score));
                }
            }
            stall_counter += 1;
            if stall_counter > stall_limit {
                // Safeguard: route the first blocked gate directly.
                let i = front[0];
                let (pc, pt) = self.physical_pair(&insts[i]);
                let path = self.map.shortest_path(pc, pt).ok_or_else(|| {
                    TerraError::CouplingMap { msg: format!("no path between Q{pc} and Q{pt}") }
                })?;
                for w in path.windows(2).take(path.len().saturating_sub(2)) {
                    self.emit_swap(w[0], w[1])?;
                }
                stall_counter = 0;
                continue;
            }
            let ((p1, p2), _) = best.ok_or_else(|| TerraError::CouplingMap {
                msg: "no candidate swap available".to_owned(),
            })?;
            self.emit_swap(p1, p2)?;
            last_swap = Some((p1, p2));
        }
        Ok(())
    }

    // --- SABRE mapper -------------------------------------------------------

    /// One SABRE routing traversal: decay-weighted scoring over the blocked
    /// front layer plus an extended set of upcoming two-qubit gates.
    ///
    /// Differences from [`Self::run_lookahead`]: front and extended costs
    /// are *averaged* (so a large extended set cannot drown out the front
    /// layer), and each candidate swap's score is scaled by a per-qubit
    /// decay factor that grows every time a qubit participates in a swap —
    /// spreading consecutive swaps across the device instead of ping-
    /// ponging one pair (the ASPLOS'19 heuristic).
    fn run_sabre(&mut self) -> Result<()> {
        const EXTENDED_SIZE: usize = 20;
        const EXTENDED_WEIGHT: f64 = 0.5;
        const DECAY_INCREMENT: f64 = 0.001;
        const DECAY_RESET_INTERVAL: usize = 5;
        let insts = self.source.instructions();
        let mut dep = self.dependency_state();
        let mut decay = vec![1.0f64; self.map.num_qubits()];
        let mut swaps_since_reset = 0usize;
        let mut stall_counter = 0usize;
        let stall_limit = 4 * self.map.num_qubits() * self.map.num_qubits() + 16;

        loop {
            // Drain everything executable.
            let mut progressed = true;
            while progressed {
                progressed = false;
                let snapshot: Vec<usize> = dep.ready.iter().copied().collect();
                for i in snapshot {
                    if dep.done[i] {
                        continue;
                    }
                    let inst = &insts[i];
                    if !inst.op.is_gate() || inst.qubits.len() < 2 || self.is_executable(inst) {
                        dep.ready.retain(|&x| x != i);
                        self.emit_relabel(inst)?;
                        self.complete(&mut dep, i);
                        progressed = true;
                        stall_counter = 0;
                        // A gate executed: the congestion picture changed.
                        decay.iter_mut().for_each(|d| *d = 1.0);
                        swaps_since_reset = 0;
                    }
                }
            }
            let front: Vec<usize> = dep.ready.iter().copied().collect();
            if front.is_empty() {
                break;
            }
            // Extended set: the next 2q gates in program order (an
            // approximation of the dependency-successor closure that keeps
            // scoring deterministic).
            let extended: Vec<usize> = (0..insts.len())
                .filter(|&i| {
                    !dep.done[i]
                        && !front.contains(&i)
                        && insts[i].op.is_gate()
                        && insts[i].qubits.len() == 2
                })
                .take(EXTENDED_SIZE)
                .collect();

            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for &i in &front {
                for &l in &insts[i].qubits {
                    let p = self.layout.physical(l).expect("complete layout");
                    for nb in self.map.neighbors(p) {
                        let e = (p.min(nb), p.max(nb));
                        if !candidates.contains(&e) {
                            candidates.push(e);
                        }
                    }
                }
            }
            let l2p = self.layout.to_physical_vec();
            let mut best: Option<((usize, usize), f64)> = None;
            for &(p1, p2) in &candidates {
                let mut trial = l2p.clone();
                for v in trial.iter_mut() {
                    if *v == p1 {
                        *v = p2;
                    } else if *v == p2 {
                        *v = p1;
                    }
                }
                let front_cost: usize =
                    front.iter().map(|&i| self.gate_distance(&trial, &insts[i])).sum();
                let extended_cost: usize =
                    extended.iter().map(|&i| self.gate_distance(&trial, &insts[i])).sum();
                let mut score = front_cost as f64 / front.len() as f64;
                if !extended.is_empty() {
                    score += EXTENDED_WEIGHT * extended_cost as f64 / extended.len() as f64;
                }
                score *= decay[p1].max(decay[p2]);
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some(((p1, p2), score));
                }
            }
            stall_counter += 1;
            if stall_counter > stall_limit {
                // Safeguard against heuristic livelock: route the first
                // blocked gate along a shortest path directly.
                let i = front[0];
                let (pc, pt) = self.physical_pair(&insts[i]);
                let path = self.map.shortest_path(pc, pt).ok_or_else(|| {
                    TerraError::CouplingMap { msg: format!("no path between Q{pc} and Q{pt}") }
                })?;
                for w in path.windows(2).take(path.len().saturating_sub(2)) {
                    self.emit_swap(w[0], w[1])?;
                }
                stall_counter = 0;
                continue;
            }
            let ((p1, p2), _) = best.ok_or_else(|| TerraError::CouplingMap {
                msg: "no candidate swap available".to_owned(),
            })?;
            self.emit_swap(p1, p2)?;
            decay[p1] += DECAY_INCREMENT;
            decay[p2] += DECAY_INCREMENT;
            swaps_since_reset += 1;
            if swaps_since_reset >= DECAY_RESET_INTERVAL {
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
            }
        }
        Ok(())
    }

    // --- A* mapper ---------------------------------------------------------

    fn run_astar(&mut self) -> Result<()> {
        let insts = self.source.instructions();
        let mut dep = self.dependency_state();
        loop {
            // Emit all executable ready instructions.
            let mut progressed = true;
            while progressed {
                progressed = false;
                let snapshot: Vec<usize> = dep.ready.iter().copied().collect();
                for i in snapshot {
                    if dep.done[i] {
                        continue;
                    }
                    let inst = &insts[i];
                    if !inst.op.is_gate() || inst.qubits.len() < 2 || self.is_executable(inst) {
                        dep.ready.retain(|&x| x != i);
                        self.emit_relabel(inst)?;
                        self.complete(&mut dep, i);
                        progressed = true;
                    }
                }
            }
            // The blocked layer: all ready 2q gates (disjoint qubits by
            // construction — each qubit has at most one ready instruction).
            let layer: Vec<&Instruction> = dep.ready.iter().map(|&i| &insts[i]).collect();
            if layer.is_empty() {
                break;
            }
            let swaps = self.astar_layer(&layer)?;
            for (p1, p2) in swaps {
                self.emit_swap(p1, p2)?;
            }
            // Loop continues; the layer is now executable.
        }
        Ok(())
    }

    /// A* search for a minimal swap sequence making every gate in `layer`
    /// executable. Returns the sequence of physical swaps.
    fn astar_layer(&self, layer: &[&Instruction]) -> Result<Vec<(usize, usize)>> {
        const NODE_LIMIT: usize = 200_000;

        #[derive(Clone, PartialEq, Eq)]
        struct Node {
            l2p: Vec<usize>,
            swaps: Vec<(usize, usize)>,
        }

        let start = self.layout.to_physical_vec();
        let h = |l2p: &[usize]| -> usize {
            // Each swap can shorten at most two gate distances by one:
            // sum(dist - 1 over unsatisfied gates) / 2, rounded up, is an
            // admissible heuristic for swap count.
            let total: usize =
                layer.iter().map(|inst| self.gate_distance(l2p, inst).saturating_sub(1)).sum();
            total.div_ceil(2)
        };
        let satisfied =
            |l2p: &[usize]| -> bool { layer.iter().all(|inst| self.gate_distance(l2p, inst) == 1) };
        if satisfied(&start) {
            return Ok(Vec::new());
        }

        // Undirected edge list once.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (c, t) in self.map.edges() {
            let e = (c.min(t), c.max(t));
            if !edges.contains(&e) {
                edges.push(e);
            }
        }

        let mut heap: BinaryHeap<(Reverse<usize>, Reverse<usize>, usize)> = BinaryHeap::new();
        let mut nodes: Vec<Node> = vec![Node { l2p: start.clone(), swaps: Vec::new() }];
        let mut best_g: HashMap<Vec<usize>, usize> = HashMap::new();
        best_g.insert(start.clone(), 0);
        heap.push((Reverse(h(&start)), Reverse(0), 0));
        let mut explored = 0usize;

        while let Some((_, Reverse(g), idx)) = heap.pop() {
            explored += 1;
            if explored > NODE_LIMIT {
                break;
            }
            let node = nodes[idx].clone();
            if satisfied(&node.l2p) {
                return Ok(node.swaps);
            }
            if best_g.get(&node.l2p).copied().unwrap_or(usize::MAX) < g {
                continue; // stale entry
            }
            // Expand: swaps on edges touching a layer-relevant qubit.
            for &(p1, p2) in &edges {
                let relevant = layer.iter().any(|inst| {
                    inst.qubits.iter().any(|&l| node.l2p[l] == p1 || node.l2p[l] == p2)
                });
                if !relevant {
                    continue;
                }
                let mut next = node.l2p.clone();
                for v in next.iter_mut() {
                    if *v == p1 {
                        *v = p2;
                    } else if *v == p2 {
                        *v = p1;
                    }
                }
                let ng = g + 1;
                if best_g.get(&next).copied().unwrap_or(usize::MAX) <= ng {
                    continue;
                }
                best_g.insert(next.clone(), ng);
                let mut swaps = node.swaps.clone();
                swaps.push((p1, p2));
                let f = ng + h(&next);
                nodes.push(Node { l2p: next, swaps });
                heap.push((Reverse(f), Reverse(ng), nodes.len() - 1));
            }
        }
        // Node limit hit — fall back to routing the first gate directly.
        let inst = layer[0];
        let pc = start[inst.qubits[0]];
        let pt = start[inst.qubits[1]];
        let path = self
            .map
            .shortest_path(pc, pt)
            .ok_or_else(|| TerraError::CouplingMap { msg: format!("no path Q{pc}->Q{pt}") })?;
        Ok(path.windows(2).take(path.len().saturating_sub(2)).map(|w| (w[0], w[1])).collect())
    }
}

struct DependencyState {
    preds: Vec<usize>,
    succs: Vec<Vec<usize>>,
    ready: VecDeque<usize>,
    done: Vec<bool>,
}

/// Decomposes the SWAP gates a mapper inserted into CNOTs and rewrites every
/// CNOT that violates the coupling direction using Hadamard conjugation
/// (`CX(c,t) = (H⊗H) · CX(t,c) · (H⊗H)`), exactly the transformation shown
/// in the paper's Fig. 4a.
///
/// # Errors
///
/// Returns an error if a CNOT acts on non-adjacent physical qubits (the
/// mapper must have been run first).
pub fn fix_directions(circuit: &QuantumCircuit, map: &CouplingMap) -> Result<QuantumCircuit> {
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    for inst in circuit.instructions() {
        match inst.as_gate() {
            Some(Gate::Swap) => {
                let (a, b) = (inst.qubits[0], inst.qubits[1]);
                // SWAP = CX(a,b) CX(b,a) CX(a,b); each CX direction-fixed.
                for (c, t) in [(a, b), (b, a), (a, b)] {
                    push_cx_fixed(&mut out, map, c, t, inst.condition.clone())?;
                }
            }
            Some(Gate::CX) => {
                push_cx_fixed(
                    &mut out,
                    map,
                    inst.qubits[0],
                    inst.qubits[1],
                    inst.condition.clone(),
                )?;
            }
            Some(g) if g.num_qubits() > 1 => {
                return Err(TerraError::Transpile {
                    msg: format!("direction pass found undirected multi-qubit gate '{}'", g.name()),
                });
            }
            _ => {
                out.push(inst.clone())?;
            }
        }
    }
    Ok(out)
}

fn push_cx_fixed(
    out: &mut QuantumCircuit,
    map: &CouplingMap,
    c: usize,
    t: usize,
    condition: Option<crate::instruction::Condition>,
) -> Result<()> {
    let mut push = |gate: Gate, qubits: Vec<usize>| -> Result<()> {
        let mut inst = Instruction::gate(gate, qubits);
        inst.condition = condition.clone();
        out.push(inst)?;
        Ok(())
    };
    if map.has_edge(c, t) {
        push(Gate::CX, vec![c, t])
    } else if map.has_edge(t, c) {
        push(Gate::H, vec![c])?;
        push(Gate::H, vec![t])?;
        push(Gate::CX, vec![t, c])?;
        push(Gate::H, vec![c])?;
        push(Gate::H, vec![t])
    } else {
        Err(TerraError::CouplingMap {
            msg: format!("CNOT on non-adjacent physical qubits Q{c}, Q{t}"),
        })
    }
}

/// Checks that every CNOT in `circuit` satisfies the device's directed
/// CNOT-constraints and that no other multi-qubit gates remain — the
/// acceptance test for a fully mapped circuit.
pub fn satisfies_coupling(circuit: &QuantumCircuit, map: &CouplingMap) -> bool {
    circuit.instructions().iter().all(|inst| match inst.as_gate() {
        Some(Gate::CX) => map.has_edge(inst.qubits[0], inst.qubits[1]),
        Some(g) => g.num_qubits() == 1,
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::instruction::Operation;
    use crate::matrix::state_fidelity;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// End-to-end semantic check: embedding the logical input under the
    /// initial layout, running the mapped circuit, must equal the original
    /// output embedded under the final layout.
    fn assert_mapping_equivalent(circuit: &QuantumCircuit, map: &CouplingMap, kind: MapperKind) {
        let result = map_circuit(circuit, map, kind, &InitialLayout::Trivial).unwrap();
        let fixed = fix_directions(&result.circuit, map).unwrap();
        assert!(satisfies_coupling(&fixed, map), "{kind:?} violates coupling");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            let input = reference::random_state(circuit.num_qubits(), &mut rng);
            let expected_logical = reference::evolve(circuit, &input).unwrap();
            let phys_in = reference::embed_state(&input, &result.initial_layout, map.num_qubits());
            let phys_out = reference::evolve(&fixed, &phys_in).unwrap();
            let expected_phys =
                reference::embed_state(&expected_logical, &result.final_layout, map.num_qubits());
            let f = state_fidelity(&phys_out, &expected_phys);
            assert!(f > 1.0 - 1e-9, "{kind:?} fidelity {f}");
        }
    }

    #[test]
    fn fig1_on_qx4_all_mappers_equivalent() {
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();
        for kind in [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar, MapperKind::Sabre]
        {
            assert_mapping_equivalent(&circ, &qx4, kind);
        }
    }

    #[test]
    fn astar_never_needs_more_swaps_than_basic_on_fig1() {
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();
        let basic = map_circuit(&circ, &qx4, MapperKind::Basic, &InitialLayout::Trivial).unwrap();
        let astar = map_circuit(&circ, &qx4, MapperKind::AStar, &InitialLayout::Trivial).unwrap();
        assert!(
            astar.num_swaps <= basic.num_swaps,
            "A* used {} swaps, basic used {}",
            astar.num_swaps,
            basic.num_swaps
        );
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(1, 0).unwrap();
        let qx4 = CouplingMap::ibm_qx4();
        for kind in [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar, MapperKind::Sabre]
        {
            let r = map_circuit(&circ, &qx4, kind, &InitialLayout::Trivial).unwrap();
            assert_eq!(r.num_swaps, 0, "{kind:?}");
            assert_eq!(r.initial_layout, r.final_layout);
        }
    }

    #[test]
    fn direction_fix_adds_hadamards() {
        // cx q0,q1 on QX4: only Q1->Q0 exists, so H conjugation is needed.
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        let qx4 = CouplingMap::ibm_qx4();
        let r = map_circuit(&circ, &qx4, MapperKind::Basic, &InitialLayout::Trivial).unwrap();
        let fixed = fix_directions(&r.circuit, &qx4).unwrap();
        assert_eq!(fixed.count_ops()["h"], 4);
        assert_eq!(fixed.count_ops()["cx"], 1);
        assert!(satisfies_coupling(&fixed, &qx4));
    }

    #[test]
    fn swap_decomposition_respects_directions() {
        // Force a swap on QX4 between distance-2 qubits.
        let mut circ = QuantumCircuit::new(5);
        circ.cx(0, 3).unwrap();
        let qx4 = CouplingMap::ibm_qx4();
        let r = map_circuit(&circ, &qx4, MapperKind::Basic, &InitialLayout::Trivial).unwrap();
        assert!(r.num_swaps >= 1);
        let fixed = fix_directions(&r.circuit, &qx4).unwrap();
        assert!(satisfies_coupling(&fixed, &qx4));
    }

    #[test]
    fn measurements_are_relabeled_to_final_positions() {
        let mut circ = QuantumCircuit::with_size(3, 3);
        circ.h(0).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(2, 1).unwrap();
        for q in 0..3 {
            circ.measure(q, q).unwrap();
        }
        let line = CouplingMap::line(3);
        let r = map_circuit(&circ, &line, MapperKind::Lookahead, &InitialLayout::Trivial).unwrap();
        // Every measurement's qubit must be the physical home of its logical
        // qubit at measure time (final layout, since measures come last).
        for inst in r.circuit.instructions() {
            if matches!(inst.op, Operation::Measure) {
                let logical = inst.clbits[0];
                assert_eq!(inst.qubits[0], r.final_layout[logical]);
            }
        }
    }

    #[test]
    fn random_circuits_stay_equivalent_on_line_and_qx5() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..4 {
            let n = 4;
            let mut circ = QuantumCircuit::new(n);
            for _ in 0..12 {
                match rng.gen_range(0..3) {
                    0 => {
                        circ.h(rng.gen_range(0..n)).unwrap();
                    }
                    1 => {
                        circ.t(rng.gen_range(0..n)).unwrap();
                    }
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        circ.cx(a, b).unwrap();
                    }
                }
            }
            let map = if trial % 2 == 0 { CouplingMap::line(n) } else { CouplingMap::ibm_qx5() };
            for kind in
                [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar, MapperKind::Sabre]
            {
                assert_mapping_equivalent(&circ, &map, kind);
            }
        }
    }

    #[test]
    fn dense_layout_prefers_connected_regions() {
        // Star circuit: q0 interacts with everyone; dense layout should put
        // q0 on the best-connected physical qubit of QX4 (Q2, degree 4).
        let mut circ = QuantumCircuit::new(4);
        circ.cx(0, 1).unwrap();
        circ.cx(0, 2).unwrap();
        circ.cx(0, 3).unwrap();
        let layout =
            choose_initial_layout(&circ, &CouplingMap::ibm_qx4(), &InitialLayout::Dense).unwrap();
        assert_eq!(layout.physical(0), Some(2));
    }

    #[test]
    fn noise_aware_layout_avoids_bad_edges() {
        // Ring of 4 with one terrible edge (0,1): a Bell circuit must land
        // on any other edge.
        let ring = CouplingMap::ring(4);
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        let strategy = InitialLayout::NoiseAware {
            edge_fidelity: vec![((0, 1), 0.5), ((1, 2), 0.99), ((2, 3), 0.99), ((3, 0), 0.99)],
            qubit_fidelity: vec![],
        };
        let layout = choose_initial_layout(&circ, &ring, &strategy).unwrap();
        let (p0, p1) = (layout.physical(0).unwrap(), layout.physical(1).unwrap());
        let pair = (p0.min(p1), p0.max(p1));
        assert_ne!(pair, (0, 1), "must avoid the bad edge, got {pair:?}");
        assert!(ring.connected(p0, p1), "partners should still be adjacent");
    }

    #[test]
    fn noise_aware_layout_prefers_good_readout() {
        // Single-qubit circuit: placement driven purely by readout quality.
        let line = CouplingMap::line(3);
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        let strategy = InitialLayout::NoiseAware {
            edge_fidelity: vec![],
            qubit_fidelity: vec![0.80, 0.99, 0.90],
        };
        let layout = choose_initial_layout(&circ, &line, &strategy).unwrap();
        assert_eq!(layout.physical(0), Some(1), "best-readout qubit wins");
    }

    #[test]
    fn custom_layout_is_respected_and_validated() {
        let circ = fig1_circuit();
        let qx4 = CouplingMap::ibm_qx4();
        let r = map_circuit(
            &circ,
            &qx4,
            MapperKind::Lookahead,
            &InitialLayout::Custom(vec![4, 3, 2, 1]),
        )
        .unwrap();
        assert_eq!(r.initial_layout, vec![4, 3, 2, 1]);
        assert!(
            choose_initial_layout(&circ, &qx4, &InitialLayout::Custom(vec![0, 0, 1, 2])).is_err()
        );
        assert!(choose_initial_layout(&circ, &qx4, &InitialLayout::Custom(vec![0])).is_err());
    }

    #[test]
    fn too_large_circuit_is_rejected() {
        let circ = QuantumCircuit::new(6);
        let qx4 = CouplingMap::ibm_qx4();
        assert!(map_circuit(&circ, &qx4, MapperKind::Basic, &InitialLayout::Trivial).is_err());
    }

    #[test]
    fn unmapped_nonadjacent_cx_fails_direction_pass() {
        let mut circ = QuantumCircuit::new(5);
        circ.cx(0, 3).unwrap();
        assert!(fix_directions(&circ, &CouplingMap::ibm_qx4()).is_err());
    }

    #[test]
    fn three_qubit_gate_rejected_by_mapper() {
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        let err =
            map_circuit(&circ, &CouplingMap::line(3), MapperKind::Basic, &InitialLayout::Trivial)
                .unwrap_err();
        assert!(err.to_string().contains("decomposed"));
    }
}
