//! KAK (Cartan) decomposition of two-qubit unitaries and the 3-CX
//! synthesis circuit built on it.
//!
//! Any `U ∈ U(4)` factors as
//!
//! ```text
//! U = e^{iφ} (k1l ⊗ k1r) · exp(i(a·XX + b·YY + c·ZZ)) · (k2l ⊗ k2r)
//! ```
//!
//! with single-qubit `k*` factors (the ⊗-left factor acts on qubit 1, the
//! high bit in our little-endian convention). The interaction part is
//! found in the *magic basis*, where `SU(2)⊗SU(2)` becomes `SO(4)` and
//! `XX/YY/ZZ` become diagonal: `M² = UᵀU` (of the magic-basis image) is
//! complex symmetric, so its real and imaginary parts are commuting real
//! symmetric matrices that one orthogonal matrix diagonalizes
//! simultaneously. The eigen-phases are an exact linear function of
//! `(a, b, c)` plus a global phase — the 4×4 sign matrix is orthogonal,
//! so the system inverts exactly regardless of branch choices.
//!
//! [`synthesize_2q`] then emits a circuit with **at most 3 CX gates** by
//! decomposing `U·SWAP` instead of `U` and folding the trailing SWAP into
//! the canonical circuit: with `K = (X+Y)/√2`,
//!
//! ```text
//! exp(i(aXX+bYY+cZZ))·SWAP = (K on q1) · V(2c, −2b, −2a) · (K† on q0)
//! ```
//!
//! where `V(α,β,γ)` is the three-CX core
//! `CX(1→0) → Rz(α)₀, Ry(β)₁ → CX(0→1) → Ry(γ)₁ → CX(1→0)`
//! (time order), which equals
//! `exp(−i(α·ZZ + β·X₁Y₀ + γ·Y₁X₀)/2)·SWAP` by Pauli conjugation
//! through the CNOTs.

use super::linalg;
use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::transpiler::decompose::zyz_decompose;

/// The factors of a KAK decomposition; see the module docs for the exact
/// reconstruction formula.
#[derive(Debug, Clone)]
pub struct KakDecomposition {
    /// Left (post-circuit) factor on qubit 1.
    pub k1l: Matrix,
    /// Left factor on qubit 0.
    pub k1r: Matrix,
    /// Right (pre-circuit) factor on qubit 1.
    pub k2l: Matrix,
    /// Right factor on qubit 0.
    pub k2r: Matrix,
    /// Canonical XX interaction coefficient.
    pub a: f64,
    /// Canonical YY interaction coefficient.
    pub b: f64,
    /// Canonical ZZ interaction coefficient.
    pub c: f64,
    /// Global phase φ.
    pub phase: f64,
}

fn pauli_x() -> Matrix {
    Gate::X.matrix()
}

fn pauli_y() -> Matrix {
    Gate::Y.matrix()
}

fn pauli_z() -> Matrix {
    Gate::Z.matrix()
}

/// The magic basis: columns are the Bell-like states in which
/// `SU(2)⊗SU(2)` acts as `SO(4)`.
fn magic_basis() -> Matrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let o = Complex::ZERO;
    let r = Complex::new(s, 0.0);
    let i = Complex::new(0.0, s);
    Matrix::from_vec(
        4,
        4,
        vec![
            r, o, o, i, //
            o, i, r, o, //
            o, i, -r, o, //
            r, o, o, -i,
        ],
    )
}

impl KakDecomposition {
    /// Rebuilds the 4×4 unitary from the factors (used by the planted-bug
    /// self-test and for internal validation).
    pub fn reconstruct(&self) -> Matrix {
        let xx = pauli_x().kron(&pauli_x());
        let yy = pauli_y().kron(&pauli_y());
        let zz = pauli_z().kron(&pauli_z());
        // exp(i(aXX+bYY+cZZ)) via the magic basis, where all three terms
        // are diagonal.
        let m = magic_basis();
        let dx = diag_signs(&m, &xx);
        let dy = diag_signs(&m, &yy);
        let dz = diag_signs(&m, &zz);
        let mut d = Matrix::zeros(4, 4);
        for j in 0..4 {
            let theta = self.a * dx[j] + self.b * dy[j] + self.c * dz[j];
            d[(j, j)] = Complex::cis(theta);
        }
        let can = m.matmul(&d).matmul(&m.dagger());
        self.k1l
            .kron(&self.k1r)
            .matmul(&can)
            .matmul(&self.k2l.kron(&self.k2r))
            .scale(Complex::cis(self.phase))
    }
}

/// Diagonal of `m† · p · m`, which for Pauli⊗Pauli `p` in the magic basis
/// is a ±1 sign vector. Computed numerically so the code is self-correct
/// with respect to basis-ordering conventions.
fn diag_signs(m: &Matrix, p: &Matrix) -> [f64; 4] {
    let t = m.dagger().matmul(p).matmul(m);
    let mut out = [0.0; 4];
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = t[(j, j)].re;
    }
    out
}

/// Splits a 4×4 tensor-product unitary `k ≈ e^{iφ}(A ⊗ B)` into its
/// det-1 single-qubit factors and the residual phase.
///
/// # Errors
///
/// Fails if `k` is not (numerically) a tensor product.
pub fn decompose_tensor_product(k: &Matrix) -> Result<(Matrix, Matrix, f64)> {
    // kron(A, B)[2a+c][2b+d] = A[a][b]·B[c][d]; anchor on the
    // largest-modulus entry so the divisions are well conditioned.
    let (mut best, mut best_idx) = (0.0f64, (0usize, 0usize));
    for r in 0..4 {
        for cidx in 0..4 {
            let n = k[(r, cidx)].norm_sqr();
            if n > best {
                best = n;
                best_idx = (r, cidx);
            }
        }
    }
    let a0 = best_idx.0 / 2;
    let b0 = best_idx.1 / 2;

    let mut b_raw = Matrix::zeros(2, 2);
    for c in 0..2 {
        for d in 0..2 {
            b_raw[(c, d)] = k[(2 * a0 + c, 2 * b0 + d)];
        }
    }
    let det_b = b_raw[(0, 0)] * b_raw[(1, 1)] - b_raw[(0, 1)] * b_raw[(1, 0)];
    if det_b.is_approx_zero() {
        return Err(TerraError::Transpile {
            msg: "tensor-product factor has singular block".to_owned(),
        });
    }
    let b_su = b_raw.scale(det_b.sqrt().recip());

    // Anchor A on the largest entry of B.
    let (mut bbest, mut banchor) = (0.0f64, (0usize, 0usize));
    for c in 0..2 {
        for d in 0..2 {
            let n = b_su[(c, d)].norm_sqr();
            if n > bbest {
                bbest = n;
                banchor = (c, d);
            }
        }
    }
    let (c1, d1) = banchor;
    let mut a_raw = Matrix::zeros(2, 2);
    let inv = b_su[(c1, d1)].recip();
    for a in 0..2 {
        for b in 0..2 {
            a_raw[(a, b)] = k[(2 * a + c1, 2 * b + d1)] * inv;
        }
    }
    let det_a = a_raw[(0, 0)] * a_raw[(1, 1)] - a_raw[(0, 1)] * a_raw[(1, 0)];
    if det_a.is_approx_zero() {
        return Err(TerraError::Transpile {
            msg: "tensor-product factor has singular block".to_owned(),
        });
    }
    let a_su = a_raw.scale(det_a.sqrt().recip());

    let phase = k.phase_equal_to(&a_su.kron(&b_su)).ok_or_else(|| TerraError::Transpile {
        msg: "matrix is not a tensor product of single-qubit unitaries".to_owned(),
    })?;
    Ok((a_su, b_su, phase))
}

/// KAK-decomposes a 4×4 unitary. See the module docs for the algorithm.
///
/// # Errors
///
/// Fails if `u` is not 4×4 or not unitary.
pub fn kak_decompose(u: &Matrix) -> Result<KakDecomposition> {
    if u.rows() != 4 || u.cols() != 4 {
        return Err(TerraError::Transpile { msg: "KAK requires a 4x4 matrix".to_owned() });
    }
    if !u.is_unitary_eps(1e-9) {
        return Err(TerraError::Transpile { msg: "KAK requires a unitary matrix".to_owned() });
    }

    // Normalize to SU(4), remembering the phase.
    let det = linalg::determinant(u);
    let phase0 = det.arg() / 4.0;
    let u_su = u.scale(Complex::cis(-phase0));

    let m = magic_basis();
    let up = m.dagger().matmul(&u_su).matmul(&m);
    let m2 = up.transpose().matmul(&up);

    // m2 is complex symmetric unitary: Re and Im commute, one real
    // orthogonal p diagonalizes both.
    let re = linalg::real_part(&m2);
    let mut im = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            im[(i, j)] = Complex::new(m2[(i, j)].im, 0.0);
        }
    }
    let mut p = linalg::simultaneous_diag_real(&re, &im);
    if linalg::det_sign_real(&p) < 0.0 {
        for row in 0..4 {
            p[(row, 0)] = -p[(row, 0)];
        }
    }

    // Eigen-phases of m2: λ_j = p_jᵀ·m2·p_j = e^{2iθ_j}.
    let m2p = m2.matmul(&p);
    let mut thetas = [0.0f64; 4];
    for (j, theta) in thetas.iter_mut().enumerate() {
        let mut lambda = Complex::ZERO;
        for row in 0..4 {
            lambda += p[(row, j)] * m2p[(row, j)];
        }
        *theta = lambda.arg() / 2.0;
    }

    // q1 = up·p·D⁻¹ is automatically real orthogonal (complex orthogonal
    // and unitary at once); fix det = +1 by shifting θ_0 by π, which
    // negates q1's first column while leaving λ_0 = e^{2iθ_0} intact.
    let build_q1 = |thetas: &[f64; 4]| {
        let mut d_inv = Matrix::zeros(4, 4);
        for (j, &theta) in thetas.iter().enumerate() {
            d_inv[(j, j)] = Complex::cis(-theta);
        }
        up.matmul(&p).matmul(&d_inv)
    };
    let mut q1 = build_q1(&thetas);
    if linalg::det_sign_real(&q1) < 0.0 {
        thetas[0] += std::f64::consts::PI;
        q1 = build_q1(&thetas);
    }
    let imag_mass: f64 =
        (0..4).flat_map(|i| (0..4).map(move |j| (i, j))).map(|(i, j)| q1[(i, j)].im.abs()).sum();
    if imag_mass > 1e-7 {
        return Err(TerraError::Transpile {
            msg: format!("KAK inner factor not real (residual {imag_mass:.2e})"),
        });
    }
    let q1 = linalg::real_part(&q1);

    // Back out of the magic basis; both factors are SU(2)⊗SU(2).
    let k1 = m.matmul(&q1).matmul(&m.dagger());
    let k2 = m.matmul(&p.transpose()).matmul(&m.dagger());
    let (k1l, k1r, ph1) = decompose_tensor_product(&k1)?;
    let (k2l, k2r, ph2) = decompose_tensor_product(&k2)?;

    // θ_j = a·sx_j + b·sy_j + c·sz_j + t: the sign vectors and the ones
    // vector form an orthogonal 4×4 system (each column has norm² = 4),
    // so the solve is exact for any branch choice.
    let sx = diag_signs(&m, &pauli_x().kron(&pauli_x()));
    let sy = diag_signs(&m, &pauli_y().kron(&pauli_y()));
    let sz = diag_signs(&m, &pauli_z().kron(&pauli_z()));
    let dot = |s: &[f64; 4]| thetas.iter().zip(s).map(|(t, sj)| t * sj).sum::<f64>() / 4.0;
    let a = dot(&sx);
    let b = dot(&sy);
    let c = dot(&sz);
    let t = thetas.iter().sum::<f64>() / 4.0;

    Ok(KakDecomposition { k1l, k1r, k2l, k2r, a, b, c, phase: phase0 + t + ph1 + ph2 })
}

/// Appends an arbitrary single-qubit unitary as one `U(θ,φ,λ)` gate,
/// folding its residual phase into the circuit's global phase.
pub(crate) fn append_1q(circuit: &mut QuantumCircuit, matrix: &Matrix, qubit: usize) -> Result<()> {
    let (theta, phi, lam, alpha) = zyz_decompose(matrix);
    circuit.u(theta, phi, lam, qubit)?;
    circuit.add_global_phase(alpha);
    Ok(())
}

/// The Clifford `K = (X+Y)/√2` used to rotate the folded-SWAP canonical
/// frame back onto XX/YY/ZZ.
fn k_clifford() -> Matrix {
    pauli_x().add(&pauli_y()).scale(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0))
}

/// Synthesizes an arbitrary two-qubit unitary over `{U, CX}` using **at
/// most 3 CX gates**, exact to numerical precision including global
/// phase.
///
/// The SWAP that a naive alternating-CX canonical circuit would need is
/// folded away by KAK-decomposing `U·SWAP` (see module docs), so *every*
/// input costs exactly 3 CX — within the proven optimal worst case.
///
/// # Errors
///
/// Fails if `u` is not a 4×4 unitary.
pub fn synthesize_2q(u: &Matrix) -> Result<QuantumCircuit> {
    let kak = kak_decompose(&u.matmul(&Gate::Swap.matrix()))?;
    let kc = k_clifford();

    // U = e^{iφ}((k1l·K)⊗k1r) · V(2c,−2b,−2a) · (k2r ⊗ (K·k2l)):
    // note the right-hand factors swap qubits (the folded SWAP).
    let (alpha, beta, gamma) = (2.0 * kak.c, -2.0 * kak.b, -2.0 * kak.a);
    let mut circuit = QuantumCircuit::new(2);
    circuit.add_global_phase(kak.phase);

    append_1q(&mut circuit, &kc.matmul(&kak.k2l), 0)?;
    append_1q(&mut circuit, &kak.k2r, 1)?;
    circuit.cx(1, 0)?;
    circuit.rz(alpha, 0)?;
    circuit.ry(beta, 1)?;
    circuit.cx(0, 1)?;
    circuit.ry(gamma, 1)?;
    circuit.cx(1, 0)?;
    append_1q(&mut circuit, &kak.k1r, 0)?;
    append_1q(&mut circuit, &kak.k1l.matmul(&kc), 1)?;
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                worst = worst.max((a[(i, j)] - b[(i, j)]).norm());
            }
        }
        worst
    }

    #[test]
    fn magic_basis_is_unitary_and_orthogonalizes_local_gates() {
        let m = magic_basis();
        assert!(m.is_unitary());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let a = linalg::random_unitary(2, &mut rng);
            let b = linalg::random_unitary(2, &mut rng);
            // Scale to SU(2) so the image is real orthogonal exactly.
            let da = (a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)]).sqrt().recip();
            let db = (b[(0, 0)] * b[(1, 1)] - b[(0, 1)] * b[(1, 0)]).sqrt().recip();
            let local = a.scale(da).kron(&b.scale(db));
            let img = m.dagger().matmul(&local).matmul(&m);
            let imag: f64 = (0..4)
                .flat_map(|i| (0..4).map(move |j| (i, j)))
                .map(|(i, j)| img[(i, j)].im.abs())
                .sum();
            assert!(imag < 1e-12, "image not real: {imag}");
        }
    }

    #[test]
    fn pauli_signs_are_orthogonal_sign_vectors() {
        let m = magic_basis();
        let sx = diag_signs(&m, &pauli_x().kron(&pauli_x()));
        let sy = diag_signs(&m, &pauli_y().kron(&pauli_y()));
        let sz = diag_signs(&m, &pauli_z().kron(&pauli_z()));
        for s in [&sx, &sy, &sz] {
            assert!(s.iter().all(|v| (v.abs() - 1.0).abs() < 1e-12), "not ±1: {s:?}");
            assert!(s.iter().sum::<f64>().abs() < 1e-12, "not traceless: {s:?}");
        }
        for (p, q) in [(&sx, &sy), (&sx, &sz), (&sy, &sz)] {
            let dot: f64 = p.iter().zip(q.iter()).map(|(x, y)| x * y).sum();
            assert!(dot.abs() < 1e-12);
        }
    }

    #[test]
    fn kak_reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(4);
        for case in 0..20 {
            let u = linalg::random_unitary(4, &mut rng);
            let kak = kak_decompose(&u).unwrap();
            let err = max_abs_diff(&u, &kak.reconstruct());
            assert!(err < 1e-10, "case {case}: reconstruction error {err:.2e}");
        }
    }

    #[test]
    fn kak_handles_clifford_corner_cases() {
        for (name, gate) in [("cx", Gate::CX), ("swap", Gate::Swap), ("cz", Gate::CZ)] {
            let u = gate.matrix();
            let kak = kak_decompose(&u).unwrap();
            let err = max_abs_diff(&u, &kak.reconstruct());
            assert!(err < 1e-10, "{name}: reconstruction error {err:.2e}");
        }
        let id = Matrix::identity(4);
        let kak = kak_decompose(&id).unwrap();
        assert!(max_abs_diff(&id, &kak.reconstruct()) < 1e-10);
    }

    #[test]
    fn synthesized_circuit_matches_unitary_with_three_cx() {
        let mut rng = StdRng::seed_from_u64(5);
        for case in 0..20 {
            let u = linalg::random_unitary(4, &mut rng);
            let circ = synthesize_2q(&u).unwrap();
            let cx_count = circ.count_ops().get("cx").copied().unwrap_or(0);
            assert!(cx_count <= 3, "case {case}: {cx_count} CX");
            let rebuilt = reference::unitary(&circ).unwrap();
            let err = max_abs_diff(&u, &rebuilt);
            assert!(err < 1e-10, "case {case}: synthesis error {err:.2e}");
        }
    }

    #[test]
    fn synthesis_is_exact_on_named_gates() {
        for gate in [Gate::CX, Gate::CZ, Gate::Swap, Gate::Rxx(0.7), Gate::Rzz(1.3)] {
            let u = gate.matrix();
            let circ = synthesize_2q(&u).unwrap();
            let rebuilt = reference::unitary(&circ).unwrap();
            assert!(
                max_abs_diff(&u, &rebuilt) < 1e-10,
                "{:?}: error {:.2e}",
                gate,
                max_abs_diff(&u, &rebuilt)
            );
        }
    }

    #[test]
    fn tensor_product_factorization_round_trips() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let a = linalg::random_unitary(2, &mut rng);
            let b = linalg::random_unitary(2, &mut rng);
            let k = a.kron(&b);
            let (fa, fb, phase) = decompose_tensor_product(&k).unwrap();
            let rebuilt = fa.kron(&fb).scale(Complex::cis(phase));
            assert!(max_abs_diff(&k, &rebuilt) < 1e-12);
        }
        // A genuinely entangling gate is *not* a tensor product.
        assert!(decompose_tensor_product(&Gate::CX.matrix()).is_err());
    }

    #[test]
    fn rejects_non_unitary_input() {
        let mut bad = Matrix::identity(4);
        bad[(0, 0)] = Complex::new(2.0, 0.0);
        assert!(kak_decompose(&bad).is_err());
        assert!(synthesize_2q(&bad).is_err());
    }
}
