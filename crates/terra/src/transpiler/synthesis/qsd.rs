//! Quantum Shannon Decomposition: synthesis of arbitrary k-qubit
//! unitaries over `{U, CX}` (Shende–Bullock–Markov).
//!
//! One recursion level splits an n-qubit unitary by its top qubit with a
//! cosine–sine decomposition
//!
//! ```text
//! U = (L0 ⊕ L1) · MRy(2θ) · (R0 ⊕ R1)
//! ```
//!
//! where `MRy` is a Ry multiplexed on the low qubits, and then
//! demultiplexes each block-diagonal factor with an eigendecomposition
//! (`V1 ⊕ V2 = (I⊗V)·(D ⊕ D†)·(I⊗W)`, `V1V2† = V D² V†`, `D ⊕ D†`
//! realized as a multiplexed Rz). The four half-size unitaries recurse,
//! bottoming out at the KAK 3-CX synthesizer for 2 qubits and a single
//! `U` gate for 1. Multiplexed rotations use the Gray-code construction
//! (2^k rotation/CX pairs), which is exact — every angle transform here
//! is an orthogonal involution, so no precision is lost to it.

use super::kak::{append_1q, synthesize_2q};
use super::linalg;
use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::error::{Result, TerraError};
use crate::instruction::Operation;
use crate::matrix::Matrix;

/// Below this, a cosine/sine is treated as exactly zero and the matching
/// columns are produced by orthonormal completion instead of an
/// ill-conditioned division.
const DEGENERATE_TOL: f64 = 1e-6;

/// Synthesizes an arbitrary `2^n × 2^n` unitary into a `{U, CX}` circuit
/// on `n` qubits, exact to numerical precision including global phase.
///
/// # Errors
///
/// Fails if the matrix is not square with power-of-two dimension ≥ 2, or
/// not unitary.
pub fn synthesize_unitary(u: &Matrix) -> Result<QuantumCircuit> {
    let dim = u.rows();
    if dim < 2 || u.cols() != dim || !dim.is_power_of_two() {
        return Err(TerraError::Transpile {
            msg: format!("synthesis requires a square power-of-two matrix, got {dim}x{}", u.cols()),
        });
    }
    if !u.is_unitary_eps(1e-9) {
        return Err(TerraError::Transpile {
            msg: "synthesis requires a unitary matrix".to_owned(),
        });
    }
    let n = dim.trailing_zeros() as usize;
    let mut circuit = QuantumCircuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    synthesize_into(&mut circuit, u, &qubits)?;
    Ok(circuit)
}

/// Recursive worker: synthesizes `u` onto `qubits` (local bit `i` of the
/// matrix index lives on circuit qubit `qubits[i]`).
fn synthesize_into(circuit: &mut QuantumCircuit, u: &Matrix, qubits: &[usize]) -> Result<()> {
    match qubits.len() {
        1 => append_1q(circuit, u, qubits[0]),
        2 => splice(circuit, &synthesize_2q(u)?, qubits),
        _ => {
            let (l0, l1, thetas, r0, r1) = cosine_sine_decompose(u)?;
            let low = &qubits[..qubits.len() - 1];
            let high = qubits[qubits.len() - 1];
            demultiplex(circuit, &r0, &r1, low, high)?;
            let ry_angles: Vec<f64> = thetas.iter().map(|t| 2.0 * t).collect();
            multiplexed_rotation(circuit, RotationAxis::Y, high, low, &ry_angles)?;
            demultiplex(circuit, &l0, &l1, low, high)
        }
    }
}

/// Copies a synthesized sub-circuit onto the given qubits of `circuit`.
fn splice(circuit: &mut QuantumCircuit, sub: &QuantumCircuit, qubits: &[usize]) -> Result<()> {
    for inst in sub.instructions() {
        match &inst.op {
            Operation::Gate(gate) => {
                let mapped: Vec<usize> = inst.qubits.iter().map(|&q| qubits[q]).collect();
                circuit.append(*gate, &mapped)?;
            }
            other => {
                return Err(TerraError::Transpile {
                    msg: format!("synthesis produced non-gate operation {other:?}"),
                })
            }
        }
    }
    circuit.add_global_phase(sub.global_phase());
    Ok(())
}

/// Cosine–sine decomposition of a unitary split into equal blocks by its
/// top bit:
///
/// ```text
/// [[A, B], [C, D]] = [[L0·Ct·R0, −L0·St·R1], [L1·St·R0, L1·Ct·R1]]
/// ```
///
/// with `Ct = diag(cos θᵢ)`, `St = diag(sin θᵢ)`. Cosines/sines are taken
/// from column norms of `A·Q` / `C·Q` (absolutely accurate), and each row
/// of `R1` is recovered from whichever of the two defining equations is
/// better conditioned — `1/max(cos, sin) ≤ √2` — so no `1/sin`
/// amplification reaches the reconstruction.
#[allow(clippy::type_complexity)]
fn cosine_sine_decompose(u: &Matrix) -> Result<(Matrix, Matrix, Vec<f64>, Matrix, Matrix)> {
    let m = u.rows() / 2;
    let block = |row0: usize, col0: usize| {
        let mut out = Matrix::zeros(m, m);
        for r in 0..m {
            for c in 0..m {
                out[(r, c)] = u[(row0 + r, col0 + c)];
            }
        }
        out
    };
    let a = block(0, 0);
    let b = block(0, m);
    let cc = block(m, 0);
    let d = block(m, m);

    // Right vectors of A's SVD; singular values descending = cosines.
    let (_, _, vdag) = linalg::svd(&a);
    let q = vdag.dagger();
    let aq = a.matmul(&q);
    let ccq = cc.matmul(&q);

    let mut cos = vec![0.0; m];
    let mut sin = vec![0.0; m];
    for i in 0..m {
        let cn: f64 = (0..m).map(|r| aq[(r, i)].norm_sqr()).sum::<f64>().sqrt();
        let sn: f64 = (0..m).map(|r| ccq[(r, i)].norm_sqr()).sum::<f64>().sqrt();
        let h = cn.hypot(sn);
        cos[i] = cn / h;
        sin[i] = sn / h;
    }
    let thetas: Vec<f64> = cos.iter().zip(&sin).map(|(c, s)| s.atan2(*c)).collect();

    let mut l0 = Matrix::zeros(m, m);
    let mut l0_fixed = Vec::new();
    for i in 0..m {
        if cos[i] > DEGENERATE_TOL {
            for r in 0..m {
                l0[(r, i)] = aq[(r, i)].scale(1.0 / cos[i]);
            }
            l0_fixed.push(i);
        }
    }
    linalg::complete_columns(&mut l0, &l0_fixed);

    let mut l1 = Matrix::zeros(m, m);
    let mut l1_fixed = Vec::new();
    for i in 0..m {
        if sin[i] > DEGENERATE_TOL {
            for r in 0..m {
                l1[(r, i)] = ccq[(r, i)].scale(1.0 / sin[i]);
            }
            l1_fixed.push(i);
        }
    }
    linalg::complete_columns(&mut l1, &l1_fixed);

    let r0 = q.dagger();
    // Row i of R1 from D = L1·Ct·R1 when cos dominates, else from
    // B = −L0·St·R1.
    let l1d = l1.dagger().matmul(&d);
    let l0b = l0.dagger().matmul(&b);
    let mut r1 = Matrix::zeros(m, m);
    for i in 0..m {
        if cos[i] >= sin[i] {
            for c in 0..m {
                r1[(i, c)] = l1d[(i, c)].scale(1.0 / cos[i]);
            }
        } else {
            for c in 0..m {
                r1[(i, c)] = l0b[(i, c)].scale(-1.0 / sin[i]);
            }
        }
    }
    Ok((l0, l1, thetas, r0, r1))
}

/// Emits `V1 ⊕ V2` (apply `v1` to the low qubits when `high` is |0⟩, `v2`
/// when |1⟩) as `(I⊗V)·(D⊕D†)·(I⊗W)` with the diagonal part realized as a
/// multiplexed Rz on `high`.
fn demultiplex(
    circuit: &mut QuantumCircuit,
    v1: &Matrix,
    v2: &Matrix,
    low: &[usize],
    high: usize,
) -> Result<()> {
    let m = v1.rows();
    let prod = v1.matmul(&v2.dagger());
    let (lambdas, v) = linalg::eig_unitary(&prod);
    let mus: Vec<f64> = lambdas.iter().map(|l| l.arg()).collect();

    // W = D†·V†·V1 with D = diag(e^{iμ/2}).
    let mut w = v.dagger().matmul(v1);
    for i in 0..m {
        let dconj = Complex::cis(-mus[i] / 2.0);
        for c in 0..m {
            w[(i, c)] *= dconj;
        }
    }

    synthesize_into(circuit, &w, low)?;
    // diag(d_i, d̄_i) on `high` for low state i is Rz(−μ_i).
    let angles: Vec<f64> = mus.iter().map(|mu| -mu).collect();
    multiplexed_rotation(circuit, RotationAxis::Z, high, low, &angles)?;
    synthesize_into(circuit, &v, low)
}

/// Rotation axis of a multiplexed rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationAxis {
    /// Multiplexed Ry.
    Y,
    /// Multiplexed Rz.
    Z,
}

/// Emits a rotation on `target` multiplexed over `controls`:
/// for control state `i` (bit `j` of `i` = value of `controls[j]`), the
/// target sees `R(angles[i])`.
///
/// Gray-code construction: `2^k` rotation/CX pairs, with the rotation
/// angles passed through the orthogonal transform
/// `φ_j = 2^{-k} Σ_i (−1)^{popcount(i & gray(j))} θ_i` and each CX
/// controlled on the bit where the Gray code changes. Works for any axis
/// whose rotation anticommutes with X (`X·R(θ)·X = R(−θ)`), which holds
/// for both Ry and Rz.
///
/// # Errors
///
/// Fails if `angles.len() != 2^controls.len()`.
pub fn multiplexed_rotation(
    circuit: &mut QuantumCircuit,
    axis: RotationAxis,
    target: usize,
    controls: &[usize],
    angles: &[f64],
) -> Result<()> {
    let k = controls.len();
    let n = 1usize << k;
    if angles.len() != n {
        return Err(TerraError::Transpile {
            msg: format!("multiplexor needs {n} angles, got {}", angles.len()),
        });
    }
    let rotate = |circuit: &mut QuantumCircuit, angle: f64| -> Result<()> {
        match axis {
            RotationAxis::Y => circuit.ry(angle, target)?,
            RotationAxis::Z => circuit.rz(angle, target)?,
        };
        Ok(())
    };
    if k == 0 {
        return rotate(circuit, angles[0]);
    }
    let gray = |j: usize| j ^ (j >> 1);
    for j in 0..n {
        let mut phi = 0.0;
        for (i, theta) in angles.iter().enumerate() {
            let parity = (i & gray(j)).count_ones() & 1;
            phi += if parity == 1 { -theta } else { *theta };
        }
        phi /= n as f64;
        rotate(circuit, phi)?;
        let next = if j + 1 == n { gray(0) } else { gray(j + 1) };
        let changed = (gray(j) ^ next).trailing_zeros() as usize;
        circuit.cx(controls[changed], target)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                worst = worst.max((a[(i, j)] - b[(i, j)]).norm());
            }
        }
        worst
    }

    fn multiplexed_reference(axis: RotationAxis, k: usize, angles: &[f64]) -> Matrix {
        // Target is qubit k (top), controls are qubits 0..k in order.
        let m = 1usize << k;
        let mut out = Matrix::zeros(2 * m, 2 * m);
        for (i, &theta) in angles.iter().enumerate() {
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            let block = match axis {
                RotationAxis::Y => [
                    [Complex::new(c, 0.0), Complex::new(-s, 0.0)],
                    [Complex::new(s, 0.0), Complex::new(c, 0.0)],
                ],
                RotationAxis::Z => [
                    [Complex::cis(-theta / 2.0), Complex::ZERO],
                    [Complex::ZERO, Complex::cis(theta / 2.0)],
                ],
            };
            for hr in 0..2 {
                for hc in 0..2 {
                    out[(hr * m + i, hc * m + i)] = block[hr][hc];
                }
            }
        }
        out
    }

    #[test]
    fn multiplexed_rotation_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for axis in [RotationAxis::Y, RotationAxis::Z] {
            for k in [1usize, 2, 3] {
                let angles: Vec<f64> =
                    (0..1 << k).map(|_| (rng.gen::<f64>() - 0.5) * 6.0).collect();
                let mut circ = QuantumCircuit::new(k + 1);
                let controls: Vec<usize> = (0..k).collect();
                multiplexed_rotation(&mut circ, axis, k, &controls, &angles).unwrap();
                let got = reference::unitary(&circ).unwrap();
                let want = multiplexed_reference(axis, k, &angles);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-12, "{axis:?} k={k}: error {err:.2e}");
            }
        }
    }

    #[test]
    fn csd_reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(12);
        for dim in [4usize, 8, 16] {
            let u = linalg::random_unitary(dim, &mut rng);
            let (l0, l1, thetas, r0, r1) = cosine_sine_decompose(&u).unwrap();
            let m = dim / 2;
            let mut rebuilt = Matrix::zeros(dim, dim);
            // Assemble [[L0 C R0, -L0 S R1],[L1 S R0, L1 C R1]] directly.
            let mut ct = Matrix::zeros(m, m);
            let mut st = Matrix::zeros(m, m);
            for i in 0..m {
                ct[(i, i)] = Complex::new(thetas[i].cos(), 0.0);
                st[(i, i)] = Complex::new(thetas[i].sin(), 0.0);
            }
            let tl = l0.matmul(&ct).matmul(&r0);
            let tr = l0.matmul(&st).matmul(&r1).scale(Complex::new(-1.0, 0.0));
            let bl = l1.matmul(&st).matmul(&r0);
            let br = l1.matmul(&ct).matmul(&r1);
            for r in 0..m {
                for c in 0..m {
                    rebuilt[(r, c)] = tl[(r, c)];
                    rebuilt[(r, m + c)] = tr[(r, c)];
                    rebuilt[(m + r, c)] = bl[(r, c)];
                    rebuilt[(m + r, m + c)] = br[(r, c)];
                }
            }
            let err = max_abs_diff(&u, &rebuilt);
            assert!(err < 1e-11, "dim {dim}: CSD error {err:.2e}");
            assert!(l0.is_unitary_eps(1e-9) && l1.is_unitary_eps(1e-9));
            assert!(r1.is_unitary_eps(1e-9));
        }
    }

    #[test]
    fn csd_handles_block_diagonal_input() {
        // U = diag(V1, V2): all sines are zero — pure completion path.
        let mut rng = StdRng::seed_from_u64(13);
        let v1 = linalg::random_unitary(4, &mut rng);
        let v2 = linalg::random_unitary(4, &mut rng);
        let mut u = Matrix::zeros(8, 8);
        for r in 0..4 {
            for c in 0..4 {
                u[(r, c)] = v1[(r, c)];
                u[(4 + r, 4 + c)] = v2[(r, c)];
            }
        }
        let circ = synthesize_unitary(&u).unwrap();
        let rebuilt = reference::unitary(&circ).unwrap();
        let err = max_abs_diff(&u, &rebuilt);
        assert!(err < 1e-10, "block-diagonal synthesis error {err:.2e}");
    }

    #[test]
    fn qsd_synthesizes_three_qubit_unitaries() {
        let mut rng = StdRng::seed_from_u64(14);
        for case in 0..5 {
            let u = linalg::random_unitary(8, &mut rng);
            let circ = synthesize_unitary(&u).unwrap();
            let rebuilt = reference::unitary(&circ).unwrap();
            let err = max_abs_diff(&u, &rebuilt);
            assert!(err < 1e-10, "case {case}: QSD error {err:.2e}");
        }
    }

    #[test]
    fn qsd_synthesizes_four_qubit_unitaries() {
        let mut rng = StdRng::seed_from_u64(15);
        for case in 0..2 {
            let u = linalg::random_unitary(16, &mut rng);
            let circ = synthesize_unitary(&u).unwrap();
            let rebuilt = reference::unitary(&circ).unwrap();
            let err = max_abs_diff(&u, &rebuilt);
            assert!(err < 1e-10, "case {case}: QSD error {err:.2e}");
        }
    }

    #[test]
    fn qsd_dispatches_small_cases() {
        let mut rng = StdRng::seed_from_u64(16);
        // 1-qubit: single U gate; 2-qubit: KAK path.
        let u1 = linalg::random_unitary(2, &mut rng);
        let c1 = synthesize_unitary(&u1).unwrap();
        assert_eq!(c1.num_gates(), 1);
        assert!(max_abs_diff(&u1, &reference::unitary(&c1).unwrap()) < 1e-12);
        let u2 = linalg::random_unitary(4, &mut rng);
        let c2 = synthesize_unitary(&u2).unwrap();
        assert!(c2.count_ops().get("cx").copied().unwrap_or(0) <= 3);
        assert!(max_abs_diff(&u2, &reference::unitary(&c2).unwrap()) < 1e-10);
    }

    #[test]
    fn synthesize_rejects_bad_input() {
        assert!(synthesize_unitary(&Matrix::zeros(4, 4)).is_err());
        assert!(synthesize_unitary(&Matrix::identity(3)).is_err());
        assert!(synthesize_unitary(&Matrix::identity(1)).is_err());
    }
}
