//! Unitary synthesis: ZYZ (1 qubit), KAK (2 qubits, ≤3 CX), and Quantum
//! Shannon Decomposition (k qubits).
//!
//! The public entry point is [`synthesize_unitary`], which dispatches on
//! matrix dimension. [`resynthesize_2q_blocks`] applies KAK inside the
//! pass pipeline: maximal two-qubit gate runs are collected from the
//! circuit, their 4×4 unitaries recomputed, and each run is replaced by
//! the 3-CX canonical circuit whenever that is strictly smaller.

pub mod kak;
pub mod linalg;
pub mod qsd;

pub use kak::{kak_decompose, synthesize_2q, KakDecomposition};
pub use qsd::{multiplexed_rotation, synthesize_unitary, RotationAxis};

use crate::circuit::QuantumCircuit;
use crate::error::Result;
use crate::gate::Gate;
use crate::instruction::Operation;
use crate::matrix::Matrix;

/// A maximal run of gates confined to one qubit pair.
struct TwoQubitBlock {
    /// Unordered pair, as (low, high) circuit qubits.
    pair: (usize, usize),
    /// Indices into the instruction list, in order.
    members: Vec<usize>,
    /// Number of CX gates in the run.
    cx_count: usize,
}

/// Rewrites every maximal two-qubit run with ≥ 4 CX gates into the KAK
/// 3-CX form, when that strictly reduces the run's gate count. Runs whose
/// resynthesis would not shrink them are left untouched, so the pass is
/// monotone in circuit size. Exact up to global phase bookkeeping.
///
/// Expects a `{1q, CX}` circuit (i.e. post-decompose); gates on more than
/// two qubits, conditions, and non-gate operations act as barriers.
///
/// # Errors
///
/// Propagates synthesis failures (which would indicate an internal
/// inconsistency, since block unitaries are unitary by construction).
pub fn resynthesize_2q_blocks(circuit: &QuantumCircuit) -> Result<(QuantumCircuit, usize)> {
    let instructions = circuit.instructions();
    let blocks = collect_blocks(circuit);

    // Blocks eligible for rewriting, keyed by the index of their last
    // member (where the replacement is emitted).
    let mut replace_at = std::collections::BTreeMap::new();
    let mut member_of: Vec<Option<usize>> = vec![None; instructions.len()];
    for (block_idx, block) in blocks.iter().enumerate() {
        if block.cx_count < 4 {
            continue;
        }
        let unitary = block_unitary(circuit, block);
        let synth = synthesize_2q(&unitary)?;
        if synth.num_gates() >= block.members.len() {
            continue;
        }
        for &m in &block.members {
            member_of[m] = Some(block_idx);
        }
        replace_at.insert(*block.members.last().expect("non-empty block"), (block_idx, synth));
    }
    if replace_at.is_empty() {
        return Ok((circuit.clone(), 0));
    }

    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    let mut rewritten = 0;
    for (idx, inst) in instructions.iter().enumerate() {
        match member_of[idx] {
            None => {
                out.push(inst.clone())?;
            }
            Some(_) => {
                if let Some((block_idx, synth)) = replace_at.get(&idx) {
                    let block = &blocks[*block_idx];
                    let map = [block.pair.0, block.pair.1];
                    for sub in synth.instructions() {
                        if let Operation::Gate(g) = &sub.op {
                            let mapped: Vec<usize> = sub.qubits.iter().map(|&q| map[q]).collect();
                            out.append(*g, &mapped)?;
                        }
                    }
                    out.add_global_phase(synth.global_phase());
                    rewritten += 1;
                }
                // Other members are dropped: the replacement covers them.
            }
        }
    }
    Ok((out, rewritten))
}

/// Collects maximal runs of plain, unconditioned gates confined to a
/// single qubit pair. Single-qubit gates join an open run on a pair
/// containing their qubit; anything else touching a run's qubits closes
/// it.
fn collect_blocks(circuit: &QuantumCircuit) -> Vec<TwoQubitBlock> {
    let mut blocks: Vec<TwoQubitBlock> = Vec::new();
    // At most one open run per qubit: open[q] = index into `blocks`.
    let mut open: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    // 1q gates seen since a qubit was last closed, awaiting a pair.
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];
    let mut closed: Vec<bool> = Vec::new();

    let close = |q: usize, open: &mut Vec<Option<usize>>, closed: &mut Vec<bool>| {
        if let Some(b) = open[q].take() {
            closed[b] = true;
            // The partner qubit's run is the same block.
            for slot in open.iter_mut() {
                if *slot == Some(b) {
                    *slot = None;
                }
            }
        }
    };

    for (idx, inst) in circuit.instructions().iter().enumerate() {
        let plain_gate = matches!(inst.op, Operation::Gate(_)) && inst.condition.is_none();
        if !plain_gate {
            for &q in &inst.qubits {
                close(q, &mut open, &mut closed);
                pending[q].clear();
            }
            continue;
        }
        match inst.qubits.len() {
            1 => {
                let q = inst.qubits[0];
                if let Some(b) = open[q] {
                    blocks[b].members.push(idx);
                } else {
                    pending[q].push(idx);
                }
            }
            2 => {
                let (a, b) = (inst.qubits[0], inst.qubits[1]);
                let pair = (a.min(b), a.max(b));
                let joined = match (open[a], open[b]) {
                    (Some(x), Some(y)) if x == y && blocks[x].pair == pair => Some(x),
                    _ => None,
                };
                if let Some(x) = joined {
                    blocks[x].members.push(idx);
                    blocks[x].cx_count += 1;
                } else {
                    close(a, &mut open, &mut closed);
                    close(b, &mut open, &mut closed);
                    let mut members = Vec::new();
                    members.append(&mut pending[pair.0]);
                    members.append(&mut pending[pair.1]);
                    members.sort_unstable();
                    members.push(idx);
                    blocks.push(TwoQubitBlock { pair, members, cx_count: 1 });
                    closed.push(false);
                    open[a] = Some(blocks.len() - 1);
                    open[b] = Some(blocks.len() - 1);
                }
            }
            _ => {
                for &q in &inst.qubits {
                    close(q, &mut open, &mut closed);
                    pending[q].clear();
                }
            }
        }
    }
    blocks
}

/// The 4×4 unitary of a block, with block-pair low qubit as local bit 0.
fn block_unitary(circuit: &QuantumCircuit, block: &TwoQubitBlock) -> Matrix {
    let instructions = circuit.instructions();
    let mut u = Matrix::identity(4);
    for &idx in &block.members {
        let inst = &instructions[idx];
        let gate = inst.as_gate().expect("blocks contain only gates");
        let local: Vec<usize> =
            inst.qubits.iter().map(|&q| if q == block.pair.0 { 0 } else { 1 }).collect();
        let embedded = match local.as_slice() {
            [0] => Matrix::identity(2).kron(&gate.matrix()),
            [1] => gate.matrix().kron(&Matrix::identity(2)),
            [0, 1] => gate.matrix(),
            [1, 0] => {
                let swap = Gate::Swap.matrix();
                swap.matmul(&gate.matrix()).matmul(&swap)
            }
            other => unreachable!("unexpected block operands {other:?}"),
        };
        u = embedded.matmul(&u);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                worst = worst.max((a[(i, j)] - b[(i, j)]).norm());
            }
        }
        worst
    }

    /// Planted-bug self-test: corrupting one KAK canonical coefficient
    /// must be caught by the reconstruction check. Guards against the
    /// test layer silently accepting wrong decompositions.
    #[test]
    fn planted_corrupt_kak_coefficient_is_caught() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = linalg::random_unitary(4, &mut rng);
        let mut kak = kak_decompose(&u).unwrap();
        assert!(max_abs_diff(&u, &kak.reconstruct()) < 1e-10, "honest KAK must pass");
        kak.b += 1e-3;
        let err = max_abs_diff(&u, &kak.reconstruct());
        assert!(err > 1e-5, "corrupted KAK coefficient slipped through (error only {err:.2e})");
    }

    #[test]
    fn resynthesis_shrinks_dense_runs_and_preserves_unitary() {
        // 6 CX interleaved with 1q gates on one pair: KAK caps it at 3 CX.
        let mut circ = QuantumCircuit::new(2);
        let mut rng = StdRng::seed_from_u64(22);
        for i in 0..6 {
            circ.cx(i % 2, (i + 1) % 2).unwrap();
            circ.rz(rng.gen::<f64>() * 2.0, 0).unwrap();
            circ.ry(rng.gen::<f64>() * 2.0, 1).unwrap();
        }
        let before = reference::unitary(&circ).unwrap();
        let (out, rewritten) = resynthesize_2q_blocks(&circ).unwrap();
        assert_eq!(rewritten, 1);
        assert!(out.count_ops().get("cx").copied().unwrap_or(0) <= 3);
        assert!(out.num_gates() < circ.num_gates());
        let after = reference::unitary(&out).unwrap();
        assert!(max_abs_diff(&before, &after) < 1e-10);
    }

    #[test]
    fn resynthesis_leaves_sparse_circuits_alone() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.cx(1, 2).unwrap();
        circ.cx(0, 1).unwrap();
        let (out, rewritten) = resynthesize_2q_blocks(&circ).unwrap();
        assert_eq!(rewritten, 0);
        assert_eq!(out.num_gates(), circ.num_gates());
    }

    #[test]
    fn resynthesis_respects_measurement_barriers() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        for _ in 0..3 {
            circ.cx(0, 1).unwrap();
            circ.cx(1, 0).unwrap();
        }
        circ.measure(0, 0).unwrap();
        for _ in 0..2 {
            circ.cx(0, 1).unwrap();
        }
        let (out, _) = resynthesize_2q_blocks(&circ).unwrap();
        // The post-measurement CX pair (only 2 CX) must be untouched, and
        // the measurement must survive in place.
        assert_eq!(out.count_ops()["measure"], 1);
        let tail: Vec<_> =
            out.instructions().iter().skip_while(|inst| inst.as_gate().is_some()).collect();
        assert!(tail.len() >= 3, "measurement plus trailing CXs expected");
    }

    #[test]
    fn resynthesis_on_multiqubit_circuit_blocks_by_pair() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut circ = QuantumCircuit::new(4);
        // Dense run on (0,1), dense run on (2,3), interleaved.
        for _ in 0..5 {
            circ.cx(0, 1).unwrap();
            circ.rz(rng.gen::<f64>(), 1).unwrap();
            circ.cx(2, 3).unwrap();
            circ.ry(rng.gen::<f64>(), 2).unwrap();
            circ.cx(1, 0).unwrap();
            circ.cx(3, 2).unwrap();
        }
        let before = reference::unitary(&circ).unwrap();
        let (out, rewritten) = resynthesize_2q_blocks(&circ).unwrap();
        assert_eq!(rewritten, 2);
        let after = reference::unitary(&out).unwrap();
        assert!(max_abs_diff(&before, &after) < 1e-10);
    }
}
