//! Dense linear algebra for unitary synthesis.
//!
//! [`crate::matrix::Matrix`] deliberately stops at solve/matmul; synthesis
//! needs spectral factorizations. Everything here is built on cyclic
//! Jacobi rotations — slow asymptotically but extremely accurate (errors
//! stay at a few ulps), which is what the 1e-10 reconstruction bound in
//! the synthesis test layer demands. All matrices are tiny (≤16×16 for
//! 4-qubit QSD), so O(n³) sweeps are irrelevant to runtime.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Convergence threshold for off-diagonal mass, relative to the matrix
/// scale. Jacobi converges quadratically, so this is reached quickly.
const JACOBI_EPS: f64 = 1e-30;
/// Hard cap on Jacobi sweeps; reached only on pathological input.
const MAX_SWEEPS: usize = 60;

/// Eigendecomposition of a Hermitian matrix: `a = v · diag(vals) · v†`.
///
/// Returns eigenvalues in ascending order with the matching unitary `v`
/// (eigenvectors as columns). For a real symmetric input every Jacobi
/// rotation is real, so `v` comes back real as well.
pub fn eigh(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let scale: f64 = (0..n).map(|i| m[(i, i)].norm_sqr()).sum::<f64>().max(1.0);

    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|p| (p + 1..n).map(move |q| (p, q)))
            .map(|(p, q)| m[(p, q)].norm_sqr())
            .sum();
        if off <= JACOBI_EPS * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.norm_sqr() <= JACOBI_EPS * scale / (n * n) as f64 {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let amod = apq.norm();
                let phase = Complex::from_polar(1.0, apq.arg());
                // Zero m[p][q]: 2×2 Hermitian rotation by θ with
                // tan(2θ) = 2|a_pq| / (a_qq − a_pp).
                let theta = 0.5 * (2.0 * amod).atan2(aqq - app);
                let (c, s) = (theta.cos(), theta.sin());
                // Columns: col_p' = c·col_p − s·e^{-iφ}·col_q,
                //          col_q' = s·e^{iφ}·col_p + c·col_q.
                let (cp, cq) = (Complex::new(c, 0.0), Complex::new(s, 0.0) * phase);
                for row in 0..n {
                    let mp = m[(row, p)];
                    let mq = m[(row, q)];
                    m[(row, p)] = mp * cp - mq * cq.conj();
                    m[(row, q)] = mp * cq + mq * cp;
                    let vp = v[(row, p)];
                    let vq = v[(row, q)];
                    v[(row, p)] = vp * cp - vq * cq.conj();
                    v[(row, q)] = vp * cq + vq * cp;
                }
                for col in 0..n {
                    let mp = m[(p, col)];
                    let mq = m[(q, col)];
                    m[(p, col)] = mp * cp.conj() - mq * cq;
                    m[(q, col)] = mp * cq.conj() + mq * cp;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].re.partial_cmp(&m[(j, j)].re).expect("finite"));
    let vals: Vec<f64> = order.iter().map(|&i| m[(i, i)].re).collect();
    let mut vecs = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vecs[(row, new_col)] = v[(row, old_col)];
        }
    }
    (vals, vecs)
}

/// Orthogonal matrix `p` simultaneously diagonalizing two commuting real
/// symmetric matrices (given as the real/imaginary parts of a complex
/// symmetric unitary, the KAK `M²` matrix): `pᵀ·re·p` and `pᵀ·im·p` both
/// diagonal.
///
/// Strategy: diagonalize `re`, then within each (near-)degenerate
/// eigenvalue cluster diagonalize the projection of `im` — the second
/// rotation stays inside the cluster so it cannot disturb the first
/// diagonalization.
pub fn simultaneous_diag_real(re: &Matrix, im: &Matrix) -> Matrix {
    let n = re.rows();
    let (vals, p) = eigh(re);
    let mut p = real_part(&p);

    // Cluster ascending eigenvalues.
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (vals[end] - vals[end - 1]).abs() < 1e-6 {
            end += 1;
        }
        if end - start > 1 {
            // Diagonalize the cluster block of `im` in the cluster basis.
            let k = end - start;
            let mut block = Matrix::zeros(k, k);
            for bi in 0..k {
                for bj in 0..k {
                    let mut acc = 0.0;
                    for r in 0..n {
                        for c in 0..n {
                            acc += p[(r, start + bi)].re * im[(r, c)].re * p[(c, start + bj)].re;
                        }
                    }
                    block[(bi, bj)] = Complex::new(acc, 0.0);
                }
            }
            let (_, w) = eigh(&block);
            let w = real_part(&w);
            // Rotate the cluster columns of p by w.
            let mut rotated = vec![vec![0.0; k]; n];
            for (row, rot) in rotated.iter_mut().enumerate() {
                for (bj, slot) in rot.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for bi in 0..k {
                        acc += p[(row, start + bi)].re * w[(bi, bj)].re;
                    }
                    *slot = acc;
                }
            }
            for (row, rot) in rotated.iter().enumerate() {
                for (bj, &value) in rot.iter().enumerate() {
                    p[(row, start + bj)] = Complex::new(value, 0.0);
                }
            }
        }
        start = end;
    }
    p
}

/// Singular value decomposition `a = u · diag(s) · v†` with singular
/// values in descending order; `u`, `v` unitary (square).
///
/// Built from `eigh(a†a)`: right vectors are the eigenvectors, left
/// vectors are the well-conditioned images `a·vᵢ/sᵢ` completed by
/// Gram–Schmidt for (near-)zero singular values.
pub fn svd(a: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
    let n = a.rows();
    let (vals, vecs) = eigh(&a.dagger().matmul(a));
    // Descending singular values.
    let mut s = Vec::with_capacity(n);
    let mut v = Matrix::zeros(n, n);
    for j in 0..n {
        let src = n - 1 - j;
        s.push(vals[src].max(0.0).sqrt());
        for row in 0..n {
            v[(row, j)] = vecs[(row, src)];
        }
    }
    let mut u = Matrix::zeros(n, n);
    let mut fixed = Vec::new();
    for (j, &sj) in s.iter().enumerate() {
        if sj > 1e-9 {
            for row in 0..n {
                let mut acc = Complex::ZERO;
                for k in 0..n {
                    acc += a[(row, k)] * v[(k, j)];
                }
                u[(row, j)] = acc.scale(1.0 / sj);
            }
            fixed.push(j);
        }
    }
    complete_columns(&mut u, &fixed);
    (u, s, v.dagger())
}

/// Eigendecomposition of a (normal) unitary matrix: `a = v·diag(λ)·v†`
/// with `v` unitary and `|λᵢ| = 1`.
///
/// Runs simultaneous diagonalization of the commuting Hermitian pair
/// `(a+a†)/2` and `(a−a†)/2i` — the same cluster trick as the real case,
/// but in complex arithmetic.
pub fn eig_unitary(a: &Matrix) -> (Vec<Complex>, Matrix) {
    let n = a.rows();
    let h1 = a.add(&a.dagger()).scale(Complex::new(0.5, 0.0));
    let h2 = a.sub(&a.dagger()).scale(Complex::new(0.0, -0.5));
    let (vals, mut v) = eigh(&h1);

    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (vals[end] - vals[end - 1]).abs() < 1e-6 {
            end += 1;
        }
        if end - start > 1 {
            let k = end - start;
            let mut block = Matrix::zeros(k, k);
            for bi in 0..k {
                for bj in 0..k {
                    let mut acc = Complex::ZERO;
                    for r in 0..n {
                        for c in 0..n {
                            acc += v[(r, start + bi)].conj() * h2[(r, c)] * v[(c, start + bj)];
                        }
                    }
                    block[(bi, bj)] = acc;
                }
            }
            let (_, w) = eigh(&block);
            let mut rotated = vec![vec![Complex::ZERO; k]; n];
            for (row, rot) in rotated.iter_mut().enumerate() {
                for (bj, slot) in rot.iter_mut().enumerate() {
                    let mut acc = Complex::ZERO;
                    for bi in 0..k {
                        acc += v[(row, start + bi)] * w[(bi, bj)];
                    }
                    *slot = acc;
                }
            }
            for (row, rot) in rotated.iter().enumerate() {
                for (bj, &value) in rot.iter().enumerate() {
                    v[(row, start + bj)] = value;
                }
            }
        }
        start = end;
    }

    let av = a.matmul(&v);
    let mut lambdas = Vec::with_capacity(n);
    for j in 0..n {
        let mut acc = Complex::ZERO;
        for row in 0..n {
            acc += v[(row, j)].conj() * av[(row, j)];
        }
        // Project onto the unit circle: eigenvalues of a unitary.
        let norm = acc.norm();
        lambdas.push(if norm > 1e-12 { acc.scale(1.0 / norm) } else { Complex::ONE });
    }
    (lambdas, v)
}

/// Determinant by Gaussian elimination with partial pivoting.
pub fn determinant(a: &Matrix) -> Complex {
    let n = a.rows();
    let mut m = a.clone();
    let mut det = Complex::ONE;
    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if m[(row, col)].norm_sqr() > m[(pivot, col)].norm_sqr() {
                pivot = row;
            }
        }
        if m[(pivot, col)].is_approx_zero() {
            return Complex::ZERO;
        }
        if pivot != col {
            for k in 0..n {
                let tmp = m[(col, k)];
                m[(col, k)] = m[(pivot, k)];
                m[(pivot, k)] = tmp;
            }
            det = -det;
        }
        det *= m[(col, col)];
        let inv = m[(col, col)].recip();
        for row in col + 1..n {
            let factor = m[(row, col)] * inv;
            for k in col..n {
                let sub = factor * m[(col, k)];
                m[(row, k)] -= sub;
            }
        }
    }
    det
}

/// Fills the unset columns (those not listed in `fixed`) of `u` with an
/// orthonormal completion of the fixed ones, via Gram–Schmidt over the
/// standard basis.
pub fn complete_columns(u: &mut Matrix, fixed: &[usize]) {
    let n = u.rows();
    let mut have: Vec<Vec<Complex>> =
        fixed.iter().map(|&j| (0..n).map(|row| u[(row, j)]).collect()).collect();
    let missing: Vec<usize> = (0..n).filter(|j| !fixed.contains(j)).collect();
    let mut candidates = 0..n;
    for j in missing {
        loop {
            let cand = candidates.next().expect("basis exhausts before columns do");
            let mut vec: Vec<Complex> =
                (0..n).map(|row| if row == cand { Complex::ONE } else { Complex::ZERO }).collect();
            // Two rounds of Gram–Schmidt for numerical orthogonality.
            for _ in 0..2 {
                for col in &have {
                    let overlap: Complex = col.iter().zip(&vec).map(|(c, x)| c.conj() * *x).sum();
                    for (x, c) in vec.iter_mut().zip(col) {
                        *x -= overlap * *c;
                    }
                }
            }
            let norm: f64 = vec.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for (row, z) in vec.iter().enumerate() {
                    u[(row, j)] = z.scale(1.0 / norm);
                }
                have.push(vec.iter().map(|z| z.scale(1.0 / norm)).collect());
                break;
            }
        }
    }
}

/// Real part of a matrix, as a complex matrix with zero imaginary parts.
pub fn real_part(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut out = Matrix::zeros(n, a.cols());
    for i in 0..n {
        for j in 0..a.cols() {
            out[(i, j)] = Complex::new(a[(i, j)].re, 0.0);
        }
    }
    out
}

/// Determinant of a real orthogonal matrix, as ±1.
pub fn det_sign_real(a: &Matrix) -> f64 {
    if determinant(a).re >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Seeded Haar-ish random unitary via Gram–Schmidt on a random complex
/// matrix. Shared by the synthesis property-test modules.
#[cfg(test)]
pub(crate) fn random_unitary(n: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    use rand::Rng;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
        }
    }
    let mut u = Matrix::zeros(n, n);
    let mut cols: Vec<Vec<Complex>> = Vec::new();
    for j in 0..n {
        let mut vec: Vec<Complex> = (0..n).map(|row| a[(row, j)]).collect();
        for _ in 0..2 {
            for col in &cols {
                let overlap: Complex = col.iter().zip(&vec).map(|(c, x)| c.conj() * *x).sum();
                for (x, c) in vec.iter_mut().zip(col) {
                    *x -= overlap * *c;
                }
            }
        }
        let norm: f64 = vec.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let vec: Vec<Complex> = vec.iter().map(|z| z.scale(1.0 / norm)).collect();
        for (row, z) in vec.iter().enumerate() {
            u[(row, j)] = *z;
        }
        cols.push(vec);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, rng: &mut StdRng) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            }
        }
        a.add(&a.dagger()).scale(Complex::new(0.5, 0.0))
    }

    fn random_matrix(n: usize, rng: &mut StdRng) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            }
        }
        a
    }

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                worst = worst.max((a[(i, j)] - b[(i, j)]).norm());
            }
        }
        worst
    }

    #[test]
    fn eigh_reconstructs_hermitian() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2, 3, 4, 8] {
            let a = random_hermitian(n, &mut rng);
            let (vals, v) = eigh(&a);
            let mut d = Matrix::zeros(n, n);
            for (i, &val) in vals.iter().enumerate() {
                d[(i, i)] = Complex::new(val, 0.0);
            }
            let rebuilt = v.matmul(&d).matmul(&v.dagger());
            assert!(max_abs_diff(&a, &rebuilt) < 1e-12, "n={n}");
            assert!(v.is_unitary(), "eigenvectors not unitary for n={n}");
            assert!(vals.windows(2).all(|w| w[0] <= w[1]), "not ascending");
        }
    }

    #[test]
    fn svd_reconstructs_and_orders() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [2, 4, 8] {
            let a = random_matrix(n, &mut rng);
            let (u, s, vdag) = svd(&a);
            let mut d = Matrix::zeros(n, n);
            for (i, &val) in s.iter().enumerate() {
                d[(i, i)] = Complex::new(val, 0.0);
            }
            let rebuilt = u.matmul(&d).matmul(&vdag);
            assert!(max_abs_diff(&a, &rebuilt) < 1e-12, "n={n}");
            assert!(u.is_unitary() && vdag.is_unitary());
            assert!(s.windows(2).all(|w| w[0] >= w[1]), "not descending");
        }
    }

    #[test]
    fn svd_handles_rank_deficiency() {
        // Projector onto the first basis vector: singular values (1, 0).
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        let (u, s, vdag) = svd(&a);
        assert!((s[0] - 1.0).abs() < 1e-12 && s[1].abs() < 1e-12);
        assert!(u.is_unitary() && vdag.is_unitary());
    }

    #[test]
    fn eig_unitary_reconstructs() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [2, 4, 8] {
            let a = random_unitary(n, &mut rng);
            let (vals, v) = eig_unitary(&a);
            let mut d = Matrix::zeros(n, n);
            for (i, &val) in vals.iter().enumerate() {
                d[(i, i)] = val;
                assert!((val.norm() - 1.0).abs() < 1e-10);
            }
            let rebuilt = v.matmul(&d).matmul(&v.dagger());
            assert!(max_abs_diff(&a, &rebuilt) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn eig_unitary_handles_degenerate_identity() {
        let a = Matrix::identity(4);
        let (vals, v) = eig_unitary(&a);
        assert!(vals.iter().all(|l| (*l - Complex::ONE).norm() < 1e-12));
        assert!(v.is_unitary());
    }

    #[test]
    fn determinant_matches_known_values() {
        let mut rng = StdRng::seed_from_u64(10);
        let u = random_unitary(4, &mut rng);
        assert!((determinant(&u).norm() - 1.0).abs() < 1e-12);
        let mut upper = Matrix::identity(3);
        upper[(0, 0)] = Complex::new(2.0, 0.0);
        upper[(1, 1)] = Complex::new(3.0, 0.0);
        upper[(0, 2)] = Complex::new(5.0, 0.0);
        assert!((determinant(&upper) - Complex::new(6.0, 0.0)).norm() < 1e-12);
        let singular = Matrix::zeros(2, 2);
        assert!(determinant(&singular).is_approx_zero());
    }
}
