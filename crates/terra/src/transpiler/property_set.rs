//! The shared analysis state threaded through a pass pipeline.
//!
//! A [`PropertySet`] is the blackboard the pass manager hands to every
//! pass: routing passes publish the layout they chose, analysis passes
//! publish depth/gate-count observations, and downstream passes (or the
//! driver) read them back. This mirrors Qiskit's `PropertySet` — the
//! explicit alternative to the ad-hoc tuple-threading the transpiler used
//! before the pass-manager rebuild.

use crate::coupling::CouplingMap;
use std::collections::BTreeMap;

/// A single named analysis value.
///
/// Deliberately small: everything the current passes publish is an
/// integer, a float, or a short string. `BTreeMap` keeps iteration (and
/// therefore any debug rendering) deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// An integer observation (gate counts, depths, swap counts).
    Int(u64),
    /// A floating-point observation.
    Float(f64),
    /// A textual observation (e.g. the selected router).
    Text(String),
}

/// Shared state of one pass-manager run.
///
/// The well-known fields (`coupling_map`, layouts, `num_swaps`) are typed
/// because the driver depends on them; everything else lives in the
/// free-form `values` map keyed by `pass.metric` style names.
///
/// # Examples
///
/// ```
/// use qukit_terra::transpiler::property_set::PropertySet;
///
/// let mut props = PropertySet::new(None);
/// props.set_int("analysis.depth", 7);
/// assert_eq!(props.get_int("analysis.depth"), Some(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PropertySet {
    /// The routing target. `None` for simulator (all-to-all) pipelines.
    pub coupling_map: Option<CouplingMap>,
    /// Logical→physical placement chosen by the layout/routing pass.
    pub initial_layout: Option<Vec<usize>>,
    /// Logical→physical placement after all inserted SWAPs.
    pub final_layout: Option<Vec<usize>>,
    /// Number of SWAPs the router inserted.
    pub num_swaps: usize,
    values: BTreeMap<String, PropertyValue>,
}

impl PropertySet {
    /// Creates a property set for a run targeting `coupling_map`.
    pub fn new(coupling_map: Option<CouplingMap>) -> Self {
        Self { coupling_map, ..Self::default() }
    }

    /// Stores an integer property, replacing any previous value.
    pub fn set_int(&mut self, key: &str, value: u64) {
        self.values.insert(key.to_owned(), PropertyValue::Int(value));
    }

    /// Stores a float property, replacing any previous value.
    pub fn set_float(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_owned(), PropertyValue::Float(value));
    }

    /// Stores a text property, replacing any previous value.
    pub fn set_text(&mut self, key: &str, value: impl Into<String>) {
        self.values.insert(key.to_owned(), PropertyValue::Text(value.into()));
    }

    /// Reads back an integer property.
    pub fn get_int(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(PropertyValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads back a float property.
    pub fn get_float(&self, key: &str) -> Option<f64> {
        match self.values.get(key) {
            Some(PropertyValue::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads back a text property.
    pub fn get_text(&self, key: &str) -> Option<&str> {
        match self.values.get(key) {
            Some(PropertyValue::Text(v)) => Some(v),
            _ => None,
        }
    }

    /// Iterates over all free-form properties in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropertyValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of free-form properties recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no free-form properties have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_round_trip() {
        let mut props = PropertySet::new(Some(CouplingMap::ibm_qx4()));
        props.set_int("a.count", 3);
        props.set_float("a.ratio", 0.5);
        props.set_text("a.router", "sabre");
        assert_eq!(props.get_int("a.count"), Some(3));
        assert_eq!(props.get_float("a.ratio"), Some(0.5));
        assert_eq!(props.get_text("a.router"), Some("sabre"));
        // Wrong-type reads return None rather than panicking.
        assert_eq!(props.get_float("a.count"), None);
        assert_eq!(props.get_int("missing"), None);
        assert_eq!(props.len(), 3);
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let mut props = PropertySet::new(None);
        props.set_int("z", 1);
        props.set_int("a", 2);
        props.set_int("m", 3);
        let keys: Vec<&str> = props.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn overwrites_replace() {
        let mut props = PropertySet::new(None);
        assert!(props.is_empty());
        props.set_int("k", 1);
        props.set_int("k", 2);
        assert_eq!(props.get_int("k"), Some(2));
        assert_eq!(props.len(), 1);
    }
}
