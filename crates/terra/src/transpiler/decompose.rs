//! Decomposition of non-elementary gates.
//!
//! The paper (Section II-B): *"the user first has to decompose all
//! non-elementary quantum operations (e.g. Toffoli gate, SWAP gate, or
//! Fredkin gate) to the elementary operations U(θ, φ, λ) and CNOT"*. This
//! pass rewrites every multi-qubit gate into `{single-qubit, CX}` and can
//! optionally rewrite all single-qubit gates into [`Gate::U`].

use crate::circuit::QuantumCircuit;
use crate::error::Result;
use crate::gate::Gate;
use crate::instruction::Instruction;
use std::f64::consts::{FRAC_PI_2, PI};

/// Emits the `{1q, CX}` expansion of `gate` on `q` into `out`.
///
/// Single-qubit gates and CX pass through unchanged. The expansions are the
/// standard `qelib1.inc` definitions (verified unitary-equivalent in the
/// test suite).
pub fn expand_gate(gate: Gate, q: &[usize], out: &mut Vec<Instruction>) {
    use Gate::*;
    let g1 = |g: Gate, a: usize, out: &mut Vec<Instruction>| {
        out.push(Instruction::gate(g, vec![a]));
    };
    let cx = |c: usize, t: usize, out: &mut Vec<Instruction>| {
        out.push(Instruction::gate(CX, vec![c, t]));
    };
    match gate {
        // Already elementary.
        CX => cx(q[0], q[1], out),
        g if g.num_qubits() == 1 => g1(g, q[0], out),
        CZ => {
            g1(H, q[1], out);
            cx(q[0], q[1], out);
            g1(H, q[1], out);
        }
        CY => {
            g1(Sdg, q[1], out);
            cx(q[0], q[1], out);
            g1(S, q[1], out);
        }
        CH => {
            // qelib1.inc: ch a,b
            let (a, b) = (q[0], q[1]);
            g1(H, b, out);
            g1(Sdg, b, out);
            cx(a, b, out);
            g1(H, b, out);
            g1(T, b, out);
            cx(a, b, out);
            g1(T, b, out);
            g1(H, b, out);
            g1(S, b, out);
            g1(X, b, out);
            g1(S, a, out);
        }
        Crz(t) => {
            let (a, b) = (q[0], q[1]);
            g1(Rz(t / 2.0), b, out);
            cx(a, b, out);
            g1(Rz(-t / 2.0), b, out);
            cx(a, b, out);
        }
        Crx(t) => {
            let (a, b) = (q[0], q[1]);
            g1(H, b, out);
            g1(Rz(t / 2.0), b, out);
            cx(a, b, out);
            g1(Rz(-t / 2.0), b, out);
            cx(a, b, out);
            g1(H, b, out);
        }
        Cry(t) => {
            let (a, b) = (q[0], q[1]);
            g1(Ry(t / 2.0), b, out);
            cx(a, b, out);
            g1(Ry(-t / 2.0), b, out);
            cx(a, b, out);
        }
        Cp(t) => {
            let (a, b) = (q[0], q[1]);
            g1(Phase(t / 2.0), a, out);
            cx(a, b, out);
            g1(Phase(-t / 2.0), b, out);
            cx(a, b, out);
            g1(Phase(t / 2.0), b, out);
        }
        Cu(t, p, l) => {
            // qelib1.inc cu3.
            let (a, b) = (q[0], q[1]);
            g1(Phase((l + p) / 2.0), a, out);
            g1(Phase((l - p) / 2.0), b, out);
            cx(a, b, out);
            g1(U(-t / 2.0, 0.0, -(p + l) / 2.0), b, out);
            cx(a, b, out);
            g1(U(t / 2.0, p, 0.0), b, out);
        }
        Swap => {
            cx(q[0], q[1], out);
            cx(q[1], q[0], out);
            cx(q[0], q[1], out);
        }
        Rzz(t) => {
            cx(q[0], q[1], out);
            g1(Rz(t), q[1], out);
            cx(q[0], q[1], out);
        }
        Rxx(t) => {
            g1(H, q[0], out);
            g1(H, q[1], out);
            cx(q[0], q[1], out);
            g1(Rz(t), q[1], out);
            cx(q[0], q[1], out);
            g1(H, q[0], out);
            g1(H, q[1], out);
        }
        Ccx => {
            // Standard 6-CX Toffoli decomposition.
            let (a, b, c) = (q[0], q[1], q[2]);
            g1(H, c, out);
            cx(b, c, out);
            g1(Tdg, c, out);
            cx(a, c, out);
            g1(T, c, out);
            cx(b, c, out);
            g1(Tdg, c, out);
            cx(a, c, out);
            g1(T, b, out);
            g1(T, c, out);
            g1(H, c, out);
            cx(a, b, out);
            g1(T, a, out);
            g1(Tdg, b, out);
            cx(a, b, out);
        }
        Ccz => {
            g1(H, q[2], out);
            expand_gate(Ccx, q, out);
            g1(H, q[2], out);
        }
        Cswap => {
            // qelib1.inc: cx c,b; ccx a,b,c; cx c,b  with (a,b,c)=(ctrl,x,y)
            let (a, b, c) = (q[0], q[1], q[2]);
            cx(c, b, out);
            expand_gate(Ccx, &[a, b, c], out);
            cx(c, b, out);
        }
        g => unreachable!("expand_gate: unhandled gate {g:?}"),
    }
}

/// Rewrites every multi-qubit gate of the circuit into `{1q, CX}`.
///
/// Measurements, resets, barriers and conditioned gates pass through
/// unchanged (conditioned multi-qubit gates have the condition copied onto
/// every expanded instruction, preserving semantics because the condition
/// register cannot change mid-expansion).
///
/// # Errors
///
/// Currently infallible for the standard library, but returns `Result` to
/// keep the pass signature uniform.
pub fn decompose_to_cx_basis(circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    let mut buffer = Vec::new();
    for inst in circuit.instructions() {
        match inst.as_gate() {
            Some(&g) if g.num_qubits() > 1 && g != Gate::CX => {
                buffer.clear();
                expand_gate(g, &inst.qubits, &mut buffer);
                for mut expanded in buffer.drain(..) {
                    expanded.condition = inst.condition.clone();
                    out.push(expanded)?;
                }
            }
            _ => {
                out.push(inst.clone())?;
            }
        }
    }
    Ok(out)
}

/// Rewrites every single-qubit gate into the hardware-elementary
/// [`Gate::U`], tracking the global phase so the result is *exactly*
/// equivalent (not just up to phase).
///
/// # Errors
///
/// Currently infallible; `Result` for pass-signature uniformity.
pub fn rewrite_1q_to_u(circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
    let mut out = circuit.clone();
    out.clear();
    out.add_global_phase(circuit.global_phase());
    for inst in circuit.instructions() {
        match inst.as_gate() {
            Some(&g) if g.num_qubits() == 1 => {
                let u = g.to_u().expect("all 1q gates convert to U");
                // Track the global phase difference exactly.
                let phase =
                    u.matrix().phase_equal_to(&g.matrix()).expect("to_u is phase-equivalent");
                let mut rewritten = inst.clone();
                rewritten.op = crate::instruction::Operation::Gate(u);
                if inst.condition.is_none() {
                    out.add_global_phase(-phase);
                }
                out.push(rewritten)?;
            }
            _ => {
                out.push(inst.clone())?;
            }
        }
    }
    Ok(out)
}

/// Counts the gates a circuit would need in the elementary basis — the
/// "cost" metric used when comparing mapping strategies.
pub fn elementary_gate_count(circuit: &QuantumCircuit) -> usize {
    let mut count = 0;
    let mut buffer = Vec::new();
    for inst in circuit.instructions() {
        if let Some(&g) = inst.as_gate() {
            if g.num_qubits() > 1 && g != Gate::CX {
                buffer.clear();
                expand_gate(g, &inst.qubits, &mut buffer);
                count += buffer.len();
            } else {
                count += 1;
            }
        }
    }
    count
}

/// Returns `U(θ,φ,λ)` angles equivalent to an arbitrary 2x2 unitary, plus
/// the global phase `α` such that `matrix = e^{iα}·U(θ,φ,λ)`.
///
/// This is the ZYZ Euler decomposition the paper names in Section II-B.
///
/// # Panics
///
/// Panics if the matrix is not 2x2 (unitarity is assumed, not checked).
pub fn zyz_decompose(matrix: &crate::matrix::Matrix) -> (f64, f64, f64, f64) {
    assert_eq!(matrix.rows(), 2, "zyz_decompose requires a 2x2 matrix");
    // Scale to SU(2): divide by sqrt(det).
    let det = matrix[(0, 0)] * matrix[(1, 1)] - matrix[(0, 1)] * matrix[(1, 0)];
    let scale = det.sqrt().recip();
    let a = matrix[(0, 0)] * scale;
    let c = matrix[(1, 0)] * scale;
    let d = matrix[(1, 1)] * scale;
    // SU(2): a = cos(θ/2) e^{-i(φ+λ)/2}, c = sin(θ/2) e^{i(φ-λ)/2}.
    let theta = 2.0 * c.norm().atan2(a.norm());
    let (phi, lam) = if c.norm() < 1e-12 {
        // Diagonal: only φ+λ is determined.
        (2.0 * d.arg(), 0.0)
    } else if a.norm() < 1e-12 {
        // Anti-diagonal: only φ-λ is determined.
        (2.0 * c.arg(), 0.0)
    } else {
        let sum = 2.0 * d.arg();
        let diff = 2.0 * c.arg();
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };
    // Recover the exact global phase by comparison.
    let candidate = Gate::U(theta, phi, lam).matrix();
    let alpha =
        matrix.phase_equal_to(&candidate).expect("ZYZ decomposition must be phase-equivalent");
    (theta, phi, lam, alpha)
}

/// Convenience constants used by direction-fixing: the H gate as a `U`.
pub const H_AS_U: Gate = Gate::U(FRAC_PI_2, 0.0, PI);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference;

    fn check_equivalent(gate: Gate) {
        let n = gate.num_qubits();
        let qubits: Vec<usize> = (0..n).collect();
        let mut original = QuantumCircuit::new(n);
        original.append(gate, &qubits).unwrap();
        let expanded = decompose_to_cx_basis(&original).unwrap();
        // No multi-qubit gate except CX remains.
        for inst in expanded.instructions() {
            if let Some(g) = inst.as_gate() {
                assert!(g.num_qubits() == 1 || *g == Gate::CX, "{gate:?} expansion left {g:?}");
            }
        }
        let u_orig = reference::unitary(&original).unwrap();
        let u_exp = reference::unitary(&expanded).unwrap();
        assert!(u_exp.phase_equal_to(&u_orig).is_some(), "{gate:?} expansion is not equivalent");
    }

    #[test]
    fn all_two_qubit_expansions_are_equivalent() {
        for gate in [
            Gate::CZ,
            Gate::CY,
            Gate::CH,
            Gate::Crz(0.7),
            Gate::Crx(-1.3),
            Gate::Cry(2.1),
            Gate::Cp(0.4),
            Gate::Cu(0.3, 0.8, -0.5),
            Gate::Swap,
            Gate::Rzz(1.1),
            Gate::Rxx(-0.6),
        ] {
            check_equivalent(gate);
        }
    }

    #[test]
    fn all_three_qubit_expansions_are_equivalent() {
        for gate in [Gate::Ccx, Gate::Ccz, Gate::Cswap] {
            check_equivalent(gate);
        }
    }

    #[test]
    fn toffoli_uses_six_cnots() {
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        let expanded = decompose_to_cx_basis(&circ).unwrap();
        assert_eq!(expanded.count_ops()["cx"], 6);
    }

    #[test]
    fn measurements_and_barriers_pass_through() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.swap(0, 1).unwrap();
        circ.barrier_all();
        circ.measure(0, 0).unwrap();
        let expanded = decompose_to_cx_basis(&circ).unwrap();
        assert_eq!(expanded.count_ops()["cx"], 3);
        assert_eq!(expanded.count_ops()["barrier"], 1);
        assert_eq!(expanded.count_ops()["measure"], 1);
    }

    #[test]
    fn conditions_are_copied_to_expansion() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.append_conditional(Gate::Swap, &[0, 1], "c", 1).unwrap();
        let expanded = decompose_to_cx_basis(&circ).unwrap();
        assert!(expanded.instructions().iter().all(|i| i.condition.is_some()));
    }

    #[test]
    fn rewrite_to_u_is_exactly_equivalent() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.t(1).unwrap();
        circ.sdg(0).unwrap();
        circ.x(1).unwrap();
        circ.cx(0, 1).unwrap();
        circ.rx(0.3, 0).unwrap();
        let rewritten = rewrite_1q_to_u(&circ).unwrap();
        for inst in rewritten.instructions() {
            if let Some(g) = inst.as_gate() {
                assert!(matches!(g, Gate::U(..) | Gate::CX), "left {g:?}");
            }
        }
        let u1 = reference::unitary(&circ).unwrap();
        let u2 = reference::unitary(&rewritten).unwrap();
        assert!(u2.approx_eq_eps(&u1, 1e-9), "exact equivalence expected");
    }

    #[test]
    fn elementary_count_matches_expansion() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.ccx(0, 1, 2).unwrap();
        let expanded = decompose_to_cx_basis(&circ).unwrap();
        assert_eq!(elementary_gate_count(&circ), expanded.num_gates());
    }

    #[test]
    fn zyz_recovers_standard_gates() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Rx(0.3),
            Gate::Ry(-2.5),
            Gate::Rz(1.0),
            Gate::U(0.1, 0.2, 0.3),
        ] {
            let m = g.matrix();
            let (theta, phi, lam, alpha) = zyz_decompose(&m);
            let rebuilt =
                Gate::U(theta, phi, lam).matrix().scale(crate::complex::Complex::cis(alpha));
            assert!(rebuilt.approx_eq_eps(&m, 1e-9), "zyz failed for {g:?}");
        }
    }

    #[test]
    fn zyz_handles_products() {
        // Product of several gates: H T S H Rx(0.4)
        let product = Gate::H
            .matrix()
            .matmul(&Gate::T.matrix())
            .matmul(&Gate::S.matrix())
            .matmul(&Gate::H.matrix())
            .matmul(&Gate::Rx(0.4).matrix());
        let (theta, phi, lam, alpha) = zyz_decompose(&product);
        let rebuilt = Gate::U(theta, phi, lam).matrix().scale(crate::complex::Complex::cis(alpha));
        assert!(rebuilt.approx_eq_eps(&product, 1e-9));
        assert!(Matrix::hadamard().is_unitary()); // sanity anchor
    }

    #[test]
    fn h_as_u_constant_is_h() {
        assert!(H_AS_U.matrix().phase_equal_to(&Gate::H.matrix()).is_some());
    }
}
