//! The pass manager: an explicit pipeline of transpiler passes.
//!
//! This module replaces the hard-coded `decompose → map → fix → optimize`
//! driver with the architecture Qiskit 1.x uses (arXiv:2405.08810): a
//! [`Pass`] trait running over a [`PassState`] (the circuit plus a lazily
//! derived [`DagCircuit`] view) with a shared [`PropertySet`], assembled
//! into staged [`PassManager`] pipelines per optimization level by
//! [`pipeline_for`].
//!
//! Every pass execution is wrapped in a profiler that reports wall time and
//! gate counts through `qukit-obs` (`qukit_terra_pass_seconds{pass=...}`
//! and friends). The profiler is strictly read-only: it observes gate
//! counts before/after but never writes to the [`PropertySet`] or the
//! circuit, so a profiled transpile is bit-identical to an unprofiled one
//! (see the determinism regression test in `tests/`).

use super::property_set::PropertySet;
use super::{decompose, mapping, optimize, synthesis};
use crate::circuit::QuantumCircuit;
use crate::dag::DagCircuit;
use crate::error::{Result, TerraError};

/// The circuit a pipeline is working on, with a lazily derived DAG view.
///
/// Transform passes replace the circuit (which invalidates the DAG);
/// analysis passes call [`PassState::dag`] to get dependency-graph
/// queries (layers, two-qubit work list) without each pass rebuilding it.
#[derive(Debug, Clone)]
pub struct PassState {
    circuit: QuantumCircuit,
    dag: Option<DagCircuit>,
}

impl PassState {
    /// Wraps a circuit for pipeline execution.
    pub fn new(circuit: QuantumCircuit) -> Self {
        Self { circuit, dag: None }
    }

    /// Borrows the current circuit.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// Replaces the circuit, invalidating the cached DAG view.
    pub fn replace(&mut self, circuit: QuantumCircuit) {
        self.circuit = circuit;
        self.dag = None;
    }

    /// The DAG view of the current circuit, built on first use and reused
    /// until the circuit changes.
    pub fn dag(&mut self) -> &DagCircuit {
        if self.dag.is_none() {
            self.dag = Some(DagCircuit::from_circuit(&self.circuit));
        }
        self.dag.as_ref().expect("just built")
    }

    /// Unwraps into the final circuit.
    pub fn into_circuit(self) -> QuantumCircuit {
        self.circuit
    }
}

/// One transpiler pass.
///
/// A pass either transforms the circuit (replacing it via
/// [`PassState::replace`]) or analyses it (reading [`PassState::dag`] and
/// publishing results to the [`PropertySet`]); many do a little of both.
pub trait Pass {
    /// Stable name used for profiling metrics and error messages.
    fn name(&self) -> &'static str;

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns an error when the pass cannot complete (device too small,
    /// disconnected coupling map, un-decomposed gate, …).
    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()>;
}

/// Per-pass instrumentation: a span in the trace (`transpile.pass`), a
/// duration histogram, and gates-in/gates-out counters, all labeled by
/// pass name. Inert while recording is disabled, and strictly read-only
/// with respect to the pass state and property set.
struct PassProfiler {
    inner: Option<(qukit_obs::Span, &'static str, usize)>,
}

impl PassProfiler {
    fn start(pass: &'static str, gates_in: usize) -> Self {
        if !qukit_obs::enabled() {
            return Self { inner: None };
        }
        let span = qukit_obs::Span::new("transpile.pass", format!("pass={pass}"))
            .with_metric(&format!("qukit_terra_pass_seconds{{pass=\"{pass}\"}}"));
        Self { inner: Some((span, pass, gates_in)) }
    }

    fn finish(self, gates_out: usize) {
        let Some((span, pass, gates_in)) = self.inner else { return };
        drop(span);
        qukit_obs::counter_inc(&format!("qukit_terra_pass_runs_total{{pass=\"{pass}\"}}"));
        qukit_obs::counter_add(
            &format!("qukit_terra_pass_gates_in_total{{pass=\"{pass}\"}}"),
            gates_in as u64,
        );
        qukit_obs::counter_add(
            &format!("qukit_terra_pass_gates_out_total{{pass=\"{pass}\"}}"),
            gates_out as u64,
        );
    }
}

/// An ordered pipeline of passes sharing one [`PropertySet`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass to the pipeline.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the passes in execution order (used by docs and tests).
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order over `circuit`, profiling each one.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(&self, circuit: &QuantumCircuit, props: &mut PropertySet) -> Result<QuantumCircuit> {
        let mut state = PassState::new(circuit.clone());
        for pass in &self.passes {
            let profiler = PassProfiler::start(pass.name(), state.circuit().num_gates());
            pass.run(&mut state, props)?;
            profiler.finish(state.circuit().num_gates());
        }
        Ok(state.into_circuit())
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager").field("passes", &self.pass_names()).finish()
    }
}

// --- Concrete passes -------------------------------------------------------

/// Rewrites every multi-qubit gate into `{1q, CX}`.
pub struct DecomposePass;

impl Pass for DecomposePass {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, state: &mut PassState, _props: &mut PropertySet) -> Result<()> {
        let out = decompose::decompose_to_cx_basis(state.circuit())?;
        state.replace(out);
        Ok(())
    }
}

/// DAG-based analysis: publishes depth, gate counts and the two-qubit work
/// list size under `analysis.<stage>.*` in the property set.
pub struct AnalysisPass {
    /// Key prefix distinguishing pre/post pipeline snapshots.
    pub stage: &'static str,
}

impl Pass for AnalysisPass {
    fn name(&self) -> &'static str {
        "analysis"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let gates = state.circuit().num_gates() as u64;
        let dag = state.dag();
        let depth = dag.layers().len() as u64;
        let two_qubit = dag.two_qubit_gates().count() as u64;
        let stage = self.stage;
        props.set_int(&format!("analysis.{stage}.depth"), depth);
        props.set_int(&format!("analysis.{stage}.gates"), gates);
        props.set_int(&format!("analysis.{stage}.two_qubit_gates"), two_qubit);
        Ok(())
    }
}

/// Places and routes the circuit onto the property set's coupling map,
/// publishing the chosen layouts and swap count.
pub struct MappingPass {
    /// Routing algorithm.
    pub kind: mapping::MapperKind,
    /// Initial placement strategy.
    pub initial: mapping::InitialLayout,
}

impl Pass for MappingPass {
    fn name(&self) -> &'static str {
        "mapping"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let map = props.coupling_map.clone().ok_or_else(|| TerraError::Transpile {
            msg: "mapping pass requires a coupling map in the property set".to_owned(),
        })?;
        let mapped = mapping::map_circuit(state.circuit(), &map, self.kind, &self.initial)?;
        props.initial_layout = Some(mapped.initial_layout);
        props.final_layout = Some(mapped.final_layout);
        props.num_swaps = mapped.num_swaps;
        props.set_int("mapping.num_swaps", mapped.num_swaps as u64);
        props.set_text("mapping.router", format!("{:?}", self.kind).to_lowercase());
        qukit_obs::counter_add("qukit_terra_swaps_inserted_total", mapped.num_swaps as u64);
        state.replace(mapped.circuit);
        Ok(())
    }
}

/// Decomposes router-inserted SWAPs and conjugates reversed CNOTs with
/// Hadamards so every CNOT satisfies the directed coupling constraints.
pub struct FixDirectionsPass;

impl Pass for FixDirectionsPass {
    fn name(&self) -> &'static str {
        "fix_directions"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let map = props.coupling_map.clone().ok_or_else(|| TerraError::Transpile {
            msg: "direction pass requires a coupling map in the property set".to_owned(),
        })?;
        let out = mapping::fix_directions(state.circuit(), &map)?;
        state.replace(out);
        Ok(())
    }
}

/// Cancels adjacent gate/inverse pairs.
pub struct CancelInversePairsPass;

impl Pass for CancelInversePairsPass {
    fn name(&self) -> &'static str {
        "cancel_inverse_pairs"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let (out, removed) = optimize::cancel_inverse_pairs(state.circuit());
        props.set_int("optimize.inverse_pairs_removed", removed as u64);
        state.replace(out);
        Ok(())
    }
}

/// Cancels CX pairs separated only by commuting gates.
pub struct CancelCommutingCxPass;

impl Pass for CancelCommutingCxPass {
    fn name(&self) -> &'static str {
        "cancel_commuting_cx"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let (out, removed) = optimize::cancel_commuting_cx_pairs(state.circuit());
        props.set_int("optimize.commuting_cx_removed", removed as u64);
        state.replace(out);
        Ok(())
    }
}

/// Merges maximal single-qubit runs into one `U` via ZYZ resynthesis.
pub struct MergeSingleQubitRunsPass;

impl Pass for MergeSingleQubitRunsPass {
    fn name(&self) -> &'static str {
        "merge_1q_runs"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let (out, eliminated) = optimize::merge_single_qubit_runs(state.circuit());
        props.set_int("optimize.merged_1q_gates", eliminated as u64);
        state.replace(out);
        Ok(())
    }
}

/// Drops numerically-identity gates.
pub struct DropIdentitiesPass;

impl Pass for DropIdentitiesPass {
    fn name(&self) -> &'static str {
        "drop_identities"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let (out, removed) = optimize::drop_identities(state.circuit());
        props.set_int("optimize.identities_dropped", removed as u64);
        state.replace(out);
        Ok(())
    }
}

/// Recompiles dense two-qubit runs through the KAK canonical form,
/// capping each run at 3 CX (optimization level 3, pre-routing: blocks
/// are collected on logical qubits before SWAP insertion fragments them).
pub struct Resynthesize2qPass;

impl Pass for Resynthesize2qPass {
    fn name(&self) -> &'static str {
        "resynth_2q"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let (out, rewritten) = synthesis::resynthesize_2q_blocks(state.circuit())?;
        props.set_int("optimize.blocks_resynthesized", rewritten as u64);
        if rewritten > 0 {
            state.replace(out);
        }
        Ok(())
    }
}

/// Iterates the full optimization pipeline to a gate-count fixpoint
/// (optimization level 3).
pub struct FixpointOptimizePass;

impl Pass for FixpointOptimizePass {
    fn name(&self) -> &'static str {
        "optimize_fixpoint"
    }

    fn run(&self, state: &mut PassState, props: &mut PropertySet) -> Result<()> {
        let before = state.circuit().num_gates();
        let out = optimize::optimize_to_fixpoint(state.circuit())?;
        props.set_int("optimize.fixpoint_removed", before.saturating_sub(out.num_gates()) as u64);
        state.replace(out);
        Ok(())
    }
}

/// Rewrites the remaining single-qubit gates into the hardware-elementary
/// `U(θ,φ,λ)` basis.
pub struct BasisUPass;

impl Pass for BasisUPass {
    fn name(&self) -> &'static str {
        "basis_u"
    }

    fn run(&self, state: &mut PassState, _props: &mut PropertySet) -> Result<()> {
        let out = decompose::rewrite_1q_to_u(state.circuit())?;
        state.replace(out);
        Ok(())
    }
}

/// Builds the staged pipeline for the requested options — the table of
/// optimization levels documented in the README:
///
/// | level | optimization stage |
/// |-------|--------------------|
/// | 0     | none               |
/// | 1     | inverse-pair cancellation + identity drop |
/// | 2     | level 1 + single-qubit resynthesis |
/// | 3     | KAK block resynthesis (pre-routing) + level 2 + commuting-CX cancellation, iterated to fixpoint |
///
/// Every pipeline starts with decomposition (and, when a coupling map is
/// present, routing + direction fixing) and records pre/post analysis
/// snapshots in the property set.
pub fn pipeline_for(options: &super::TranspileOptions) -> PassManager {
    let mut pm = PassManager::new();
    pm.push(AnalysisPass { stage: "input" });
    pm.push(DecomposePass);
    if options.optimization_level >= 3 {
        pm.push(Resynthesize2qPass);
    }
    if options.coupling_map.is_some() {
        pm.push(MappingPass { kind: options.mapper, initial: options.initial_layout.clone() });
        pm.push(FixDirectionsPass);
    }
    match options.optimization_level {
        0 => {}
        1 => {
            pm.push(CancelInversePairsPass);
            pm.push(DropIdentitiesPass);
        }
        2 => {
            pm.push(CancelInversePairsPass);
            pm.push(MergeSingleQubitRunsPass);
            pm.push(DropIdentitiesPass);
        }
        _ => {
            pm.push(FixpointOptimizePass);
        }
    }
    if options.basis_u {
        pm.push(BasisUPass);
    }
    pm.push(AnalysisPass { stage: "output" });
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::coupling::CouplingMap;
    use crate::transpiler::{InitialLayout, MapperKind, TranspileOptions};

    #[test]
    fn pipeline_shape_tracks_options() {
        let mut opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
        opts.optimization_level = 2;
        opts.basis_u = true;
        let names = pipeline_for(&opts).pass_names();
        assert_eq!(
            names,
            vec![
                "analysis",
                "decompose",
                "mapping",
                "fix_directions",
                "cancel_inverse_pairs",
                "merge_1q_runs",
                "drop_identities",
                "basis_u",
                "analysis",
            ]
        );
        let sim = pipeline_for(&TranspileOptions::for_simulator(0)).pass_names();
        assert_eq!(sim, vec!["analysis", "decompose", "analysis"]);
        let full = pipeline_for(&TranspileOptions::for_simulator(3)).pass_names();
        assert_eq!(
            full,
            vec!["analysis", "decompose", "resynth_2q", "optimize_fixpoint", "analysis"]
        );
    }

    #[test]
    fn manager_threads_properties_through_passes() {
        let opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
        let pm = pipeline_for(&opts);
        let mut props = PropertySet::new(opts.coupling_map.clone());
        let out = pm.run(&fig1_circuit(), &mut props).unwrap();
        assert!(props.initial_layout.is_some());
        assert!(props.final_layout.is_some());
        assert!(props.get_int("analysis.input.depth").is_some());
        assert!(props.get_int("analysis.output.gates").is_some());
        assert_eq!(props.get_text("mapping.router"), Some("lookahead"));
        assert_eq!(out.num_qubits(), 5, "mapped onto the device register");
    }

    #[test]
    fn mapping_pass_without_coupling_map_errors() {
        let pass = MappingPass { kind: MapperKind::Basic, initial: InitialLayout::Trivial };
        let mut state = PassState::new(fig1_circuit());
        let mut props = PropertySet::new(None);
        assert!(pass.run(&mut state, &mut props).is_err());
    }

    #[test]
    fn dag_view_is_cached_until_replace() {
        let mut state = PassState::new(fig1_circuit());
        let depth = state.dag().layers().len();
        assert!(depth > 0);
        // Replacing invalidates; new DAG reflects the new circuit.
        state.replace(QuantumCircuit::new(2));
        assert_eq!(state.dag().layers().len(), 0);
    }
}
