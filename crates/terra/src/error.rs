//! Error types for the terra crate.

use std::fmt;

/// Errors produced by circuit construction, OpenQASM parsing and
/// transpilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerraError {
    /// A qubit index was out of range for the circuit.
    QubitOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A classical bit index was out of range for the circuit.
    ClbitOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// The same qubit was passed twice to a multi-qubit instruction.
    DuplicateQubit {
        /// The duplicated index.
        index: usize,
    },
    /// An instruction was given the wrong number of qubit operands.
    ArityMismatch {
        /// Gate name.
        name: String,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        found: usize,
    },
    /// A register with this name already exists in the circuit.
    DuplicateRegister {
        /// The clashing register name.
        name: String,
    },
    /// Referenced register does not exist.
    UnknownRegister {
        /// The missing register name.
        name: String,
    },
    /// OpenQASM source failed to parse.
    QasmParse {
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Circuit cannot be inverted (contains measurement/reset).
    NotInvertible {
        /// Name of the non-unitary instruction.
        instruction: String,
    },
    /// Transpilation failed.
    Transpile {
        /// Human-readable description.
        msg: String,
    },
    /// The coupling map cannot support the requested circuit.
    CouplingMap {
        /// Human-readable description.
        msg: String,
    },
    /// Binding values to a parameterized circuit failed.
    ParameterBinding {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for TerraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerraError::QubitOutOfRange { index, num_qubits } => {
                write!(f, "qubit index {index} out of range for {num_qubits}-qubit circuit")
            }
            TerraError::ClbitOutOfRange { index, num_clbits } => {
                write!(f, "classical bit index {index} out of range for {num_clbits} bits")
            }
            TerraError::DuplicateQubit { index } => {
                write!(f, "qubit {index} used more than once in a single instruction")
            }
            TerraError::ArityMismatch { name, expected, found } => {
                write!(f, "gate '{name}' expects {expected} qubit operand(s), found {found}")
            }
            TerraError::DuplicateRegister { name } => {
                write!(f, "register '{name}' already exists")
            }
            TerraError::UnknownRegister { name } => {
                write!(f, "unknown register '{name}'")
            }
            TerraError::QasmParse { line, col, msg } => {
                write!(f, "OpenQASM parse error at line {line}, column {col}: {msg}")
            }
            TerraError::NotInvertible { instruction } => {
                write!(f, "circuit containing '{instruction}' cannot be inverted")
            }
            TerraError::Transpile { msg } => write!(f, "transpilation failed: {msg}"),
            TerraError::CouplingMap { msg } => write!(f, "coupling map error: {msg}"),
            TerraError::ParameterBinding { msg } => {
                write!(f, "parameter binding failed: {msg}")
            }
        }
    }
}

impl std::error::Error for TerraError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TerraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TerraError::QubitOutOfRange { index: 5, num_qubits: 3 };
        assert_eq!(e.to_string(), "qubit index 5 out of range for 3-qubit circuit");
        let e = TerraError::QasmParse { line: 2, col: 7, msg: "expected ';'".into() };
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("column 7"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TerraError>();
    }
}
