//! The quantum circuit intermediate representation.
//!
//! [`QuantumCircuit`] is the central data structure of the toolchain — the
//! analogue of Qiskit Terra's `QuantumCircuit`. Circuits are built with
//! fluent per-gate methods, loaded from OpenQASM 2.0 (see [`crate::qasm`]),
//! transpiled to a device (see [`crate::transpiler`]) and executed by the
//! simulators in `qukit-aer` / `qukit-dd`.
//!
//! # Examples
//!
//! Building the paper's Fig. 1 circuit:
//!
//! ```
//! use qukit_terra::circuit::QuantumCircuit;
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let mut circ = QuantumCircuit::new(4);
//! circ.h(2)?;
//! circ.cx(2, 3)?;
//! circ.cx(0, 1)?;
//! circ.h(1)?;
//! circ.cx(1, 2)?;
//! circ.t(0)?;
//! circ.cx(2, 0)?;
//! circ.cx(0, 1)?;
//! assert_eq!(circ.size(), 8);
//! assert_eq!(circ.depth(), 5);
//! # Ok(())
//! # }
//! ```

use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, Operation};
use crate::register::{Register, RegisterKind};
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit: ordered instructions over flat qubit and classical-bit
/// arrays, with optional named registers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumCircuit {
    num_qubits: usize,
    num_clbits: usize,
    qregs: Vec<Register>,
    cregs: Vec<Register>,
    instructions: Vec<Instruction>,
    global_phase: f64,
    name: String,
}

impl QuantumCircuit {
    /// Creates a circuit with `num_qubits` qubits and no classical bits,
    /// with a single anonymous quantum register `q`.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_size(num_qubits, 0)
    }

    /// Creates a circuit with `num_qubits` qubits and `num_clbits` classical
    /// bits, registered as `q` and `c`.
    pub fn with_size(num_qubits: usize, num_clbits: usize) -> Self {
        let mut qregs = Vec::new();
        let mut cregs = Vec::new();
        if num_qubits > 0 {
            qregs.push(Register::new(RegisterKind::Quantum, "q", 0, num_qubits));
        }
        if num_clbits > 0 {
            cregs.push(Register::new(RegisterKind::Classical, "c", 0, num_clbits));
        }
        Self {
            num_qubits,
            num_clbits,
            qregs,
            cregs,
            instructions: Vec::new(),
            global_phase: 0.0,
            name: "circuit".to_owned(),
        }
    }

    /// Creates an empty circuit (no qubits yet); registers are added with
    /// [`QuantumCircuit::add_qreg`] / [`QuantumCircuit::add_creg`]. This is
    /// the path the OpenQASM parser uses.
    pub fn empty() -> Self {
        Self {
            num_qubits: 0,
            num_clbits: 0,
            qregs: Vec::new(),
            cregs: Vec::new(),
            instructions: Vec::new(),
            global_phase: 0.0,
            name: "circuit".to_owned(),
        }
    }

    /// Sets a human-readable circuit name (used by drawers and results).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a new quantum register of `size` qubits named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TerraError::DuplicateRegister`] if a quantum register with
    /// that name exists.
    pub fn add_qreg(&mut self, name: impl Into<String>, size: usize) -> Result<&Register> {
        let name = name.into();
        if self.qregs.iter().any(|r| r.name() == name) {
            return Err(TerraError::DuplicateRegister { name });
        }
        let reg = Register::new(RegisterKind::Quantum, name, self.num_qubits, size);
        self.num_qubits += size;
        self.qregs.push(reg);
        Ok(self.qregs.last().expect("just pushed"))
    }

    /// Appends a new classical register of `size` bits named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TerraError::DuplicateRegister`] if a classical register with
    /// that name exists.
    pub fn add_creg(&mut self, name: impl Into<String>, size: usize) -> Result<&Register> {
        let name = name.into();
        if self.cregs.iter().any(|r| r.name() == name) {
            return Err(TerraError::DuplicateRegister { name });
        }
        let reg = Register::new(RegisterKind::Classical, name, self.num_clbits, size);
        self.num_clbits += size;
        self.cregs.push(reg);
        Ok(self.cregs.last().expect("just pushed"))
    }

    /// Looks up a quantum register by name.
    pub fn qreg(&self, name: &str) -> Option<&Register> {
        self.qregs.iter().find(|r| r.name() == name)
    }

    /// Looks up a classical register by name.
    pub fn creg(&self, name: &str) -> Option<&Register> {
        self.cregs.iter().find(|r| r.name() == name)
    }

    /// All quantum registers in declaration order.
    pub fn qregs(&self) -> &[Register] {
        &self.qregs
    }

    /// All classical registers in declaration order.
    pub fn cregs(&self) -> &[Register] {
        &self.cregs
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Total width (qubits + classical bits).
    pub fn width(&self) -> usize {
        self.num_qubits + self.num_clbits
    }

    /// The accumulated global phase (radians). Simulators multiply the final
    /// state by `e^{i·phase}`; it is irrelevant for measurement statistics
    /// but kept so unitary equivalence is exact.
    pub fn global_phase(&self) -> f64 {
        self.global_phase
    }

    /// Adds to the global phase.
    pub fn add_global_phase(&mut self, phase: f64) {
        self.global_phase += phase;
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable instruction access for in-crate rewriting passes (parameter
    /// binding); callers must preserve the circuit's validation invariants.
    pub(crate) fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Number of instructions (gates + measures + resets + barriers).
    pub fn size(&self) -> usize {
        self.instructions.len()
    }

    /// Removes all instructions, keeping registers.
    pub fn clear(&mut self) {
        self.instructions.clear();
        self.global_phase = 0.0;
    }

    fn check_qubits(&self, qubits: &[usize]) -> Result<()> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(TerraError::QubitOutOfRange { index: q, num_qubits: self.num_qubits });
            }
        }
        for (i, &q) in qubits.iter().enumerate() {
            if qubits[i + 1..].contains(&q) {
                return Err(TerraError::DuplicateQubit { index: q });
            }
        }
        Ok(())
    }

    fn check_clbits(&self, clbits: &[usize]) -> Result<()> {
        for &c in clbits {
            if c >= self.num_clbits {
                return Err(TerraError::ClbitOutOfRange { index: c, num_clbits: self.num_clbits });
            }
        }
        Ok(())
    }

    /// Appends a gate acting on the given qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if an index is out of range, a qubit is repeated, or
    /// the operand count does not match the gate arity.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self> {
        if qubits.len() != gate.num_qubits() {
            return Err(TerraError::ArityMismatch {
                name: gate.name().to_owned(),
                expected: gate.num_qubits(),
                found: qubits.len(),
            });
        }
        self.check_qubits(qubits)?;
        self.instructions.push(Instruction::gate(gate, qubits.to_vec()));
        Ok(self)
    }

    /// Appends a pre-built instruction after validating its operands.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range or duplicated operands.
    pub fn push(&mut self, instruction: Instruction) -> Result<&mut Self> {
        if let Operation::Gate(g) = &instruction.op {
            if instruction.qubits.len() != g.num_qubits() {
                return Err(TerraError::ArityMismatch {
                    name: g.name().to_owned(),
                    expected: g.num_qubits(),
                    found: instruction.qubits.len(),
                });
            }
        }
        self.check_qubits(&instruction.qubits)?;
        self.check_clbits(&instruction.clbits)?;
        if let Some(cond) = &instruction.condition {
            self.check_clbits(&cond.clbits)?;
        }
        self.instructions.push(instruction);
        Ok(self)
    }

    /// Appends a gate conditioned on a classical register value
    /// (OpenQASM `if (creg == value) gate ...;`).
    ///
    /// # Errors
    ///
    /// Returns an error on invalid operands or an unknown register.
    pub fn append_conditional(
        &mut self,
        gate: Gate,
        qubits: &[usize],
        creg_name: &str,
        value: u64,
    ) -> Result<&mut Self> {
        let reg = self
            .creg(creg_name)
            .ok_or_else(|| TerraError::UnknownRegister { name: creg_name.to_owned() })?;
        let clbits: Vec<usize> = reg.bits().collect();
        let mut inst = Instruction::gate(gate, qubits.to_vec());
        inst.condition = Some(Condition { clbits, value });
        self.push(inst)?;
        Ok(self)
    }

    // --- Fluent single-gate helpers -------------------------------------

    /// Appends an identity gate. See [`Gate::I`].
    ///
    /// # Errors
    /// Propagates operand validation errors, as do all gate helpers below.
    pub fn id(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::I, &[q])
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::X, &[q])
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::Z, &[q])
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::H, &[q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::S, &[q])
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::Sdg, &[q])
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::T, &[q])
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::Tdg, &[q])
    }

    /// Appends a √X gate.
    pub fn sx(&mut self, q: usize) -> Result<&mut Self> {
        self.append(Gate::Sx, &[q])
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> Result<&mut Self> {
        self.append(Gate::Rx(theta), &[q])
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> Result<&mut Self> {
        self.append(Gate::Ry(theta), &[q])
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> Result<&mut Self> {
        self.append(Gate::Rz(theta), &[q])
    }

    /// Appends a phase gate.
    pub fn p(&mut self, lambda: f64, q: usize) -> Result<&mut Self> {
        self.append(Gate::Phase(lambda), &[q])
    }

    /// Appends the IBM QX elementary gate `U(θ, φ, λ)`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> Result<&mut Self> {
        self.append(Gate::U(theta, phi, lambda), &[q])
    }

    /// Appends a CNOT with the given control and target.
    pub fn cx(&mut self, control: usize, target: usize) -> Result<&mut Self> {
        self.append(Gate::CX, &[control, target])
    }

    /// Appends a controlled-Y.
    pub fn cy(&mut self, control: usize, target: usize) -> Result<&mut Self> {
        self.append(Gate::CY, &[control, target])
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> Result<&mut Self> {
        self.append(Gate::CZ, &[a, b])
    }

    /// Appends a controlled-Hadamard.
    pub fn ch(&mut self, control: usize, target: usize) -> Result<&mut Self> {
        self.append(Gate::CH, &[control, target])
    }

    /// Appends a controlled phase rotation.
    pub fn cp(&mut self, lambda: f64, a: usize, b: usize) -> Result<&mut Self> {
        self.append(Gate::Cp(lambda), &[a, b])
    }

    /// Appends a controlled Rz.
    pub fn crz(&mut self, theta: f64, control: usize, target: usize) -> Result<&mut Self> {
        self.append(Gate::Crz(theta), &[control, target])
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> Result<&mut Self> {
        self.append(Gate::Swap, &[a, b])
    }

    /// Appends a Toffoli (CCX) gate with controls `c0`, `c1` and the target.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> Result<&mut Self> {
        self.append(Gate::Ccx, &[c0, c1, target])
    }

    /// Appends a Fredkin (controlled-SWAP) gate.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) -> Result<&mut Self> {
        self.append(Gate::Cswap, &[control, a, b])
    }

    /// Appends a measurement of `qubit` into `clbit`.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> Result<&mut Self> {
        self.check_qubits(&[qubit])?;
        self.check_clbits(&[clbit])?;
        self.instructions.push(Instruction::measure(qubit, clbit));
        Ok(self)
    }

    /// Measures every qubit into the classical bit of the same index,
    /// growing the classical register if needed.
    pub fn measure_all(&mut self) {
        if self.num_clbits < self.num_qubits {
            let missing = self.num_qubits - self.num_clbits;
            let name = if self.creg("meas").is_none() { "meas" } else { "meas1" };
            let _ = self.add_creg(name, missing);
        }
        for q in 0..self.num_qubits {
            self.instructions.push(Instruction::measure(q, q));
        }
    }

    /// Appends a reset of `qubit` to `|0⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range.
    pub fn reset(&mut self, qubit: usize) -> Result<&mut Self> {
        self.check_qubits(&[qubit])?;
        self.instructions.push(Instruction::reset(qubit));
        Ok(self)
    }

    /// Appends a barrier over all qubits.
    pub fn barrier_all(&mut self) {
        let qubits: Vec<usize> = (0..self.num_qubits).collect();
        self.instructions.push(Instruction::barrier(qubits));
    }

    /// Appends a barrier over the given qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if an index is out of range or repeated.
    pub fn barrier(&mut self, qubits: &[usize]) -> Result<&mut Self> {
        self.check_qubits(qubits)?;
        self.instructions.push(Instruction::barrier(qubits.to_vec()));
        Ok(self)
    }

    // --- Whole-circuit operations ---------------------------------------

    /// Appends all instructions of `other` to `self` (both circuits must
    /// have compatible widths).
    ///
    /// This is the `measured_circ = circ + measurement` composition the
    /// paper's user-perspective walkthrough performs.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` uses more qubits or classical bits than
    /// `self` has.
    pub fn compose(&mut self, other: &QuantumCircuit) -> Result<&mut Self> {
        if other.num_qubits > self.num_qubits {
            return Err(TerraError::QubitOutOfRange {
                index: other.num_qubits - 1,
                num_qubits: self.num_qubits,
            });
        }
        if other.num_clbits > self.num_clbits {
            return Err(TerraError::ClbitOutOfRange {
                index: other.num_clbits - 1,
                num_clbits: self.num_clbits,
            });
        }
        self.instructions.extend(other.instructions.iter().cloned());
        self.global_phase += other.global_phase;
        Ok(self)
    }

    /// Appends `other` with its qubit `i` mapped to `mapping[i]`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range mapped indices.
    pub fn compose_mapped(
        &mut self,
        other: &QuantumCircuit,
        mapping: &[usize],
    ) -> Result<&mut Self> {
        for inst in &other.instructions {
            let mut relabeled = inst.clone();
            for q in &mut relabeled.qubits {
                let mapped = *mapping
                    .get(*q)
                    .ok_or(TerraError::QubitOutOfRange { index: *q, num_qubits: mapping.len() })?;
                *q = mapped;
            }
            self.push(relabeled)?;
        }
        self.global_phase += other.global_phase;
        Ok(self)
    }

    /// Returns the inverse circuit (gates reversed and individually
    /// inverted).
    ///
    /// # Errors
    ///
    /// Returns [`TerraError::NotInvertible`] if the circuit contains
    /// measurements, resets or conditioned gates.
    pub fn inverse(&self) -> Result<QuantumCircuit> {
        let mut inv = QuantumCircuit {
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            qregs: self.qregs.clone(),
            cregs: self.cregs.clone(),
            instructions: Vec::with_capacity(self.instructions.len()),
            global_phase: -self.global_phase,
            name: format!("{}_dg", self.name),
        };
        for inst in self.instructions.iter().rev() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    inv.instructions.push(Instruction::gate(g.inverse(), inst.qubits.clone()));
                }
                Operation::Barrier => {
                    inv.instructions.push(inst.clone());
                }
                other => {
                    return Err(TerraError::NotInvertible { instruction: other.name().to_owned() })
                }
            }
        }
        Ok(inv)
    }

    /// Circuit depth: length of the longest path through the instruction
    /// dependency graph (barriers excluded, matching Qiskit's convention).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits + self.num_clbits];
        let mut depth = 0;
        for inst in &self.instructions {
            if matches!(inst.op, Operation::Barrier) {
                continue;
            }
            let mut bits: Vec<usize> = inst.qubits.clone();
            for &c in &inst.clbits {
                bits.push(self.num_qubits + c);
            }
            if let Some(cond) = &inst.condition {
                for &c in &cond.clbits {
                    bits.push(self.num_qubits + c);
                }
            }
            let new_level = bits.iter().map(|&b| level[b]).max().unwrap_or(0) + 1;
            for &b in &bits {
                level[b] = new_level;
            }
            depth = depth.max(new_level);
        }
        depth
    }

    /// Histogram of operation names, sorted by name.
    pub fn count_ops(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.op.name().to_owned()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of two-or-more-qubit gates — the error-dominating metric the
    /// paper's mapping discussion minimizes.
    pub fn num_multi_qubit_gates(&self) -> usize {
        self.instructions.iter().filter(|i| i.op.is_gate() && i.qubits.len() >= 2).count()
    }

    /// Number of unitary gate instructions (excluding barrier/measure/reset).
    pub fn num_gates(&self) -> usize {
        self.instructions.iter().filter(|i| i.op.is_gate()).count()
    }

    /// Returns `true` if the circuit contains a measurement.
    pub fn has_measurements(&self) -> bool {
        self.instructions.iter().any(|i| matches!(i.op, Operation::Measure))
    }

    /// Removes barriers and identity gates; returns the number removed.
    pub fn remove_noops(&mut self) -> usize {
        let before = self.instructions.len();
        self.instructions
            .retain(|i| !matches!(i.op, Operation::Barrier) && i.as_gate() != Some(&Gate::I));
        before - self.instructions.len()
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} qubits, {} clbits, {} instructions, depth {}",
            self.name,
            self.num_qubits,
            self.num_clbits,
            self.size(),
            self.depth()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

/// Builds the canonical 4-qubit circuit of the paper's Fig. 1.
///
/// ```text
/// h q[2]; cx q[2],q[3]; cx q[0],q[1]; h q[1]; cx q[1],q[2];
/// t q[0]; cx q[2],q[0]; cx q[0],q[1];
/// ```
///
/// # Examples
///
/// ```
/// let circ = qukit_terra::circuit::fig1_circuit();
/// assert_eq!(circ.num_qubits(), 4);
/// assert_eq!(circ.count_ops()["cx"], 5);
/// ```
pub fn fig1_circuit() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(4);
    circ.set_name("fig1");
    circ.h(2).expect("valid");
    circ.cx(2, 3).expect("valid");
    circ.cx(0, 1).expect("valid");
    circ.h(1).expect("valid");
    circ.cx(1, 2).expect("valid");
    circ.t(0).expect("valid");
    circ.cx(2, 0).expect("valid");
    circ.cx(0, 1).expect("valid");
    circ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_circuit_has_default_register() {
        let circ = QuantumCircuit::new(3);
        assert_eq!(circ.num_qubits(), 3);
        assert_eq!(circ.num_clbits(), 0);
        assert_eq!(circ.qreg("q").map(|r| r.len()), Some(3));
        assert_eq!(circ.width(), 3);
    }

    #[test]
    fn empty_circuit_grows_with_registers() {
        let mut circ = QuantumCircuit::empty();
        circ.add_qreg("a", 2).unwrap();
        circ.add_qreg("b", 3).unwrap();
        circ.add_creg("c", 2).unwrap();
        assert_eq!(circ.num_qubits(), 5);
        assert_eq!(circ.qreg("b").unwrap().start(), 2);
        assert_eq!(circ.num_clbits(), 2);
        assert!(circ.add_qreg("a", 1).is_err());
        assert!(circ.add_creg("c", 1).is_err());
    }

    #[test]
    fn append_validates_operands() {
        let mut circ = QuantumCircuit::new(2);
        assert!(circ.h(0).is_ok());
        assert!(matches!(circ.h(5), Err(TerraError::QubitOutOfRange { index: 5, num_qubits: 2 })));
        assert!(matches!(circ.cx(1, 1), Err(TerraError::DuplicateQubit { index: 1 })));
        assert!(matches!(circ.append(Gate::CX, &[0]), Err(TerraError::ArityMismatch { .. })));
    }

    #[test]
    fn measure_validates_both_indices() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        assert!(circ.measure(0, 0).is_ok());
        assert!(circ.measure(0, 1).is_err());
        assert!(circ.measure(2, 0).is_err());
    }

    #[test]
    fn measure_all_grows_creg() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.measure_all();
        assert_eq!(circ.num_clbits(), 3);
        assert_eq!(circ.count_ops()["measure"], 3);
    }

    #[test]
    fn fig1_metrics_match_paper() {
        let circ = fig1_circuit();
        let ops = circ.count_ops();
        assert_eq!(ops["h"], 2);
        assert_eq!(ops["cx"], 5);
        assert_eq!(ops["t"], 1);
        assert_eq!(circ.size(), 8);
        assert_eq!(circ.num_multi_qubit_gates(), 5);
    }

    #[test]
    fn depth_tracks_critical_path() {
        let mut circ = QuantumCircuit::new(2);
        assert_eq!(circ.depth(), 0);
        circ.h(0).unwrap();
        circ.h(1).unwrap();
        assert_eq!(circ.depth(), 1, "parallel gates share a layer");
        circ.cx(0, 1).unwrap();
        assert_eq!(circ.depth(), 2);
        circ.barrier_all();
        assert_eq!(circ.depth(), 2, "barriers don't count");
        circ.x(0).unwrap();
        assert_eq!(circ.depth(), 3);
    }

    #[test]
    fn depth_includes_measurement_dependencies() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        assert_eq!(circ.depth(), 2);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.t(1).unwrap();
        circ.cx(0, 1).unwrap();
        let inv = circ.inverse().unwrap();
        let gates: Vec<&Gate> = inv.instructions().iter().filter_map(|i| i.as_gate()).collect();
        assert_eq!(gates, vec![&Gate::CX, &Gate::Tdg, &Gate::H]);
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        assert!(matches!(circ.inverse(), Err(TerraError::NotInvertible { .. })));
    }

    #[test]
    fn compose_appends_and_checks_width() {
        let mut big = QuantumCircuit::new(3);
        let mut small = QuantumCircuit::new(2);
        small.h(0).unwrap();
        small.cx(0, 1).unwrap();
        big.compose(&small).unwrap();
        assert_eq!(big.size(), 2);

        let mut too_big = QuantumCircuit::new(5);
        too_big.h(4).unwrap();
        assert!(big.compose(&too_big).is_err());
    }

    #[test]
    fn compose_mapped_relabels() {
        let mut target = QuantumCircuit::new(4);
        let mut src = QuantumCircuit::new(2);
        src.cx(0, 1).unwrap();
        target.compose_mapped(&src, &[3, 1]).unwrap();
        assert_eq!(target.instructions()[0].qubits, vec![3, 1]);
    }

    #[test]
    fn conditional_gates() {
        let mut circ = QuantumCircuit::with_size(1, 2);
        circ.append_conditional(Gate::X, &[0], "c", 3).unwrap();
        let inst = &circ.instructions()[0];
        let cond = inst.condition.as_ref().unwrap();
        assert_eq!(cond.clbits, vec![0, 1]);
        assert_eq!(cond.value, 3);
        assert!(circ.append_conditional(Gate::X, &[0], "nope", 0).is_err());
    }

    #[test]
    fn remove_noops_strips_barriers_and_ids() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.id(1).unwrap();
        circ.barrier_all();
        circ.x(1).unwrap();
        assert_eq!(circ.remove_noops(), 2);
        assert_eq!(circ.size(), 2);
    }

    #[test]
    fn count_ops_is_sorted_histogram() {
        let circ = fig1_circuit();
        let ops = circ.count_ops();
        let keys: Vec<&String> = ops.keys().collect();
        assert_eq!(keys, vec!["cx", "h", "t"]);
    }

    #[test]
    fn global_phase_accumulates() {
        let mut circ = QuantumCircuit::new(1);
        circ.add_global_phase(0.5);
        circ.add_global_phase(0.25);
        assert!((circ.global_phase() - 0.75).abs() < 1e-15);
        let inv = circ.inverse().unwrap();
        assert!((inv.global_phase() + 0.75).abs() < 1e-15);
    }

    #[test]
    fn display_contains_summary() {
        let circ = fig1_circuit();
        let text = circ.to_string();
        assert!(text.contains("4 qubits"));
        assert!(text.contains("h q2"));
    }
}
