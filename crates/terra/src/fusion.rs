//! Gate-fusion pre-pass: greedily merges adjacent unitary gates that act on a
//! small shared qubit set into one dense (or diagonal) unitary, so simulation
//! engines sweep the amplitude array once per *group* instead of once per
//! gate. Mirrors the fusion stage Qiskit Aer runs before kernel dispatch.
//!
//! Invariants (see DESIGN.md):
//!
//! * Instructions are never reordered — only *contiguous* runs of plain
//!   (unconditioned) gates are merged, in program order.
//! * Fusion never crosses a measurement, reset, barrier, or conditioned
//!   instruction; those flush the pending group and pass through untouched.
//! * A group only grows onto a new qubit when the incoming gate shares at
//!   least one qubit with it (locality heuristic; all-diagonal runs are
//!   exempt, since diagonal factors combine index-wise), and never beyond
//!   [`FusionConfig::max_qubits`] operands.
//! * A gate is only merged when the flop-cost model says the combined
//!   dense sweep is no more expensive than running the gates through the
//!   engines' specialized kernels (diagonal / butterfly / controlled-block)
//!   individually — fusing a lone CX into an 8×8 matrix is a pessimization,
//!   not an optimization.
//! * Fused matrices whose off-diagonal entries are all zero are emitted as
//!   [`FusedOp::Diagonal`] so engines can apply them in a single
//!   multiply-per-amplitude sweep.
//! * A non-diagonal group whose members are individually cheaper than the
//!   merged dense sweep is emitted as [`FusedOp::Group`] — the member gate
//!   list kept in program order — so engines apply the members back to back
//!   (cache-resident under blocked traversal) instead of materializing and
//!   applying a `2^k × 2^k` matrix.

use crate::complex::Complex;
use crate::instruction::Instruction;
use crate::matrix::Matrix;
use crate::reference;

/// Configuration for the fusion pre-pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionConfig {
    /// When `false`, [`fuse`] passes every instruction through unchanged.
    pub enabled: bool,
    /// Maximum number of qubit operands a fused group may span (default 3,
    /// i.e. fused unitaries are at most 8×8).
    pub max_qubits: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self { enabled: true, max_qubits: 3 }
    }
}

/// One operation of a fused program.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// Dense `2^k × 2^k` unitary merged from `gates_fused` source gates,
    /// acting on `qubits` (operand order matches the matrix's bit order:
    /// `qubits[t]` is bit `t` of the row/column index).
    Unitary { matrix: Matrix, qubits: Vec<usize>, gates_fused: usize },
    /// Diagonal unitary stored as its `2^k` diagonal factors.
    Diagonal { factors: Vec<Complex>, qubits: Vec<usize>, gates_fused: usize },
    /// A fused group kept as its member gate list (program order): the
    /// engines apply the members back to back in one scheduling step,
    /// which under blocked traversal costs one pass over memory but keeps
    /// each member on its specialized kernel instead of paying the merged
    /// dense `2^k` matrix-vector price.
    Group { insts: Vec<Instruction>, qubits: Vec<usize>, gates_fused: usize },
    /// Anything fusion must not touch: measurements, resets, barriers,
    /// conditioned gates, and lone non-diagonal gates (which keep the
    /// engines' specialized dispatch paths).
    Passthrough(Instruction),
}

impl FusedOp {
    /// Number of source gates folded into this op (0 for non-gate
    /// passthroughs, 1 for a lone gate).
    pub fn gates_fused(&self) -> usize {
        match self {
            FusedOp::Unitary { gates_fused, .. }
            | FusedOp::Diagonal { gates_fused, .. }
            | FusedOp::Group { gates_fused, .. } => *gates_fused,
            FusedOp::Passthrough(inst) => usize::from(inst.op.is_gate()),
        }
    }
}

/// Aggregate statistics from one [`fuse`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Groups of ≥2 gates merged into a single op.
    pub groups: usize,
    /// Source gates absorbed into those groups.
    pub gates_merged: usize,
    /// Ops emitted in diagonal form (including lone diagonal gates).
    pub diagonal_ops: usize,
}

/// A fused instruction stream plus merge statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    pub ops: Vec<FusedOp>,
    pub stats: FusionStats,
}

/// Runs the fusion pre-pass over an instruction stream.
pub fn fuse(instructions: &[Instruction], config: &FusionConfig) -> FusedProgram {
    if !config.enabled {
        let ops = instructions.iter().cloned().map(FusedOp::Passthrough).collect();
        return FusedProgram { ops, stats: FusionStats::default() };
    }

    let max_qubits = config.max_qubits.max(1);
    let mut out = Fuser { ops: Vec::new(), stats: FusionStats::default() };
    // Pending contiguous run of plain gates, the union of their qubits in
    // first-appearance order, and whether every gate so far is diagonal.
    let mut pending: Vec<Instruction> = Vec::new();
    let mut group_qubits: Vec<usize> = Vec::new();
    let mut group_diagonal = true;

    for inst in instructions {
        if !inst.is_plain_gate() {
            out.flush(&mut pending, &mut group_qubits);
            group_diagonal = true;
            out.ops.push(FusedOp::Passthrough(inst.clone()));
            continue;
        }
        let gate = inst.as_gate().expect("plain gate");
        let fresh: Vec<usize> =
            inst.qubits.iter().copied().filter(|q| !group_qubits.contains(q)).collect();
        let overlaps = fresh.len() < inst.qubits.len();
        let fits = group_qubits.len() + fresh.len() <= max_qubits;
        let profitable = pending.is_empty()
            || merged_cost(group_qubits.len() + fresh.len(), group_diagonal && gate.is_diagonal())
                <= group_cost(&pending, group_qubits.len(), group_diagonal)
                    + gate_cost(inst)
                    + SWEEP_COST;
        // Grow the group only while it stays small, local, and cheaper than
        // the specialized per-gate kernels; a gate with no shared qubit
        // starts a fresh group instead of welding unrelated blocks into one
        // dense matrix. Diagonal-onto-diagonal merges are exempt from the
        // locality rule: diagonal factors combine index-wise, so disjoint
        // diagonal gates still share one sweep.
        let local = overlaps || fresh.is_empty() || (group_diagonal && gate.is_diagonal());
        if pending.is_empty() || (fits && local && profitable) {
            group_qubits.extend(fresh);
            if group_qubits.len() > max_qubits {
                // Lone gate wider than the fusion limit: pass it through.
                debug_assert!(pending.is_empty());
                group_qubits.clear();
                group_diagonal = true;
                out.ops.push(FusedOp::Passthrough(inst.clone()));
                continue;
            }
            group_diagonal &= gate.is_diagonal();
            pending.push(inst.clone());
        } else {
            out.flush(&mut pending, &mut group_qubits);
            if inst.qubits.len() > max_qubits {
                group_diagonal = true;
                out.ops.push(FusedOp::Passthrough(inst.clone()));
            } else {
                group_diagonal = gate.is_diagonal();
                group_qubits.extend(inst.qubits.iter().copied());
                pending.push(inst.clone());
            }
        }
    }
    out.flush(&mut pending, &mut group_qubits);

    qukit_obs::counter_add("qukit_terra_fusion_groups_total", out.stats.groups as u64);
    qukit_obs::counter_add("qukit_terra_fusion_merged_gates_total", out.stats.gates_merged as u64);
    qukit_obs::counter_add("qukit_terra_fusion_diagonal_ops_total", out.stats.diagonal_ops as u64);

    FusedProgram { ops: out.ops, stats: out.stats }
}

/// Modelled price of one extra full sweep over the amplitude array
/// (memory traffic + loop overhead), in the same unit as [`gate_cost`].
const SWEEP_COST: f64 = 1.0;

/// Cost of a diagonal sweep: one multiply per amplitude.
const DIAGONAL_COST: f64 = 1.0;

/// Estimated kernel cost of one gate in complex multiplies per state
/// amplitude, mirroring the engines' specialized dispatch paths: diagonal
/// sweeps cost one multiply, single-qubit butterflies two, controlled
/// blocks only touch the all-controls-set slice, and everything else pays
/// the dense `2^k` matrix-vector price.
fn gate_cost(inst: &Instruction) -> f64 {
    let gate = inst.as_gate().expect("cost model sees plain gates");
    if gate.is_diagonal() {
        return DIAGONAL_COST;
    }
    let k = inst.qubits.len();
    if k == 1 {
        return 2.0;
    }
    let dim = 1usize << k;
    if controlled_form(&gate.matrix()).is_some() {
        // Butterfly on the 2^-(k-1) slice where every control bit is set.
        4.0 / dim as f64
    } else {
        dim as f64
    }
}

/// Cost of the pending group as it would be emitted right now.
fn group_cost(pending: &[Instruction], width: usize, diagonal: bool) -> f64 {
    match pending.len() {
        0 => 0.0,
        1 => gate_cost(&pending[0]),
        _ => merged_cost(width, diagonal),
    }
}

/// Cost of a fused group spanning `width` qubits. Single-qubit groups
/// lower to the butterfly kernel; wider dense groups pay the `2^k`
/// matrix-vector price plus gather/scatter overhead.
fn merged_cost(width: usize, diagonal: bool) -> f64 {
    if diagonal {
        DIAGONAL_COST
    } else if width <= 1 {
        2.0
    } else {
        (1u64 << width) as f64 + 2.0
    }
}

/// Detects controlled-block structure: returns `(target, block)` when the
/// unitary acts as the 2×2 `block` on matrix bit `target` exactly when
/// every other matrix bit is 1, and as the identity otherwise — the shape
/// of CX, CCX, and every controlled-U in the computational basis. Engines
/// use this to skip the amplitudes the gate provably leaves untouched.
pub fn controlled_form(matrix: &Matrix) -> Option<(usize, [Complex; 4])> {
    let dim = matrix.rows();
    if dim < 4 || matrix.cols() != dim || !dim.is_power_of_two() {
        return None;
    }
    let k = dim.trailing_zeros() as usize;
    'targets: for t in 0..k {
        let tbit = 1usize << t;
        let cmask = (dim - 1) ^ tbit;
        for r in 0..dim {
            for c in 0..dim {
                if (r & cmask) == cmask && (c & cmask) == cmask {
                    continue; // part of the controlled 2×2 block
                }
                let v = matrix[(r, c)];
                let identity = if r == c { v.is_approx_one() } else { v.is_approx_zero() };
                if !identity {
                    continue 'targets;
                }
            }
        }
        let lo = cmask;
        let hi = cmask | tbit;
        return Some((t, [matrix[(lo, lo)], matrix[(lo, hi)], matrix[(hi, lo)], matrix[(hi, hi)]]));
    }
    None
}

struct Fuser {
    ops: Vec<FusedOp>,
    stats: FusionStats,
}

impl Fuser {
    fn flush(&mut self, pending: &mut Vec<Instruction>, group_qubits: &mut Vec<usize>) {
        if pending.is_empty() {
            return;
        }
        let qubits = std::mem::take(group_qubits);
        let insts = std::mem::take(pending);
        let gates_fused = insts.len();

        if gates_fused == 1 {
            // A lone gate is only rewritten when the diagonal form is a
            // strict win; otherwise keep the engines' native dispatch.
            let gate = insts[0].as_gate().expect("pending holds plain gates");
            if gate.is_diagonal() {
                let matrix = compose(&insts, &qubits);
                let factors = (0..matrix.rows()).map(|i| matrix[(i, i)]).collect();
                self.stats.diagonal_ops += 1;
                self.ops.push(FusedOp::Diagonal { factors, qubits, gates_fused });
            } else {
                self.ops.push(FusedOp::Passthrough(insts.into_iter().next().unwrap()));
            }
            return;
        }

        let all_diagonal = insts
            .iter()
            .all(|inst| inst.as_gate().expect("pending holds plain gates").is_diagonal());
        if !all_diagonal {
            // Under the engines' blocked traversal the group's members run
            // back to back on a cache-resident tile, so member sweeps cost
            // no extra memory traffic: when the members' specialized
            // kernels are cheaper per amplitude than one merged dense
            // sweep, keep the gate list instead of materializing a matrix.
            let member_cost: f64 = insts.iter().map(gate_cost).sum();
            if member_cost < merged_cost(qubits.len(), false) {
                self.stats.groups += 1;
                self.stats.gates_merged += gates_fused;
                self.ops.push(FusedOp::Group { insts, qubits, gates_fused });
                return;
            }
        }

        let matrix = compose(&insts, &qubits);
        self.stats.groups += 1;
        self.stats.gates_merged += gates_fused;
        if let Some(factors) = diagonal_of(&matrix) {
            self.stats.diagonal_ops += 1;
            self.ops.push(FusedOp::Diagonal { factors, qubits, gates_fused });
        } else {
            self.ops.push(FusedOp::Unitary { matrix, qubits, gates_fused });
        }
    }
}

/// Composes the pending gates into one `2^k × 2^k` unitary over `qubits`
/// (bit `t` of the matrix index is `qubits[t]`) by evolving each basis
/// column through the run with the reference kernel.
fn compose(insts: &[Instruction], qubits: &[usize]) -> Matrix {
    let k = qubits.len();
    let dim = 1usize << k;
    let mut cols: Vec<Vec<Complex>> = (0..dim)
        .map(|c| {
            let mut v = vec![Complex::ZERO; dim];
            v[c] = Complex::ONE;
            v
        })
        .collect();
    for inst in insts {
        let gate = inst.as_gate().expect("pending holds plain gates");
        let matrix = gate.matrix();
        let local: Vec<usize> = inst
            .qubits
            .iter()
            .map(|q| qubits.iter().position(|g| g == q).expect("operand tracked in group"))
            .collect();
        for col in cols.iter_mut() {
            reference::apply_gate(col, &matrix, &local);
        }
    }
    let mut data = vec![Complex::ZERO; dim * dim];
    for (c, col) in cols.iter().enumerate() {
        for (r, amp) in col.iter().enumerate() {
            data[r * dim + c] = *amp;
        }
    }
    Matrix::from_vec(dim, dim, data)
}

/// Returns the diagonal when every off-diagonal entry is (exactly, up to
/// [`Complex::EPSILON`]) zero.
fn diagonal_of(matrix: &Matrix) -> Option<Vec<Complex>> {
    let dim = matrix.rows();
    for r in 0..dim {
        for c in 0..dim {
            if r != c && !matrix[(r, c)].is_approx_zero() {
                return None;
            }
        }
    }
    Some((0..dim).map(|i| matrix[(i, i)]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::QuantumCircuit;
    use crate::gate::Gate;
    use crate::instruction::Condition;

    fn fused_matrix_matches(instructions: &[Instruction], n: usize) {
        use rand::{rngs::StdRng, SeedableRng};
        let config = FusionConfig::default();
        let program = fuse(instructions, &config);
        let mut rng = StdRng::seed_from_u64(11);
        let initial = reference::random_state(n, &mut rng);
        let mut expect = initial.clone();
        for inst in instructions {
            reference::apply_gate(&mut expect, &inst.as_gate().unwrap().matrix(), &inst.qubits);
        }
        let mut got = initial;
        for op in &program.ops {
            match op {
                FusedOp::Unitary { matrix, qubits, .. } => {
                    reference::apply_gate(&mut got, matrix, qubits);
                }
                FusedOp::Diagonal { factors, qubits, .. } => {
                    let dim = factors.len();
                    let mut m = Matrix::zeros(dim, dim);
                    for i in 0..dim {
                        m[(i, i)] = factors[i];
                    }
                    reference::apply_gate(&mut got, &m, qubits);
                }
                FusedOp::Group { insts, .. } => {
                    for inst in insts {
                        reference::apply_gate(
                            &mut got,
                            &inst.as_gate().unwrap().matrix(),
                            &inst.qubits,
                        );
                    }
                }
                FusedOp::Passthrough(inst) => {
                    reference::apply_gate(
                        &mut got,
                        &inst.as_gate().unwrap().matrix(),
                        &inst.qubits,
                    );
                }
            }
        }
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!(g.approx_eq(*e), "fused program diverges: {g:?} vs {e:?}");
        }
    }

    #[test]
    fn fuses_overlapping_run_and_matches_reference() {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.t(1).unwrap();
        circ.cx(1, 2).unwrap();
        circ.h(2).unwrap();
        fused_matrix_matches(circ.instructions(), 3);
    }

    #[test]
    fn diagonal_run_becomes_diagonal_op() {
        let insts = vec![
            Instruction::gate(Gate::T, vec![0]),
            Instruction::gate(Gate::Cp(0.3), vec![0, 1]),
            Instruction::gate(Gate::Rzz(0.7), vec![1, 2]),
        ];
        let program = fuse(&insts, &FusionConfig::default());
        assert_eq!(program.ops.len(), 1);
        assert!(matches!(&program.ops[0], FusedOp::Diagonal { gates_fused: 3, .. }));
        fused_matrix_matches(&insts, 3);
    }

    #[test]
    fn barrier_measure_and_condition_block_fusion() {
        let mut cond = Instruction::gate(Gate::X, vec![0]);
        cond.condition = Some(Condition { clbits: vec![0], value: 1 });
        let insts = vec![
            Instruction::gate(Gate::H, vec![0]),
            Instruction::gate(Gate::T, vec![0]),
            Instruction::barrier(vec![0]),
            Instruction::gate(Gate::H, vec![0]),
            Instruction::measure(0, 0),
            cond,
            Instruction::gate(Gate::H, vec![0]),
            Instruction::reset(0),
        ];
        let program = fuse(&insts, &FusionConfig::default());
        // h+t fuse; everything after the barrier stays unfused because each
        // run is length one or blocked.
        assert_eq!(program.stats.groups, 1);
        assert_eq!(program.stats.gates_merged, 2);
        let passthroughs =
            program.ops.iter().filter(|op| matches!(op, FusedOp::Passthrough(_))).count();
        assert_eq!(passthroughs, 6);
    }

    #[test]
    fn disjoint_gates_do_not_weld() {
        let insts = vec![
            Instruction::gate(Gate::H, vec![0]),
            Instruction::gate(Gate::H, vec![5]),
            Instruction::gate(Gate::H, vec![9]),
        ];
        let program = fuse(&insts, &FusionConfig::default());
        assert_eq!(program.stats.groups, 0);
        assert_eq!(program.ops.len(), 3);
    }

    #[test]
    fn group_never_exceeds_max_qubits() {
        let mut circ = QuantumCircuit::new(6);
        for q in 0..5 {
            circ.cx(q, q + 1).unwrap();
        }
        let program = fuse(circ.instructions(), &FusionConfig::default());
        for op in &program.ops {
            let width = match op {
                FusedOp::Unitary { qubits, .. }
                | FusedOp::Diagonal { qubits, .. }
                | FusedOp::Group { qubits, .. } => qubits.len(),
                FusedOp::Passthrough(inst) => inst.qubits.len(),
            };
            assert!(width <= 3);
        }
        fused_matrix_matches(circ.instructions(), 6);
    }

    #[test]
    fn disabled_config_passes_everything_through() {
        let insts = vec![Instruction::gate(Gate::H, vec![0]), Instruction::gate(Gate::T, vec![0])];
        let program = fuse(&insts, &FusionConfig { enabled: false, max_qubits: 3 });
        assert_eq!(program.ops.len(), 2);
        assert!(program.ops.iter().all(|op| matches!(op, FusedOp::Passthrough(_))));
    }

    #[test]
    fn wide_gate_passes_through() {
        let insts = vec![Instruction::gate(Gate::Ccx, vec![0, 1, 2])];
        let program = fuse(&insts, &FusionConfig { enabled: true, max_qubits: 2 });
        assert_eq!(program.ops.len(), 1);
        assert!(matches!(&program.ops[0], FusedOp::Passthrough(_)));
    }

    #[test]
    fn controlled_form_detects_block_structure() {
        // CX: control is matrix bit 0, so the target/block is bit 1.
        let (t, block) = controlled_form(&Gate::CX.matrix()).expect("cx is controlled");
        assert_eq!(t, 1);
        assert!(block[0].is_approx_zero() && block[3].is_approx_zero());
        assert!(block[1].is_approx_one() && block[2].is_approx_one());

        // CCX: two controls (bits 0,1), X block on bit 2.
        let (t, block) = controlled_form(&Gate::Ccx.matrix()).expect("ccx is controlled");
        assert_eq!(t, 2);
        assert!(block[1].is_approx_one() && block[2].is_approx_one());

        // Controlled rotations keep their base block.
        let (t, block) = controlled_form(&Gate::Crx(0.7).matrix()).expect("crx is controlled");
        assert_eq!(t, 1);
        let base = Gate::Rx(0.7).matrix();
        assert!(block[0].approx_eq(base[(0, 0)]) && block[1].approx_eq(base[(0, 1)]));

        // Swap moves amplitude between non-block entries: not controlled.
        assert!(controlled_form(&Gate::Swap.matrix()).is_none());
        // 1-qubit matrices are never reported (the butterfly path owns them).
        assert!(controlled_form(&Gate::H.matrix()).is_none());
    }

    #[test]
    fn cheap_member_group_is_kept_as_gate_list() {
        // Swap (dense, cost 4) + T (diagonal, cost 1) merge under the
        // greedy rule, but the members (cost 5) beat the merged 4×4 dense
        // sweep (cost 6) — so the group must stay a gate list.
        let insts =
            vec![Instruction::gate(Gate::Swap, vec![0, 1]), Instruction::gate(Gate::T, vec![0])];
        let program = fuse(&insts, &FusionConfig::default());
        assert_eq!(program.stats.groups, 1);
        assert_eq!(program.stats.gates_merged, 2);
        assert_eq!(program.ops.len(), 1);
        match &program.ops[0] {
            FusedOp::Group { insts: members, qubits, gates_fused } => {
                assert_eq!(members.len(), 2);
                assert_eq!(qubits, &[0, 1]);
                assert_eq!(*gates_fused, 2);
            }
            other => panic!("expected FusedOp::Group, got {other:?}"),
        }
        fused_matrix_matches(&insts, 2);
    }

    #[test]
    fn cost_model_keeps_cheap_specialized_gates_unfused() {
        // A lone CX followed by a gate on a third qubit must NOT weld into
        // an 8x8 dense block: the controlled kernel is far cheaper.
        let insts =
            vec![Instruction::gate(Gate::CX, vec![0, 1]), Instruction::gate(Gate::CX, vec![1, 2])];
        let program = fuse(&insts, &FusionConfig::default());
        assert_eq!(program.stats.groups, 0, "cx chain must stay unfused");
        assert_eq!(program.ops.len(), 2);
        fused_matrix_matches(&insts, 3);

        // Same-qubit single-qubit runs DO merge (one butterfly sweep).
        let run = vec![
            Instruction::gate(Gate::H, vec![0]),
            Instruction::gate(Gate::Rx(0.3), vec![0]),
            Instruction::gate(Gate::H, vec![0]),
        ];
        let program = fuse(&run, &FusionConfig::default());
        assert_eq!(program.stats.groups, 1);
        assert_eq!(program.stats.gates_merged, 3);
        fused_matrix_matches(&run, 1);
    }
}
