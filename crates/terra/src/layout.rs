//! Logical-to-physical qubit layouts.
//!
//! During mapping (the paper's Section V-B) each *logical* circuit qubit is
//! assigned to a *physical* device qubit; SWAP insertion changes the
//! assignment mid-circuit. [`Layout`] tracks the bijection in both
//! directions.

use crate::error::{Result, TerraError};
use std::fmt;

/// A bijective (partial) assignment of logical qubits to physical qubits.
///
/// `logical_to_physical[l] = p` and `physical_to_logical[p] = l` are kept in
/// sync; unassigned slots hold `None` (a device usually has at least as many
/// physical qubits as the circuit has logical ones).
///
/// # Examples
///
/// ```
/// use qukit_terra::layout::Layout;
///
/// let mut layout = Layout::trivial(3, 5);
/// assert_eq!(layout.physical(2), Some(2));
/// layout.swap_physical(2, 4);
/// assert_eq!(layout.physical(2), Some(4));
/// assert_eq!(layout.logical(4), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    logical_to_physical: Vec<Option<usize>>,
    physical_to_logical: Vec<Option<usize>>,
}

impl Layout {
    /// The identity layout: logical `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `num_logical > num_physical`.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(
            num_logical <= num_physical,
            "cannot place {num_logical} logical qubits on {num_physical} physical qubits"
        );
        let mut l2p = vec![None; num_logical];
        let mut p2l = vec![None; num_physical];
        for i in 0..num_logical {
            l2p[i] = Some(i);
            p2l[i] = Some(i);
        }
        Self { logical_to_physical: l2p, physical_to_logical: p2l }
    }

    /// Builds a layout from an explicit logical→physical table.
    ///
    /// # Errors
    ///
    /// Returns an error if a physical index is out of range or assigned
    /// twice.
    pub fn from_mapping(mapping: &[usize], num_physical: usize) -> Result<Self> {
        let mut l2p = vec![None; mapping.len()];
        let mut p2l = vec![None; num_physical];
        for (l, &p) in mapping.iter().enumerate() {
            if p >= num_physical {
                return Err(TerraError::CouplingMap {
                    msg: format!("layout places logical {l} on nonexistent physical {p}"),
                });
            }
            if p2l[p].is_some() {
                return Err(TerraError::CouplingMap {
                    msg: format!("layout places two logical qubits on physical {p}"),
                });
            }
            l2p[l] = Some(p);
            p2l[p] = Some(l);
        }
        Ok(Self { logical_to_physical: l2p, physical_to_logical: p2l })
    }

    /// Number of logical qubits tracked.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Number of physical qubits tracked.
    pub fn num_physical(&self) -> usize {
        self.physical_to_logical.len()
    }

    /// Physical qubit currently holding logical qubit `l`.
    pub fn physical(&self, l: usize) -> Option<usize> {
        self.logical_to_physical.get(l).copied().flatten()
    }

    /// Logical qubit currently on physical qubit `p`.
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.physical_to_logical.get(p).copied().flatten()
    }

    /// Exchanges the logical occupants of two physical qubits — the layout
    /// effect of inserting a SWAP gate on `(p1, p2)`.
    ///
    /// Either slot may be empty (swapping a qubit into an unused location).
    ///
    /// # Panics
    ///
    /// Panics if a physical index is out of range.
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.physical_to_logical[p1];
        let l2 = self.physical_to_logical[p2];
        self.physical_to_logical[p1] = l2;
        self.physical_to_logical[p2] = l1;
        if let Some(l) = l1 {
            self.logical_to_physical[l] = Some(p2);
        }
        if let Some(l) = l2 {
            self.logical_to_physical[l] = Some(p1);
        }
    }

    /// The dense logical→physical table.
    ///
    /// # Panics
    ///
    /// Panics if any logical qubit is unassigned.
    pub fn to_physical_vec(&self) -> Vec<usize> {
        self.logical_to_physical.iter().map(|p| p.expect("complete layout")).collect()
    }

    /// Returns `true` when every logical qubit has a physical home.
    pub fn is_complete(&self) -> bool {
        self.logical_to_physical.iter().all(|p| p.is_some())
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs: Vec<String> = self
            .logical_to_physical
            .iter()
            .enumerate()
            .map(|(l, p)| match p {
                Some(p) => format!("q{l}->Q{p}"),
                None => format!("q{l}->?"),
            })
            .collect();
        write!(f, "{}", pairs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_identity() {
        let layout = Layout::trivial(3, 5);
        for i in 0..3 {
            assert_eq!(layout.physical(i), Some(i));
            assert_eq!(layout.logical(i), Some(i));
        }
        assert_eq!(layout.logical(4), None);
        assert!(layout.is_complete());
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn trivial_rejects_too_small_device() {
        let _ = Layout::trivial(6, 5);
    }

    #[test]
    fn from_mapping_validates() {
        assert!(Layout::from_mapping(&[0, 0], 3).is_err(), "duplicate physical");
        assert!(Layout::from_mapping(&[0, 9], 3).is_err(), "out of range");
        let layout = Layout::from_mapping(&[2, 0], 3).unwrap();
        assert_eq!(layout.physical(0), Some(2));
        assert_eq!(layout.logical(0), Some(1));
        assert_eq!(layout.logical(1), None);
    }

    #[test]
    fn swap_physical_keeps_bijection() {
        let mut layout = Layout::trivial(2, 4);
        layout.swap_physical(1, 3); // move logical 1 to physical 3
        assert_eq!(layout.physical(1), Some(3));
        assert_eq!(layout.logical(3), Some(1));
        assert_eq!(layout.logical(1), None);
        layout.swap_physical(0, 3); // now logical 0 <-> logical 1 positions
        assert_eq!(layout.physical(0), Some(3));
        assert_eq!(layout.physical(1), Some(0));
        assert!(layout.is_complete());
    }

    #[test]
    fn to_physical_vec_round_trip() {
        let layout = Layout::from_mapping(&[4, 2, 0], 5).unwrap();
        assert_eq!(layout.to_physical_vec(), vec![4, 2, 0]);
    }

    #[test]
    fn display_shows_pairs() {
        let layout = Layout::trivial(2, 2);
        assert_eq!(layout.to_string(), "q0->Q0, q1->Q1");
    }
}
