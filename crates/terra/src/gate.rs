//! The standard gate library.
//!
//! [`Gate`] enumerates every unitary operation the toolchain understands,
//! mirroring the gate set of OpenQASM 2.0's `qelib1.inc` plus the IBM QX
//! elementary operations `U(θ, φ, λ)` and `CX` described in the paper
//! (Section II-B).
//!
//! # Qubit-ordering convention
//!
//! Matrices use the little-endian convention: the gate's *first* operand
//! corresponds to the least-significant bit of the matrix index (the same
//! convention Qiskit uses). For example [`Gate::CX`] applied to
//! `[control, target]` maps basis state index `b = target<<1 | control`.
//!
//! # Examples
//!
//! ```
//! use qukit_terra::gate::Gate;
//!
//! let u = Gate::U(0.3, 0.1, -0.2);
//! assert!(u.matrix().is_unitary());
//! assert_eq!(u.num_qubits(), 1);
//! assert_eq!(Gate::T.inverse(), Gate::Tdg);
//! ```

use crate::complex::{c64, Complex};
use crate::matrix::Matrix;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

/// A unitary quantum gate.
///
/// Parameterized variants carry their angles in radians. The set covers all
/// gates of `qelib1.inc` (OpenQASM 2.0's standard header) together with the
/// SWAP-family multi-qubit gates the paper's mapping discussion relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = fourth root of Z (phase shift by π/4, the Clifford+T generator).
    T,
    /// Inverse T gate T†.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Rotation about the x-axis by the given angle.
    Rx(f64),
    /// Rotation about the y-axis by the given angle.
    Ry(f64),
    /// Rotation about the z-axis by the given angle.
    Rz(f64),
    /// Phase shift `diag(1, e^{iλ})`.
    Phase(f64),
    /// The IBM QX elementary single-qubit gate
    /// `U(θ, φ, λ) = Rz(φ) Ry(θ) Rz(λ)` up to global phase.
    ///
    /// This is the universal single-qubit operation the paper's Section II-B
    /// names as the hardware-native gate (Euler decomposition).
    U(f64, f64, f64),
    /// Controlled-NOT. Operands: `[control, target]`.
    CX,
    /// Controlled-Y. Operands: `[control, target]`.
    CY,
    /// Controlled-Z (symmetric).
    CZ,
    /// Controlled-Hadamard. Operands: `[control, target]`.
    CH,
    /// Controlled rotation about x. Operands: `[control, target]`.
    Crx(f64),
    /// Controlled rotation about y. Operands: `[control, target]`.
    Cry(f64),
    /// Controlled rotation about z. Operands: `[control, target]`.
    Crz(f64),
    /// Controlled phase shift (symmetric).
    Cp(f64),
    /// Controlled-U. Operands: `[control, target]`.
    Cu(f64, f64, f64),
    /// SWAP (symmetric).
    Swap,
    /// Toffoli / CCX. Operands: `[control, control, target]`.
    Ccx,
    /// Controlled-controlled-Z (fully symmetric).
    Ccz,
    /// Fredkin / controlled-SWAP. Operands: `[control, a, b]`.
    Cswap,
    /// Ising XX interaction `exp(-i θ/2 X⊗X)`.
    Rxx(f64),
    /// Ising ZZ interaction `exp(-i θ/2 Z⊗Z)`.
    Rzz(f64),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx(_) | Ry(_) | Rz(_)
            | Phase(_) | U(..) => 1,
            CX | CY | CZ | CH | Crx(_) | Cry(_) | Crz(_) | Cp(_) | Cu(..) | Swap | Rxx(_)
            | Rzz(_) => 2,
            Ccx | Ccz | Cswap => 3,
        }
    }

    /// The OpenQASM 2.0 name of the gate (as found in `qelib1.inc`).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Phase(_) => "p",
            U(..) => "u",
            CX => "cx",
            CY => "cy",
            CZ => "cz",
            CH => "ch",
            Crx(_) => "crx",
            Cry(_) => "cry",
            Crz(_) => "crz",
            Cp(_) => "cp",
            Cu(..) => "cu3",
            Swap => "swap",
            Ccx => "ccx",
            Ccz => "ccz",
            Cswap => "cswap",
            Rxx(_) => "rxx",
            Rzz(_) => "rzz",
        }
    }

    /// The gate's angle parameters, in declaration order.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match *self {
            Rx(t) | Ry(t) | Rz(t) | Phase(t) | Crx(t) | Cry(t) | Crz(t) | Cp(t) | Rxx(t)
            | Rzz(t) => vec![t],
            U(t, p, l) | Cu(t, p, l) => vec![t, p, l],
            _ => vec![],
        }
    }

    /// Constructs a gate from an OpenQASM name and parameter list.
    ///
    /// Returns `None` for unknown names or wrong parameter counts; the QASM
    /// parser reports that as a parse error with source location.
    pub fn from_name(name: &str, params: &[f64]) -> Option<Gate> {
        use Gate::*;
        let gate = match (name, params.len()) {
            ("id", 0) => I,
            ("x", 0) => X,
            ("y", 0) => Y,
            ("z", 0) => Z,
            ("h", 0) => H,
            ("s", 0) => S,
            ("sdg", 0) => Sdg,
            ("t", 0) => T,
            ("tdg", 0) => Tdg,
            ("sx", 0) => Sx,
            ("sxdg", 0) => Sxdg,
            ("rx", 1) => Rx(params[0]),
            ("ry", 1) => Ry(params[0]),
            ("rz", 1) => Rz(params[0]),
            ("p" | "u1", 1) => Phase(params[0]),
            ("u2", 2) => U(FRAC_PI_2, params[0], params[1]),
            ("u" | "u3" | "U", 3) => U(params[0], params[1], params[2]),
            ("cx" | "CX", 0) => CX,
            ("cy", 0) => CY,
            ("cz", 0) => CZ,
            ("ch", 0) => CH,
            ("crx", 1) => Crx(params[0]),
            ("cry", 1) => Cry(params[0]),
            ("crz", 1) => Crz(params[0]),
            ("cp" | "cu1", 1) => Cp(params[0]),
            ("cu3", 3) => Cu(params[0], params[1], params[2]),
            ("swap", 0) => Swap,
            ("ccx", 0) => Ccx,
            ("ccz", 0) => Ccz,
            ("cswap", 0) => Cswap,
            ("rxx", 1) => Rxx(params[0]),
            ("rzz", 1) => Rzz(params[0]),
            _ => return None,
        };
        Some(gate)
    }

    /// The inverse gate, such that `g.matrix() * g.inverse().matrix() = I`
    /// (up to global phase for [`Gate::U`]).
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match *self {
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            U(t, p, l) => U(-t, -l, -p),
            Crx(t) => Crx(-t),
            Cry(t) => Cry(-t),
            Crz(t) => Crz(-t),
            Cp(t) => Cp(-t),
            Cu(t, p, l) => Cu(-t, -l, -p),
            Rxx(t) => Rxx(-t),
            Rzz(t) => Rzz(-t),
            g => g, // self-inverse: I, X, Y, Z, H, CX, CY, CZ, CH, Swap-family, Ccx, Ccz, Cswap
        }
    }

    /// Returns `true` when the gate is its own inverse.
    pub fn is_self_inverse(&self) -> bool {
        use Gate::*;
        matches!(self, I | X | Y | Z | H | CX | CY | CZ | CH | Swap | Ccx | Ccz | Cswap)
    }

    /// Returns `true` when the gate matrix is diagonal (commutes with Z-basis
    /// measurement and with other diagonal gates).
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            I | Z | S | Sdg | T | Tdg | Rz(_) | Phase(_) | CZ | Crz(_) | Cp(_) | Ccz | Rzz(_)
        )
    }

    /// The single-qubit base of a controlled gate, if this gate is of the
    /// form "controlled-`G`" with exactly one control.
    pub fn controlled_base(&self) -> Option<Gate> {
        use Gate::*;
        match *self {
            CX => Some(X),
            CY => Some(Y),
            CZ => Some(Z),
            CH => Some(H),
            Crx(t) => Some(Rx(t)),
            Cry(t) => Some(Ry(t)),
            Crz(t) => Some(Rz(t)),
            Cp(t) => Some(Phase(t)),
            Cu(t, p, l) => Some(U(t, p, l)),
            _ => None,
        }
    }

    /// The unitary matrix of the gate, in the little-endian operand
    /// convention described in the module docs.
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let o = Complex::ZERO;
        let l = Complex::ONE;
        let i = Complex::I;
        match *self {
            I => Matrix::identity(2),
            X => Matrix::from_vec(2, 2, vec![o, l, l, o]),
            Y => Matrix::from_vec(2, 2, vec![o, -i, i, o]),
            Z => Matrix::from_vec(2, 2, vec![l, o, o, -l]),
            H => Matrix::hadamard(),
            S => Matrix::from_vec(2, 2, vec![l, o, o, i]),
            Sdg => Matrix::from_vec(2, 2, vec![l, o, o, -i]),
            T => Matrix::from_vec(2, 2, vec![l, o, o, Complex::cis(FRAC_PI_4)]),
            Tdg => Matrix::from_vec(2, 2, vec![l, o, o, Complex::cis(-FRAC_PI_4)]),
            Sx => Matrix::from_vec(
                2,
                2,
                vec![c64(0.5, 0.5), c64(0.5, -0.5), c64(0.5, -0.5), c64(0.5, 0.5)],
            ),
            Sxdg => Matrix::from_vec(
                2,
                2,
                vec![c64(0.5, -0.5), c64(0.5, 0.5), c64(0.5, 0.5), c64(0.5, -0.5)],
            ),
            Rx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_vec(2, 2, vec![c64(c, 0.0), c64(0.0, -s), c64(0.0, -s), c64(c, 0.0)])
            }
            Ry(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_vec(2, 2, vec![c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0)])
            }
            Rz(t) => {
                Matrix::from_vec(2, 2, vec![Complex::cis(-t / 2.0), o, o, Complex::cis(t / 2.0)])
            }
            Phase(t) => Matrix::from_vec(2, 2, vec![l, o, o, Complex::cis(t)]),
            U(t, p, lam) => {
                // Qiskit convention:
                // U = [[cos(t/2),            -e^{iλ} sin(t/2)],
                //      [e^{iφ} sin(t/2),  e^{i(φ+λ)} cos(t/2)]]
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_vec(
                    2,
                    2,
                    vec![
                        c64(c, 0.0),
                        -Complex::cis(lam) * s,
                        Complex::cis(p) * s,
                        Complex::cis(p + lam) * c,
                    ],
                )
            }
            CX | CY | CZ | CH | Crx(_) | Cry(_) | Crz(_) | Cp(_) | Cu(..) => {
                controlled_matrix(&self.controlled_base().expect("controlled gate").matrix())
            }
            Swap => Matrix::from_vec(
                4,
                4,
                vec![
                    l, o, o, o, //
                    o, o, l, o, //
                    o, l, o, o, //
                    o, o, o, l,
                ],
            ),
            Ccx => {
                // Operands [c0, c1, target]: index = t<<2 | c1<<1 | c0.
                let mut m = Matrix::identity(8);
                // States with c0=c1=1: indices 3 (t=0) and 7 (t=1) swap.
                m[(3, 3)] = o;
                m[(7, 7)] = o;
                m[(3, 7)] = l;
                m[(7, 3)] = l;
                m
            }
            Ccz => {
                let mut m = Matrix::identity(8);
                m[(7, 7)] = -l;
                m
            }
            Cswap => {
                // Operands [control, a, b]: index = b<<2 | a<<1 | control.
                // Control=1 & a!=b: indices 3 (a=1,b=0) and 5 (a=0,b=1) swap.
                let mut m = Matrix::identity(8);
                m[(3, 3)] = o;
                m[(5, 5)] = o;
                m[(3, 5)] = l;
                m[(5, 3)] = l;
                m
            }
            Rxx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                let cc = c64(c, 0.0);
                let ss = c64(0.0, -s);
                Matrix::from_vec(
                    4,
                    4,
                    vec![
                        cc, o, o, ss, //
                        o, cc, ss, o, //
                        o, ss, cc, o, //
                        ss, o, o, cc,
                    ],
                )
            }
            Rzz(t) => {
                let p = Complex::cis(-t / 2.0);
                let q = Complex::cis(t / 2.0);
                Matrix::from_vec(
                    4,
                    4,
                    vec![
                        p, o, o, o, //
                        o, q, o, o, //
                        o, o, q, o, //
                        o, o, o, p,
                    ],
                )
            }
        }
    }

    /// Rewrites the gate as an equivalent [`Gate::U`] (single-qubit gates
    /// only). The result is exact up to global phase.
    ///
    /// This is the decomposition step the paper requires before running on a
    /// QX architecture ("the user first has to decompose all non-elementary
    /// quantum operations … to the elementary operations U(θ, φ, λ) and
    /// CNOT").
    pub fn to_u(&self) -> Option<Gate> {
        use Gate::*;
        let g = match *self {
            I => U(0.0, 0.0, 0.0),
            X => U(PI, 0.0, PI),
            Y => U(PI, FRAC_PI_2, FRAC_PI_2),
            Z => U(0.0, 0.0, PI),
            H => U(FRAC_PI_2, 0.0, PI),
            S => U(0.0, 0.0, FRAC_PI_2),
            Sdg => U(0.0, 0.0, -FRAC_PI_2),
            T => U(0.0, 0.0, FRAC_PI_4),
            Tdg => U(0.0, 0.0, -FRAC_PI_4),
            Sx => U(FRAC_PI_2, -FRAC_PI_2, FRAC_PI_2),
            Sxdg => U(FRAC_PI_2, FRAC_PI_2, -FRAC_PI_2),
            Rx(t) => U(t, -FRAC_PI_2, FRAC_PI_2),
            Ry(t) => U(t, 0.0, 0.0),
            Rz(t) => U(0.0, 0.0, t),
            Phase(t) => U(0.0, 0.0, t),
            U(..) => *self,
            _ => return None,
        };
        Some(g)
    }
}

/// Builds the 4x4 (or 2^(n+1)) matrix of a controlled gate from the base
/// gate's matrix, with the control as the least-significant operand.
pub fn controlled_matrix(base: &Matrix) -> Matrix {
    let n = base.rows();
    let dim = 2 * n;
    let mut m = Matrix::identity(dim);
    // Control is bit 0. States with control bit = 1 are odd indices; the
    // remaining bits (the target register) get the base matrix applied.
    for tr in 0..n {
        for tc in 0..n {
            let row = tr * 2 + 1;
            let col = tc * 2 + 1;
            m[(row, col)] = base[(tr, tc)];
        }
    }
    // Identity rows for control = 1 were overwritten above; make sure the
    // diagonal we set for odd rows came only from `base`.
    for tr in 0..n {
        let row = tr * 2 + 1;
        for tc in 0..n {
            let col = tc * 2 + 1;
            if tr == tc && base[(tr, tc)].is_approx_zero() {
                m[(row, col)] = Complex::ZERO;
            }
        }
    }
    m
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn all_sample_gates() -> Vec<Gate> {
        use Gate::*;
        vec![
            I,
            X,
            Y,
            Z,
            H,
            S,
            Sdg,
            T,
            Tdg,
            Sx,
            Sxdg,
            Rx(0.3),
            Ry(-1.1),
            Rz(2.2),
            Phase(0.7),
            U(0.5, 0.25, -0.75),
            CX,
            CY,
            CZ,
            CH,
            Crx(0.4),
            Cry(0.6),
            Crz(-0.9),
            Cp(1.3),
            Cu(0.2, 0.4, 0.6),
            Swap,
            Ccx,
            Ccz,
            Cswap,
            Rxx(0.8),
            Rzz(-0.5),
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_sample_gates() {
            assert!(g.matrix().is_unitary(), "{g:?} matrix not unitary");
        }
    }

    #[test]
    fn matrix_dimension_matches_arity() {
        for g in all_sample_gates() {
            let dim = 1usize << g.num_qubits();
            assert_eq!(g.matrix().rows(), dim, "{g:?} dimension mismatch");
        }
    }

    #[test]
    fn inverse_matrices_multiply_to_identity() {
        for g in all_sample_gates() {
            let prod = g.matrix().matmul(&g.inverse().matrix());
            let id = Matrix::identity(prod.rows());
            assert!(
                prod.phase_equal_to(&id).is_some(),
                "{g:?} * inverse != I (up to phase):\n{prod}"
            );
        }
    }

    #[test]
    fn self_inverse_flag_is_consistent() {
        for g in all_sample_gates() {
            if g.is_self_inverse() {
                assert_eq!(g, g.inverse(), "{g:?} claims self-inverse");
            }
        }
    }

    #[test]
    fn diagonal_flag_is_consistent() {
        for g in all_sample_gates() {
            if g.is_diagonal() {
                let m = g.matrix();
                for r in 0..m.rows() {
                    for c in 0..m.cols() {
                        if r != c {
                            assert!(m[(r, c)].is_approx_zero(), "{g:?} claims diagonal");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn u_decomposition_matches_original_up_to_phase() {
        for g in all_sample_gates() {
            if let Some(u) = g.to_u() {
                assert!(
                    u.matrix().phase_equal_to(&g.matrix()).is_some(),
                    "to_u mismatch for {g:?}"
                );
            } else {
                assert!(g.num_qubits() > 1, "1q gate {g:?} missing to_u");
            }
        }
    }

    #[test]
    fn cx_matrix_is_qiskit_convention() {
        // Little endian, operands [control, target]: |t c> index = t<<1|c.
        // Input index 1 (c=1, t=0) must map to output index 3 (c=1, t=1).
        let m = Gate::CX.matrix();
        assert!(m[(3, 1)].is_approx_one());
        assert!(m[(1, 3)].is_approx_one());
        assert!(m[(0, 0)].is_approx_one());
        assert!(m[(2, 2)].is_approx_one());
        assert!(m[(1, 1)].is_approx_zero());
    }

    #[test]
    fn toffoli_matrix_flips_only_when_both_controls_set() {
        let m = Gate::Ccx.matrix();
        // index = t<<2 | c1<<1 | c0; both controls set: 3 <-> 7.
        assert!(m[(7, 3)].is_approx_one());
        assert!(m[(3, 7)].is_approx_one());
        for idx in [0usize, 1, 2, 4, 5, 6] {
            assert!(m[(idx, idx)].is_approx_one(), "index {idx} should be fixed");
        }
    }

    #[test]
    fn cswap_swaps_targets_when_control_set() {
        let m = Gate::Cswap.matrix();
        // index = b<<2 | a<<1 | control. control=1, a=1, b=0 -> 3;
        // control=1, a=0, b=1 -> 5. Must swap.
        assert!(m[(5, 3)].is_approx_one());
        assert!(m[(3, 5)].is_approx_one());
        assert!(m[(1, 1)].is_approx_one());
        assert!(m[(7, 7)].is_approx_one());
    }

    #[test]
    fn u_is_euler_zyz_composition() {
        // U(θ,φ,λ) must equal Rz(φ) Ry(θ) Rz(λ) up to global phase
        // (Section II-B of the paper).
        let (t, p, l) = (0.7, -0.3, 1.9);
        let u = Gate::U(t, p, l).matrix();
        let composed =
            Gate::Rz(p).matrix().matmul(&Gate::Ry(t).matrix()).matmul(&Gate::Rz(l).matrix());
        assert!(u.phase_equal_to(&composed).is_some());
    }

    #[test]
    fn from_name_round_trips() {
        for g in all_sample_gates() {
            let rebuilt = Gate::from_name(g.name(), &g.params());
            assert_eq!(rebuilt, Some(g), "round trip failed for {g:?}");
        }
    }

    #[test]
    fn from_name_rejects_unknown_and_bad_arity() {
        assert_eq!(Gate::from_name("frobnicate", &[]), None);
        assert_eq!(Gate::from_name("h", &[1.0]), None);
        assert_eq!(Gate::from_name("rx", &[]), None);
    }

    #[test]
    fn from_name_supports_qasm_aliases() {
        assert_eq!(Gate::from_name("u1", &[0.5]), Some(Gate::Phase(0.5)));
        assert_eq!(Gate::from_name("u2", &[0.1, 0.2]), Some(Gate::U(FRAC_PI_2, 0.1, 0.2)));
        assert_eq!(Gate::from_name("CX", &[]), Some(Gate::CX));
        assert_eq!(Gate::from_name("cu1", &[0.3]), Some(Gate::Cp(0.3)));
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rx(0.5).to_string().starts_with("rx(0.5"));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = Gate::S.matrix().matmul(&Gate::S.matrix());
        assert!(s2.approx_eq(&Gate::Z.matrix()));
        let t2 = Gate::T.matrix().matmul(&Gate::T.matrix());
        assert!(t2.approx_eq(&Gate::S.matrix()));
    }

    #[test]
    fn swap_conjugation_reverses_cx() {
        // SWAP · CX(c=q0,t=q1) · SWAP = CX(c=q1,t=q0)
        let swap = Gate::Swap.matrix();
        let cx = Gate::CX.matrix();
        let conj = swap.matmul(&cx).matmul(&swap);
        // CX with control q1, target q0: index = t<<1|c with roles swapped:
        // flips bit0 when bit1 set: 2<->3.
        let mut expect = Matrix::identity(4);
        expect[(2, 2)] = Complex::ZERO;
        expect[(3, 3)] = Complex::ZERO;
        expect[(2, 3)] = Complex::ONE;
        expect[(3, 2)] = Complex::ONE;
        assert!(conj.approx_eq(&expect));
    }
}
