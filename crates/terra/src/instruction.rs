//! Circuit instructions: gates, measurements, resets, barriers.

use crate::gate::Gate;
use std::fmt;

/// The operation performed by an [`Instruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A unitary gate from the standard library.
    Gate(Gate),
    /// Projective Z-basis measurement of one qubit into one classical bit.
    Measure,
    /// Reset one qubit to `|0⟩`.
    Reset,
    /// A barrier: no-op that blocks transpiler optimization across it.
    Barrier,
}

impl Operation {
    /// The OpenQASM keyword / gate name for this operation.
    pub fn name(&self) -> &'static str {
        match self {
            Operation::Gate(g) => g.name(),
            Operation::Measure => "measure",
            Operation::Reset => "reset",
            Operation::Barrier => "barrier",
        }
    }

    /// Returns `true` for unitary operations.
    pub fn is_gate(&self) -> bool {
        matches!(self, Operation::Gate(_))
    }
}

/// A classical condition attached to an instruction (OpenQASM
/// `if (c == value) ...`).
///
/// The instruction executes only when the named classical register currently
/// holds `value` (bits read little-endian: `creg[0]` is bit 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Flat indices of the classical bits that form the condition register,
    /// least-significant first.
    pub clbits: Vec<usize>,
    /// The value the register must equal.
    pub value: u64,
}

/// One instruction of a quantum circuit: an operation plus the flat qubit /
/// classical-bit operand indices it acts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub op: Operation,
    /// Qubit operands (flat indices). Order matters for controlled gates.
    pub qubits: Vec<usize>,
    /// Classical-bit operands (flat indices); non-empty only for `Measure`.
    pub clbits: Vec<usize>,
    /// Optional classical condition.
    pub condition: Option<Condition>,
}

impl Instruction {
    /// Creates an unconditioned gate instruction.
    pub fn gate(gate: Gate, qubits: Vec<usize>) -> Self {
        Self { op: Operation::Gate(gate), qubits, clbits: vec![], condition: None }
    }

    /// Creates a measurement instruction.
    pub fn measure(qubit: usize, clbit: usize) -> Self {
        Self { op: Operation::Measure, qubits: vec![qubit], clbits: vec![clbit], condition: None }
    }

    /// Creates a reset instruction.
    pub fn reset(qubit: usize) -> Self {
        Self { op: Operation::Reset, qubits: vec![qubit], clbits: vec![], condition: None }
    }

    /// Creates a barrier over the given qubits.
    pub fn barrier(qubits: Vec<usize>) -> Self {
        Self { op: Operation::Barrier, qubits, clbits: vec![], condition: None }
    }

    /// The gate, if this instruction is a gate.
    pub fn as_gate(&self) -> Option<&Gate> {
        match &self.op {
            Operation::Gate(g) => Some(g),
            _ => None,
        }
    }

    /// Returns `true` when this is an (unconditioned) unitary gate —
    /// the transpiler only reorders/merges these.
    pub fn is_plain_gate(&self) -> bool {
        self.op.is_gate() && self.condition.is_none()
    }

    /// Returns `true` when the instruction touches qubit `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        self.qubits.contains(&q)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            Operation::Gate(g) => {
                write!(f, "{g} ")?;
                let q: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
                write!(f, "{}", q.join(","))
            }
            Operation::Measure => {
                write!(f, "measure q{} -> c{}", self.qubits[0], self.clbits[0])
            }
            Operation::Reset => write!(f, "reset q{}", self.qubits[0]),
            Operation::Barrier => {
                let q: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
                write!(f, "barrier {}", q.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let g = Instruction::gate(Gate::CX, vec![0, 1]);
        assert!(g.is_plain_gate());
        assert_eq!(g.as_gate(), Some(&Gate::CX));
        assert!(g.acts_on(0) && g.acts_on(1) && !g.acts_on(2));

        let m = Instruction::measure(2, 0);
        assert!(!m.is_plain_gate());
        assert_eq!(m.op.name(), "measure");

        let r = Instruction::reset(1);
        assert_eq!(r.op.name(), "reset");

        let b = Instruction::barrier(vec![0, 1, 2]);
        assert_eq!(b.op.name(), "barrier");
        assert!(!b.op.is_gate());
    }

    #[test]
    fn conditioned_gate_is_not_plain() {
        let mut g = Instruction::gate(Gate::X, vec![0]);
        g.condition = Some(Condition { clbits: vec![0, 1], value: 3 });
        assert!(!g.is_plain_gate());
        assert!(g.op.is_gate());
    }

    #[test]
    fn display() {
        assert_eq!(Instruction::gate(Gate::H, vec![2]).to_string(), "h q2");
        assert_eq!(Instruction::measure(0, 1).to_string(), "measure q0 -> c1");
        assert_eq!(Instruction::barrier(vec![0, 1]).to_string(), "barrier q0,q1");
        assert_eq!(Instruction::reset(3).to_string(), "reset q3");
    }
}
