//! Controlled versions of whole circuits.
//!
//! [`controlled_circuit`] turns any unitary circuit `C` into a circuit
//! implementing `|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ C` — the controlled-`C` primitive
//! that phase estimation, quantum counting and amplitude estimation are
//! built from. The input is first decomposed to the `{1q, CX}` basis; each
//! single-qubit gate then becomes a `CU` (plus a control-phase correcting
//! the gate's global phase, so the construction is *exact*), and each CX a
//! Toffoli.

use crate::circuit::QuantumCircuit;
use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::transpiler::decompose::{decompose_to_cx_basis, zyz_decompose};

/// Builds the controlled version of `circuit`.
///
/// The output acts on `circuit.num_qubits() + 1` qubits: the original
/// qubits keep their indices and the new *control* qubit is the last one
/// (index `n`). When the control is `|1⟩` the output applies `circuit`
/// exactly, including its global phase; when `|0⟩` it applies the
/// identity.
///
/// # Errors
///
/// Returns [`TerraError::NotInvertible`] for circuits containing
/// measurement/reset/conditioned instructions.
pub fn controlled_circuit(circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
    let n = circuit.num_qubits();
    let elementary = decompose_to_cx_basis(circuit)?;
    let mut out = QuantumCircuit::new(n + 1);
    out.set_name(format!("c_{}", circuit.name()));
    let control = n;
    // The circuit's global phase becomes a control-qubit phase.
    if elementary.global_phase().abs() > 1e-15 {
        out.p(elementary.global_phase(), control)?;
    }
    for inst in elementary.instructions() {
        match inst.as_gate() {
            Some(Gate::CX) => {
                out.append(Gate::Ccx, &[control, inst.qubits[0], inst.qubits[1]])?;
            }
            Some(&g) if g.num_qubits() == 1 && inst.condition.is_none() => {
                let (theta, phi, lambda, alpha) = zyz_decompose(&g.matrix());
                if alpha.abs() > 1e-15 {
                    out.p(alpha, control)?;
                }
                out.append(Gate::Cu(theta, phi, lambda), &[control, inst.qubits[0]])?;
            }
            _ if matches!(inst.op, crate::instruction::Operation::Barrier) => {
                out.push(inst.clone())?;
            }
            _ => return Err(TerraError::NotInvertible { instruction: inst.op.name().to_owned() }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference;

    /// Checks that `controlled` equals `|0⟩⟨0|⊗I + |1⟩⟨1|⊗U` exactly.
    fn assert_exactly_controlled(original: &QuantumCircuit) {
        let n = original.num_qubits();
        let controlled = controlled_circuit(original).expect("controllable");
        let u = reference::unitary(original).expect("unitary");
        let cu = reference::unitary(&controlled).expect("unitary");
        let dim = 1usize << n;
        // Control is qubit n (the most significant bit).
        let mut expected = Matrix::zeros(2 * dim, 2 * dim);
        for r in 0..dim {
            expected[(r, r)] = crate::complex::Complex::ONE;
            for c in 0..dim {
                expected[(dim + r, dim + c)] = u[(r, c)];
            }
        }
        assert!(
            cu.approx_eq_eps(&expected, 1e-8),
            "controlled circuit deviates for {}",
            original.name()
        );
    }

    #[test]
    fn controls_simple_gates_exactly() {
        for build in [
            |c: &mut QuantumCircuit| {
                c.x(0).unwrap();
            },
            |c: &mut QuantumCircuit| {
                c.h(0).unwrap();
            },
            |c: &mut QuantumCircuit| {
                c.t(0).unwrap();
            },
            |c: &mut QuantumCircuit| {
                c.s(0).unwrap();
                c.z(0).unwrap();
            },
        ] {
            let mut circ = QuantumCircuit::new(1);
            build(&mut circ);
            assert_exactly_controlled(&circ);
        }
    }

    #[test]
    fn controls_entangling_circuits_exactly() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        assert_exactly_controlled(&bell);

        let mut mixed = QuantumCircuit::new(2);
        mixed.ry(0.6, 0).unwrap();
        mixed.cz(0, 1).unwrap();
        mixed.tdg(1).unwrap();
        mixed.swap(0, 1).unwrap();
        assert_exactly_controlled(&mixed);
    }

    #[test]
    fn controls_global_phase_exactly() {
        // ZXZX = -I: its controlled version is a controlled(-I) = CZ-like
        // phase, NOT the identity.
        let mut circ = QuantumCircuit::new(1);
        circ.z(0).unwrap();
        circ.x(0).unwrap();
        circ.z(0).unwrap();
        circ.x(0).unwrap();
        assert_exactly_controlled(&circ);
    }

    #[test]
    fn control_qubit_off_is_identity() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.t(1).unwrap();
        let controlled = controlled_circuit(&circ).unwrap();
        // Control (qubit 2) stays |0⟩: state must remain |000⟩.
        let state = reference::statevector(&controlled).unwrap();
        assert!(state[0].is_approx_one(), "got {}", state[0]);
    }

    #[test]
    fn measurement_is_rejected() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        assert!(controlled_circuit(&circ).is_err());
    }
}
