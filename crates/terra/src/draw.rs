//! ASCII circuit diagrams.
//!
//! Renders a circuit in the familiar horizontal-wire style of the paper's
//! Fig. 1b: one text row per qubit, gates drawn left to right in
//! dependency layers, with `●` for controls and `⊕`-style `X` boxes for
//! CNOT targets (pure-ASCII output so it renders everywhere).
//!
//! # Examples
//!
//! ```
//! use qukit_terra::circuit::QuantumCircuit;
//! use qukit_terra::draw::draw;
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let mut bell = QuantumCircuit::new(2);
//! bell.h(0)?;
//! bell.cx(0, 1)?;
//! let art = draw(&bell);
//! assert!(art.contains("H"));
//! # Ok(())
//! # }
//! ```

use crate::circuit::QuantumCircuit;
use crate::dag::DagCircuit;
use crate::instruction::Operation;

/// Renders the circuit as ASCII art, one row per qubit (plus one per
/// classical bit when measurements are present).
pub fn draw(circuit: &QuantumCircuit) -> String {
    let n = circuit.num_qubits();
    let nc = circuit.num_clbits();
    let show_clbits = circuit.has_measurements();
    let dag = DagCircuit::from_circuit(circuit);
    let layers = dag.layers();

    // Column text per wire per layer.
    let total_wires = n + if show_clbits { nc } else { 0 };
    let mut columns: Vec<Vec<String>> = Vec::new();
    for layer in &layers {
        let mut col = vec![String::new(); total_wires];
        for &idx in layer {
            let inst = &dag.node(idx).instruction;
            match &inst.op {
                Operation::Gate(g) => {
                    let label = gate_label(g);
                    match inst.qubits.len() {
                        1 => col[inst.qubits[0]] = format!("[{label}]"),
                        _ => {
                            // Controls get '*', the target (last operand for
                            // controlled gates, all for swap) gets the label.
                            let (controls, targets): (Vec<usize>, Vec<usize>) = match g {
                                crate::gate::Gate::Swap => (vec![], inst.qubits.clone()),
                                crate::gate::Gate::CZ
                                | crate::gate::Gate::Cp(_)
                                | crate::gate::Gate::Ccz => {
                                    // Symmetric: all dots except draw label on last.
                                    (
                                        inst.qubits[..inst.qubits.len() - 1].to_vec(),
                                        vec![*inst.qubits.last().expect("nonempty")],
                                    )
                                }
                                _ => (
                                    inst.qubits[..inst.qubits.len() - 1].to_vec(),
                                    vec![*inst.qubits.last().expect("nonempty")],
                                ),
                            };
                            for c in controls {
                                col[c] = " * ".to_owned();
                            }
                            for t in targets {
                                col[t] = format!("[{label}]");
                            }
                            // Vertical connector on intermediate wires.
                            let lo = *inst.qubits.iter().min().expect("nonempty");
                            let hi = *inst.qubits.iter().max().expect("nonempty");
                            #[allow(clippy::needless_range_loop)] // w is also tested for membership
                            for w in lo + 1..hi {
                                if !inst.qubits.contains(&w) {
                                    col[w] = " | ".to_owned();
                                }
                            }
                        }
                    }
                }
                Operation::Measure => {
                    col[inst.qubits[0]] = "[M]".to_owned();
                    if show_clbits {
                        col[n + inst.clbits[0]] = " v ".to_owned();
                        #[allow(clippy::needless_range_loop)] // range spans the qubit->clbit gap
                        for w in inst.qubits[0] + 1..n + inst.clbits[0] {
                            if col[w].is_empty() {
                                col[w] = " | ".to_owned();
                            }
                        }
                    }
                }
                Operation::Reset => {
                    col[inst.qubits[0]] = "|0>".to_owned();
                }
                Operation::Barrier => {
                    for &q in &inst.qubits {
                        col[q] = " : ".to_owned();
                    }
                }
            }
        }
        columns.push(col);
    }

    // Pad each column to uniform width and join with wire segments.
    let widths: Vec<usize> = columns
        .iter()
        .map(|col| col.iter().map(|s| s.chars().count()).max().unwrap_or(0).max(3))
        .collect();
    let mut out = String::new();
    for wire in 0..total_wires {
        let label = if wire < n { format!("q{wire}: ") } else { format!("c{}: ", wire - n) };
        out.push_str(&format!("{label:>6}"));
        let filler = if wire < n { '-' } else { '=' };
        for (col, &w) in columns.iter().zip(&widths) {
            let cell = &col[wire];
            let pad = w - cell.chars().count();
            let left = pad / 2;
            let right = pad - left;
            out.push(filler);
            if cell.is_empty() {
                for _ in 0..w {
                    out.push(filler);
                }
            } else {
                for _ in 0..left {
                    out.push(filler);
                }
                out.push_str(cell);
                for _ in 0..right {
                    out.push(filler);
                }
            }
            out.push(filler);
        }
        out.push('\n');
    }
    out
}

fn gate_label(g: &crate::gate::Gate) -> String {
    use crate::gate::Gate::*;
    match g {
        CX | Ccx | X => "X".to_owned(),
        CY | Y => "Y".to_owned(),
        CZ | Ccz | Z => "Z".to_owned(),
        CH | H => "H".to_owned(),
        Swap | Cswap => "x".to_owned(),
        S => "S".to_owned(),
        Sdg => "S+".to_owned(),
        T => "T".to_owned(),
        Tdg => "T+".to_owned(),
        Sx => "SX".to_owned(),
        Sxdg => "SX+".to_owned(),
        I => "I".to_owned(),
        Rx(t) => format!("RX({t:.2})"),
        Ry(t) => format!("RY({t:.2})"),
        Rz(t) | Crz(t) => format!("RZ({t:.2})"),
        Phase(t) | Cp(t) => format!("P({t:.2})"),
        U(t, p, l) | Cu(t, p, l) => format!("U({t:.2},{p:.2},{l:.2})"),
        Crx(t) => format!("RX({t:.2})"),
        Cry(t) => format!("RY({t:.2})"),
        Rxx(t) => format!("XX({t:.2})"),
        Rzz(t) => format!("ZZ({t:.2})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;

    #[test]
    fn bell_drawing_has_control_and_target() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        let art = draw(&bell);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("[H]"));
        assert!(lines[0].contains('*'));
        assert!(lines[1].contains("[X]"));
    }

    #[test]
    fn fig1_drawing_has_four_wires_and_five_layers() {
        let art = draw(&fig1_circuit());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("  q0:"));
        // depth 5 => every line same length
        let len = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == len));
        // T gate appears on q0's wire.
        assert!(lines[0].contains("[T]"));
    }

    #[test]
    fn measurement_draws_classical_wire() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        let art = draw(&circ);
        assert!(art.contains("[M]"));
        assert!(art.contains("c0: "));
        assert!(art.contains('='));
    }

    #[test]
    fn barrier_and_reset_render() {
        let mut circ = QuantumCircuit::new(2);
        circ.reset(0).unwrap();
        circ.barrier_all();
        circ.x(1).unwrap();
        let art = draw(&circ);
        assert!(art.contains("|0>"));
        assert!(art.contains(" : "));
    }

    #[test]
    fn intermediate_wires_get_connectors() {
        let mut circ = QuantumCircuit::new(3);
        circ.cx(0, 2).unwrap();
        let art = draw(&circ);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('|'), "middle wire should show the connector");
    }
}
