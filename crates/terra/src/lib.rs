//! # qukit-terra
//!
//! The foundation layer of the **qukit** toolchain — a Rust reproduction of
//! the Qiskit stack described in *"IBM's Qiskit Tool Chain: Working with and
//! Developing for Real Quantum Computers"* (Wille, Van Meter, Naveh,
//! DATE 2019). Like Qiskit's Terra element, this crate covers "all low-level
//! sections" of the stack:
//!
//! * [`circuit`] — the [`circuit::QuantumCircuit`] IR with registers,
//!   conditionals, composition and inversion;
//! * [`gate`] — the standard gate library with exact unitary matrices;
//! * [`qasm`] — an OpenQASM 2.0 lexer/parser/emitter (with `qelib1.inc`
//!   built in);
//! * [`coupling`] — device coupling maps, including the IBM QX2-QX5
//!   architectures (the paper's Fig. 2);
//! * [`transpiler`] — decomposition to the `{U(θ,φ,λ), CX}` elementary
//!   basis, coupling-constrained mapping (naive and search-based, the
//!   paper's Fig. 4), and gate-level optimization;
//! * [`draw`] — ASCII circuit diagrams (the paper's Fig. 1b).
//!
//! # Examples
//!
//! ```
//! use qukit_terra::circuit::QuantumCircuit;
//! use qukit_terra::coupling::CouplingMap;
//! use qukit_terra::transpiler::{transpile, TranspileOptions};
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let mut bell = QuantumCircuit::new(2);
//! bell.h(0)?;
//! bell.cx(0, 1)?;
//!
//! let mapped = transpile(&bell, &TranspileOptions::for_device(CouplingMap::ibm_qx4()))?;
//! assert!(mapped.circuit.num_qubits() <= 5);
//! # Ok(())
//! # }
//! ```

pub mod circuit;
pub mod complex;
pub mod controlled;
pub mod coupling;
pub mod dag;
pub mod draw;
pub mod error;
pub mod fusion;
pub mod gate;
pub mod instruction;
pub mod layout;
pub mod matrix;
pub mod parameter;
pub mod pulse;
pub mod qasm;
pub mod reference;
pub mod register;
pub mod transpiler;

pub use circuit::QuantumCircuit;
pub use complex::{c64, Complex};
pub use coupling::CouplingMap;
pub use error::TerraError;
pub use gate::Gate;
pub use instruction::{Instruction, Operation};
pub use matrix::Matrix;
pub use parameter::{Parameter, ParameterizedCircuit, SentinelSite};
