//! Parameterized circuit templates for batched sweeps.
//!
//! A [`ParameterizedCircuit`] is a circuit whose rotation angles
//! (`Rx`/`Ry`/`Rz`/`Phase`/`U`) may be symbolic [`Parameter`]s bound at
//! execute time. The template is built once; [`ParameterizedCircuit::bind`]
//! produces a concrete [`QuantumCircuit`] per value vector, and
//! [`ParameterizedCircuit::bind_all`] materializes a whole sweep. This is
//! the Estimator-primitive traffic shape: one ansatz, many angle points —
//! the execution layers transpile the template once and reuse the result
//! for every binding.
//!
//! Each parameter occupies a distinct *sentinel* angle in the stored
//! template. Sentinels let downstream passes (the transpile-once template
//! cache in `qukit-core`) locate where each parameter landed in a
//! transpiled instruction stream by exact `f64` equality, without any
//! symbolic algebra: a transpile pass that copies angles verbatim keeps the
//! sentinels recognizable; any pass that folds angles together destroys
//! them, which the scanner detects, falling back to per-binding
//! transpilation.

use crate::circuit::QuantumCircuit;
use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::instruction::Operation;

/// A symbolic angle created by [`ParameterizedCircuit::parameter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parameter {
    index: usize,
}

impl Parameter {
    /// Position of this parameter in a binding value vector.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// An angle operand: either a fixed value or a symbolic parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Angle {
    /// A literal angle, baked into the template.
    Fixed(f64),
    /// A symbolic angle, bound per sweep point.
    Param(Parameter),
}

impl From<f64> for Angle {
    fn from(value: f64) -> Self {
        Angle::Fixed(value)
    }
}

impl From<Parameter> for Angle {
    fn from(param: Parameter) -> Self {
        Angle::Param(param)
    }
}

/// Where a parameter lives in the template: instruction `inst`, angle
/// slot `slot` (in [`Gate::params`] order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Site {
    inst: usize,
    slot: usize,
    param: usize,
}

/// The sentinel angle stored in the template for parameter `index`.
///
/// The values are ordinary mid-range angles (so rotation-folding passes
/// don't drop them as near-identity), spaced so that distinct parameters
/// never collide, and matched downstream by exact bit equality.
pub fn sentinel(index: usize) -> f64 {
    0.123_456_789 + 1.0e-6 * (index as f64 + 1.0)
}

/// A circuit template with symbolic rotation angles.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterizedCircuit {
    template: QuantumCircuit,
    names: Vec<String>,
    sites: Vec<Site>,
}

impl ParameterizedCircuit {
    /// An empty template over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self::from_circuit(QuantumCircuit::new(num_qubits))
    }

    /// An empty template over explicit quantum and classical registers.
    pub fn with_size(num_qubits: usize, num_clbits: usize) -> Self {
        Self::from_circuit(QuantumCircuit::with_size(num_qubits, num_clbits))
    }

    /// Wraps an existing (fully concrete) circuit as a template prefix.
    pub fn from_circuit(circuit: QuantumCircuit) -> Self {
        Self { template: circuit, names: Vec::new(), sites: Vec::new() }
    }

    /// Declares a fresh parameter.
    pub fn parameter(&mut self, name: impl Into<String>) -> Parameter {
        let index = self.names.len();
        self.names.push(name.into());
        Parameter { index }
    }

    /// Number of declared parameters.
    pub fn num_parameters(&self) -> usize {
        self.names.len()
    }

    /// Declared parameter names, in index order.
    pub fn parameter_names(&self) -> &[String] {
        &self.names
    }

    /// The underlying template circuit, with sentinel angles at every
    /// parameterized site.
    pub fn template(&self) -> &QuantumCircuit {
        &self.template
    }

    /// Mutable access for appending *fixed* (non-parameterized)
    /// instructions — entanglers, measurements, barriers.
    pub fn circuit_mut(&mut self) -> &mut QuantumCircuit {
        &mut self.template
    }

    /// Appends `Rx(angle)` on qubit `q`.
    pub fn rx(&mut self, angle: impl Into<Angle>, q: usize) -> Result<&mut Self> {
        self.rotation(angle.into(), q, Gate::Rx)
    }

    /// Appends `Ry(angle)` on qubit `q`.
    pub fn ry(&mut self, angle: impl Into<Angle>, q: usize) -> Result<&mut Self> {
        self.rotation(angle.into(), q, Gate::Ry)
    }

    /// Appends `Rz(angle)` on qubit `q`.
    pub fn rz(&mut self, angle: impl Into<Angle>, q: usize) -> Result<&mut Self> {
        self.rotation(angle.into(), q, Gate::Rz)
    }

    /// Appends a phase gate `P(angle)` on qubit `q`.
    pub fn p(&mut self, angle: impl Into<Angle>, q: usize) -> Result<&mut Self> {
        self.rotation(angle.into(), q, Gate::Phase)
    }

    /// Appends `U(θ, φ, λ)` on qubit `q`; any operand may be symbolic.
    pub fn u(
        &mut self,
        theta: impl Into<Angle>,
        phi: impl Into<Angle>,
        lambda: impl Into<Angle>,
        q: usize,
    ) -> Result<&mut Self> {
        let inst = self.template.size();
        let angles = [theta.into(), phi.into(), lambda.into()];
        let mut values = [0.0f64; 3];
        for (slot, angle) in angles.into_iter().enumerate() {
            values[slot] = self.resolve(angle, inst, slot)?;
        }
        match self.template.append(Gate::U(values[0], values[1], values[2]), &[q]) {
            Ok(_) => Ok(self),
            Err(err) => {
                self.sites.retain(|site| site.inst != inst);
                Err(err)
            }
        }
    }

    fn rotation(&mut self, angle: Angle, q: usize, make: fn(f64) -> Gate) -> Result<&mut Self> {
        let inst = self.template.size();
        let value = self.resolve(angle, inst, 0)?;
        match self.template.append(make(value), &[q]) {
            Ok(_) => Ok(self),
            Err(err) => {
                self.sites.retain(|site| site.inst != inst);
                Err(err)
            }
        }
    }

    /// Resolves an angle operand to the concrete value stored in the
    /// template, recording a binding site for symbolic operands.
    fn resolve(&mut self, angle: Angle, inst: usize, slot: usize) -> Result<f64> {
        match angle {
            Angle::Fixed(value) => Ok(value),
            Angle::Param(param) => {
                if param.index >= self.names.len() {
                    return Err(TerraError::ParameterBinding {
                        msg: format!(
                            "parameter index {} not declared on this template",
                            param.index
                        ),
                    });
                }
                self.sites.push(Site { inst, slot, param: param.index });
                Ok(sentinel(param.index))
            }
        }
    }

    /// Binds one value per parameter, producing a concrete circuit.
    ///
    /// # Errors
    ///
    /// Returns [`TerraError::ParameterBinding`] when `values` does not
    /// match the declared parameter count.
    pub fn bind(&self, values: &[f64]) -> Result<QuantumCircuit> {
        if values.len() != self.names.len() {
            return Err(TerraError::ParameterBinding {
                msg: format!("expected {} value(s), got {}", self.names.len(), values.len()),
            });
        }
        let mut circuit = self.template.clone();
        let instructions = circuit.instructions_mut();
        for site in &self.sites {
            let inst = &mut instructions[site.inst];
            let gate = match &inst.op {
                Operation::Gate(gate) => gate,
                other => {
                    return Err(TerraError::ParameterBinding {
                        msg: format!("site {} is not a gate ({})", site.inst, other.name()),
                    })
                }
            };
            let mut params = gate.params();
            params[site.slot] = values[site.param];
            let patched = Gate::from_name(gate.name(), &params).ok_or_else(|| {
                TerraError::ParameterBinding {
                    msg: format!("gate '{}' does not accept a bound angle", gate.name()),
                }
            })?;
            inst.op = Operation::Gate(patched);
        }
        Ok(circuit)
    }

    /// Binds every value vector of a sweep, producing one circuit each.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParameterizedCircuit::bind`], for any row.
    pub fn bind_all(&self, bindings: &[Vec<f64>]) -> Result<Vec<QuantumCircuit>> {
        bindings.iter().map(|values| self.bind(values)).collect()
    }
}

/// A parameter site recovered from a (possibly transpiled) circuit by
/// [`scan_sentinels`]: instruction `inst` carries `sentinel(param)` in
/// angle slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelSite {
    /// Instruction index in the scanned circuit.
    pub inst: usize,
    /// Angle slot within the gate, in [`Gate::params`] order.
    pub slot: usize,
    /// Parameter index the sentinel encodes.
    pub param: usize,
}

/// Finds every gate angle that bit-equals a sentinel of one of the
/// template's `num_params` parameters.
///
/// Transpilation passes that copy angles verbatim (basis translation,
/// mapping, direction fixing) keep sentinels recognizable; passes that
/// fold angles together destroy them. Callers compare the recovered
/// site count against expectations (or validate one binding end to end)
/// before trusting the scan.
pub fn scan_sentinels(circuit: &QuantumCircuit, num_params: usize) -> Vec<SentinelSite> {
    let lookup: std::collections::HashMap<u64, usize> =
        (0..num_params).map(|param| (sentinel(param).to_bits(), param)).collect();
    let mut sites = Vec::new();
    for (inst, instruction) in circuit.instructions().iter().enumerate() {
        let Some(gate) = instruction.as_gate() else { continue };
        for (slot, value) in gate.params().iter().enumerate() {
            if let Some(&param) = lookup.get(&value.to_bits()) {
                sites.push(SentinelSite { inst, slot, param });
            }
        }
    }
    sites
}

/// Replaces sentinel angles at `sites` with concrete `values`, producing
/// a bound copy of `circuit`.
///
/// # Errors
///
/// Returns [`TerraError::ParameterBinding`] when a site does not name a
/// gate angle or a `param` index is out of range for `values`.
pub fn patch_sentinels(
    circuit: &QuantumCircuit,
    sites: &[SentinelSite],
    values: &[f64],
) -> Result<QuantumCircuit> {
    let mut bound = circuit.clone();
    let instructions = bound.instructions_mut();
    for site in sites {
        let value = *values.get(site.param).ok_or_else(|| TerraError::ParameterBinding {
            msg: format!(
                "site references parameter {} but only {} bound",
                site.param,
                values.len()
            ),
        })?;
        let inst = instructions.get_mut(site.inst).ok_or_else(|| TerraError::ParameterBinding {
            msg: format!("site references instruction {} past circuit end", site.inst),
        })?;
        let gate = match &inst.op {
            Operation::Gate(gate) => gate,
            other => {
                return Err(TerraError::ParameterBinding {
                    msg: format!("site {} is not a gate ({})", site.inst, other.name()),
                })
            }
        };
        let mut params = gate.params();
        params[site.slot] = value;
        let patched =
            Gate::from_name(gate.name(), &params).ok_or_else(|| TerraError::ParameterBinding {
                msg: format!("gate '{}' does not accept a bound angle", gate.name()),
            })?;
        inst.op = Operation::Gate(patched);
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_replaces_every_parameter_site() {
        let mut pc = ParameterizedCircuit::new(2);
        let a = pc.parameter("a");
        let b = pc.parameter("b");
        pc.ry(a, 0).unwrap();
        pc.ry(b, 1).unwrap();
        pc.circuit_mut().cx(0, 1).unwrap();
        pc.rz(a, 1).unwrap();
        pc.rx(0.5, 0).unwrap();
        assert_eq!(pc.num_parameters(), 2);

        let bound = pc.bind(&[0.25, -1.5]).unwrap();
        let gates: Vec<Gate> =
            bound.instructions().iter().filter_map(|inst| inst.as_gate().cloned()).collect();
        assert_eq!(
            gates,
            vec![Gate::Ry(0.25), Gate::Ry(-1.5), Gate::CX, Gate::Rz(0.25), Gate::Rx(0.5)]
        );
        // The template keeps its sentinels: bind never mutates it.
        assert_eq!(pc.template().instructions()[0].as_gate(), Some(&Gate::Ry(sentinel(0))));
    }

    #[test]
    fn u_gate_binds_individual_slots() {
        let mut pc = ParameterizedCircuit::new(1);
        let theta = pc.parameter("theta");
        pc.u(theta, 0.1, theta, 0).unwrap();
        let bound = pc.bind(&[2.0]).unwrap();
        assert_eq!(bound.instructions()[0].as_gate(), Some(&Gate::U(2.0, 0.1, 2.0)));
    }

    #[test]
    fn bind_validates_value_count() {
        let mut pc = ParameterizedCircuit::new(1);
        let a = pc.parameter("a");
        pc.rx(a, 0).unwrap();
        assert!(matches!(pc.bind(&[]), Err(TerraError::ParameterBinding { .. })));
        assert!(matches!(pc.bind(&[1.0, 2.0]), Err(TerraError::ParameterBinding { .. })));
        assert!(pc.bind(&[1.0]).is_ok());
    }

    #[test]
    fn bind_all_produces_one_circuit_per_row() {
        let mut pc = ParameterizedCircuit::new(1);
        let a = pc.parameter("a");
        pc.ry(a, 0).unwrap();
        let circuits = pc.bind_all(&[vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        assert_eq!(circuits.len(), 3);
        assert_eq!(circuits[2].instructions()[0].as_gate(), Some(&Gate::Ry(0.3)));
    }

    #[test]
    fn scan_and_patch_round_trip_matches_bind() {
        let mut pc = ParameterizedCircuit::new(2);
        let a = pc.parameter("a");
        let b = pc.parameter("b");
        pc.ry(a, 0).unwrap();
        pc.circuit_mut().h(1).unwrap();
        pc.u(b, 0.25, a, 1).unwrap();
        let sites = scan_sentinels(pc.template(), pc.num_parameters());
        // Three symbolic slots: Ry(a), U(b, ·, a).
        assert_eq!(sites.len(), 3);
        let values = [0.7, -0.3];
        let patched = patch_sentinels(pc.template(), &sites, &values).unwrap();
        assert_eq!(patched, pc.bind(&values).unwrap());
    }

    #[test]
    fn patch_rejects_out_of_range_sites() {
        let circuit = QuantumCircuit::new(1);
        let site = SentinelSite { inst: 3, slot: 0, param: 0 };
        assert!(matches!(
            patch_sentinels(&circuit, &[site], &[1.0]),
            Err(TerraError::ParameterBinding { .. })
        ));
        let mut pc = ParameterizedCircuit::new(1);
        let a = pc.parameter("a");
        pc.rx(a, 0).unwrap();
        let sites = scan_sentinels(pc.template(), 1);
        assert_eq!(sites.len(), 1);
        assert!(matches!(
            patch_sentinels(pc.template(), &sites, &[]),
            Err(TerraError::ParameterBinding { .. })
        ));
    }

    #[test]
    fn sentinels_are_distinct_and_mid_range() {
        for i in 0..64 {
            for j in (i + 1)..64 {
                assert_ne!(sentinel(i), sentinel(j));
            }
            assert!(sentinel(i).abs() > 0.1, "sentinel must not look like identity");
        }
    }
}
