//! OpenQASM 2.0 support: lexer, parser, and emitter.
//!
//! OpenQASM 2.0 is the quantum assembly language developed by IBM and used
//! throughout the paper (its Fig. 1a is an OpenQASM listing). This module
//! round-trips circuits to and from the language:
//!
//! * [`parse`] — full OpenQASM 2.0 front end: registers, the builtin
//!   `qelib1.inc` gate library, user-defined `gate` blocks (macro-expanded),
//!   parameter expressions with `pi` and arithmetic, `measure`/`reset`/
//!   `barrier`, register broadcast, and `if (creg==n)` conditionals;
//! * [`emit`] — serializer producing spec-conformant source.
//!
//! # Examples
//!
//! ```
//! use qukit_terra::qasm;
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let circ = qasm::parse(r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     h q[0];
//!     cx q[0],q[1];
//! "#)?;
//! let text = qasm::emit(&circ);
//! assert_eq!(qasm::parse(&text)?.instructions(), circ.instructions());
//! # Ok(())
//! # }
//! ```

mod emit;
pub mod expr;
pub mod lexer;
mod parser;

pub use emit::emit;
pub use parser::parse;
